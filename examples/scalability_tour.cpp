// Scalability tour: generates a WikiTables-flavored corpus, builds the
// engine on its 10% / 50% / 100% partitions (the paper's SD/MD/LD) and
// reports build time, index memory, and per-method query latency — a
// miniature of the paper's §5.4 performance evaluation you can run in about
// a minute.
//
//   $ ./examples/scalability_tour [num_tables]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "datagen/workload.h"
#include "discovery/anns_search.h"
#include "discovery/cts_search.h"
#include "discovery/engine.h"
#include "obs/metrics.h"

using namespace mira;

int main(int argc, char** argv) {
  size_t num_tables = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 800;

  datagen::WorkloadOptions workload_options =
      datagen::WikiTablesWorkload(num_tables);
  workload_options.queries.per_class = 10;
  datagen::Workload workload = datagen::Workload::Generate(workload_options);
  std::printf("Generated %zu tables / %zu cells, %zu queries\n\n",
              workload.corpus.federation.size(),
              workload.corpus.federation.TotalCells(),
              workload.queries.size());

  struct Partition {
    const char* name;
    double fraction;
  };
  for (const Partition& partition :
       {Partition{"SD (10%)", 0.1}, Partition{"MD (50%)", 0.5},
        Partition{"LD (100%)", 1.0}}) {
    datagen::Workload::View view =
        workload.MakeView(partition.fraction, 42);

    discovery::EngineOptions options;
    options.encoder.dim = 160;
    options.cts.umap.n_epochs = 100;
    WallTimer build_timer;
    auto engine = discovery::DiscoveryEngine::Build(
                      view.federation, workload.bank.lexicon(), options)
                      .MoveValue();
    double build_s = build_timer.ElapsedSeconds();

    const auto* anns = static_cast<const discovery::AnnsSearcher*>(
        engine->searcher(discovery::Method::kAnns));
    const auto* cts = static_cast<const discovery::CtsSearcher*>(
        engine->searcher(discovery::Method::kCts));

    std::printf("%s: %zu tables, %zu cells\n", partition.name,
                view.federation.size(), engine->corpus().num_cells());
    std::printf("  build %.1fs | ANNS index %.1f MiB | CTS %zu clusters, %.1f MiB\n",
                build_s,
                static_cast<double>(anns->IndexMemoryBytes()) / (1 << 20),
                cts->num_clusters(),
                static_cast<double>(cts->IndexMemoryBytes()) / (1 << 20));

    for (auto method : {discovery::Method::kExhaustive,
                        discovery::Method::kAnns, discovery::Method::kCts}) {
      discovery::DiscoveryOptions search;
      search.top_k = 20;
      // Warm-up, then time all queries.
      engine->Search(method, workload.queries.front().text, search).MoveValue();
      obs::Histogram latency;
      for (const auto& query : workload.queries) {
        WallTimer timer;
        engine->Search(method, query.text, search).MoveValue();
        latency.Record(timer.ElapsedMillis());
      }
      obs::Histogram::Snapshot snapshot = latency.TakeSnapshot();
      std::printf("  %-4s %8.2f ms/query (p50 %.2f, p99 %.2f, max %.2f)\n",
                  std::string(discovery::MethodToString(method)).c_str(),
                  snapshot.mean(), snapshot.p50(), snapshot.p99(),
                  snapshot.max);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape to observe (paper Table 4 / Figure 3): CTS <= ANNS << ExS at\n"
      "every scale, with the gap widening as the corpus grows.\n");
  return 0;
}
