// The §5.3 case study as a walkthrough: for "Climate Change Effects Europe
// 2020", compare how ExS, ANNS and CTS handle a federation containing
// Europe-2020-specific tables, a broad global-climate almanac, a wrong-year
// Europe table, and plenty of unrelated distractors.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/concept_bank.h"
#include "discovery/engine.h"

using namespace mira;

namespace {

struct Corpus {
  table::Federation federation;
  std::shared_ptr<embed::Lexicon> lexicon;
  std::vector<std::string> names;
  std::vector<std::string> notes;
};

Corpus MakeCorpus() {
  Corpus cs;
  cs.lexicon = std::make_shared<embed::Lexicon>();
  int32_t climate = cs.lexicon->AddTopic("climate");
  int32_t europe = cs.lexicon->AddAspect(climate, "europe_effects");
  int32_t global = cs.lexicon->AddAspect(climate, "global_trends");
  int32_t policy = cs.lexicon->AddAspect(climate, "policy");
  auto add_concept = [&](int32_t aspect, const char* name,
                         std::initializer_list<const char*> surfaces) {
    int32_t id = cs.lexicon->AddConcept(cs.lexicon->TopicOfAspect(aspect),
                                        name, aspect);
    for (const char* s : surfaces) cs.lexicon->AddSurface(id, s);
  };
  add_concept(europe, "climate_change", {"climate", "warming", "climate-change"});
  add_concept(europe, "europe", {"europe", "european", "eu"});
  add_concept(europe, "heatwave", {"heatwave", "heat-wave", "canicule"});
  add_concept(europe, "drought", {"drought", "aridity"});
  add_concept(global, "global", {"global", "worldwide", "planetary"});
  add_concept(global, "emissions", {"emissions", "co2", "greenhouse"});
  add_concept(global, "sea_level", {"sea-level", "ocean-rise"});
  add_concept(policy, "agreement", {"agreement", "accord", "treaty"});
  add_concept(policy, "target", {"target", "pledge", "commitment"});

  auto add = [&](const char* name, const char* note,
                 std::vector<std::string> schema,
                 std::vector<std::vector<std::string>> rows) {
    table::Relation r;
    r.name = name;
    r.schema = std::move(schema);
    for (auto& row : rows) r.AddRow(std::move(row)).Abort("climate example");
    cs.federation.AddRelation(std::move(r));
    cs.names.emplace_back(name);
    cs.notes.emplace_back(note);
  };

  add("EuropeEffects2020", "what Sarah wants",
      {"Region", "Year", "Event", "Impact"},
      {{"europe", "2020", "heatwave", "severe"},
       {"european", "2020", "drought", "moderate"},
       {"eu", "2020", "warming", "high"}});
  add("EuropeDamage2020", "what Sarah wants",
      {"Country", "Year", "Effect", "Cost"},
      {{"european", "2020", "heatwave", "4.1"},
       {"europe", "2020", "aridity", "2.7"}});
  add("GlobalClimateAlmanac", "broad global data (the ExS trap)",
      {"Theme", "Note"},
      {{"global", "warming"},
       {"planetary", "emissions"},
       {"worldwide", "co2"},
       {"greenhouse", "sea-level"},
       {"climate", "ocean-rise"}});
  add("EuropeEffects1995", "right region, wrong years",
      {"Region", "Year", "Event"},
      {{"europe", "1995", "heatwave"}, {"european", "1996", "drought"}});
  add("ClimatePolicy2020", "right year, policy not effects",
      {"Year", "Instrument"},
      {{"2020", "accord"}, {"2020", "pledge"}, {"2021", "treaty"}});

  // Bulk distractors from unrelated topics.
  int32_t sports = cs.lexicon->AddTopic("sports");
  int32_t leagues = cs.lexicon->AddAspect(sports, "leagues");
  add_concept(leagues, "club", {"club", "team", "squad"});
  int32_t economy = cs.lexicon->AddTopic("economy");
  int32_t markets = cs.lexicon->AddAspect(economy, "markets");
  add_concept(markets, "stock", {"stock", "equity", "share"});

  Rng rng(777);
  const std::vector<std::string> pools[2] = {{"club", "team", "squad"},
                                             {"stock", "equity", "share"}};
  for (int t = 0; t < 50; ++t) {
    table::Relation r;
    r.name = "distractor_" + std::to_string(t);
    r.schema = {datagen::MakePseudoWord(&rng, 2),
                datagen::MakePseudoWord(&rng, 2),
                datagen::MakePseudoWord(&rng, 2)};
    const auto& pool = pools[t % 2];
    for (int row = 0; row < 5; ++row) {
      r.AddRow({pool[rng.NextBounded(pool.size())],
                datagen::MakePseudoWord(&rng, 3),
                std::to_string(1900 + rng.NextBounded(130))})
          .Abort("climate example");
    }
    cs.names.push_back(r.name);
    cs.notes.emplace_back("unrelated");
    cs.federation.AddRelation(std::move(r));
  }
  return cs;
}

}  // namespace

int main() {
  Corpus cs = MakeCorpus();

  discovery::EngineOptions options;
  options.encoder.dim = 256;
  options.anns.cell_candidates = 48;
  options.cts.cell_candidates = 48;
  options.cts.cluster_candidates = 4;
  auto engine =
      discovery::DiscoveryEngine::Build(cs.federation, cs.lexicon, options)
          .MoveValue();

  const std::string query = "climate-change effects europe 2020";
  std::printf("Query: \"%s\"\n", query.c_str());
  std::printf("Corpus: %zu tables (%zu cells)\n\n", cs.federation.size(),
              cs.federation.TotalCells());

  for (auto method : {discovery::Method::kExhaustive, discovery::Method::kAnns,
                      discovery::Method::kCts}) {
    discovery::DiscoveryOptions search;
    search.top_k = 4;
    auto ranking = engine->Search(method, query, search).MoveValue();
    std::printf("%s top-4:\n",
                std::string(discovery::MethodToString(method)).c_str());
    for (size_t i = 0; i < ranking.size(); ++i) {
      std::printf("  %zu. %-22s %.3f  (%s)\n", i + 1,
                  cs.names[ranking[i].relation].c_str(), ranking[i].score,
                  cs.notes[ranking[i].relation].c_str());
    }
  }
  std::printf(
      "\nTakeaway (paper §5.3): ExS averages similarity over *all* cells, so\n"
      "broad or wrong-year climate tables can outrank the specific answer;\n"
      "ANNS narrows but still blends context; CTS first selects the cluster\n"
      "of Europe-2020 content via its medoid and searches only there.\n");
  return 0;
}
