// Quickstart: build a federation from CSV, teach the encoder a few synonyms,
// and ask all three search methods for datasets related to a keyword query.
//
//   $ ./examples/quickstart
//
// This is the 60-second tour of the public API:
//   table::ParseCsv / Federation  -> the data model
//   embed::Lexicon                -> domain synonyms (optional but powerful)
//   discovery::DiscoveryEngine    -> one-call pipeline (Figure 2)

#include <cstdio>
#include <memory>

#include "discovery/engine.h"
#include "table/csv_reader.h"

using namespace mira;

int main() {
  // 1. Load datasets. Any CSV source works; here they are inline.
  table::Federation federation;
  federation.AddRelation(
      table::ParseCsv("country,product,revenue\n"
                      "germany,laptops,120\n"
                      "france,phones,95\n"
                      "spain,tablets,60\n",
                      "eu_sales")
          .MoveValue());
  federation.AddRelation(
      table::ParseCsv("city,reading,unit\n"
                      "oslo,-3,celsius\n"
                      "cairo,31,celsius\n",
                      "weather_log")
          .MoveValue());
  federation.AddRelation(
      table::ParseCsv("region,item,units\n"
                      "bavaria,notebooks,40\n"
                      "saxony,handsets,25\n",
                      "de_shipments")
          .MoveValue());

  // 2. (Optional) teach the encoder that some words mean the same thing.
  //    Without a lexicon MIRA still works on lexical similarity; with one it
  //    bridges vocabulary gaps like laptops ~ notebooks.
  auto lexicon = std::make_shared<embed::Lexicon>();
  int32_t electronics = lexicon->AddTopic("consumer_electronics");
  int32_t devices = lexicon->AddAspect(electronics, "devices");
  int32_t laptop = lexicon->AddConcept(electronics, "laptop", devices);
  lexicon->AddSurface(laptop, "laptops");
  lexicon->AddSurface(laptop, "notebooks");
  int32_t phone = lexicon->AddConcept(electronics, "phone", devices);
  lexicon->AddSurface(phone, "phones");
  lexicon->AddSurface(phone, "handsets");

  // 3. Build the engine: embeds every cell, builds the ANNS vector database
  //    (PQ + HNSW) and the CTS cluster structures.
  discovery::EngineOptions options;
  options.encoder.dim = 256;
  auto engine =
      discovery::DiscoveryEngine::Build(federation, lexicon, options)
          .MoveValue();

  // 4. Search. "notebook sales" matches eu_sales and de_shipments even
  //    though neither contains the word "notebook" + "sales" verbatim.
  const char* query = "notebook sales by region";
  std::printf("query: \"%s\"\n\n", query);
  for (auto method : {discovery::Method::kExhaustive, discovery::Method::kAnns,
                      discovery::Method::kCts}) {
    discovery::DiscoveryOptions search;
    search.top_k = 3;
    auto ranking = engine->Search(method, query, search).MoveValue();
    std::printf("%-4s:", std::string(discovery::MethodToString(method)).c_str());
    for (const auto& hit : ranking) {
      std::printf("  %s (%.3f)",
                  engine->federation().relation(hit.relation).name.c_str(),
                  hit.score);
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe two sales tables rank above the weather log for every method:\n"
      "the lexicon made laptops/notebooks and phones/handsets neighbors in\n"
      "embedding space, so the match is semantic, not string-based.\n");
  return 0;
}
