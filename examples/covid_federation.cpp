// The paper's motivating example (Figure 1 / §2): Sarah searches a
// federation of WHO / CDC / ECDC vaccine tables for "COVID". Only ECDC
// contains the literal keyword; keyword search misses WHO and CDC, while
// MIRA's semantic matching returns all three.

#include <cstdio>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "discovery/engine.h"
#include "text/tokenizer.h"

using namespace mira;

namespace {

// Plain keyword containment — what Sarah's original search engine did.
bool KeywordMatch(const table::Relation& relation, const std::string& keyword) {
  text::Tokenizer tokenizer;
  std::string needle = ToLower(keyword);
  for (const auto& row : relation.rows) {
    for (const auto& cell : row) {
      for (const auto& token : tokenizer.Tokenize(cell)) {
        if (token.find(needle) != std::string::npos) return true;
      }
    }
  }
  return false;
}

void PrintRelation(const table::Relation& r) {
  std::printf("  %s(", r.name.c_str());
  for (size_t c = 0; c < r.schema.size(); ++c) {
    std::printf("%s%s", c ? ", " : "", r.schema[c].c_str());
  }
  std::printf(") — %zu rows, e.g. ", r.num_rows());
  for (size_t c = 0; c < r.schema.size(); ++c) {
    std::printf("%s%s", c ? " | " : "", r.Cell(0, c).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // --- Figure 1's three platforms ---
  table::Federation federation;

  table::Relation who;
  who.name = "WHO";
  who.schema = {"Region", "Date", "Vaccine", "Dosage"};
  who.AddRow({"North America", "2021-01-01", "Comirnaty", "First"}).Abort("");
  who.AddRow({"Europe", "2021-02-01", "Vaxzevria", "Second"}).Abort("");
  who.AddRow({"Asia", "2021-03-01", "CoronaVac", "First"}).Abort("");
  who.AddRow({"Africa", "2021-04-01", "Covaxin", "Second"}).Abort("");
  federation.AddRelation(std::move(who));

  table::Relation cdc;
  cdc.name = "CDC";
  cdc.schema = {"State", "Date", "Immunogen", "Manufacturer"};
  cdc.AddRow({"California", "2021-01-01", "mRNA", "Moderna"}).Abort("");
  cdc.AddRow({"Texas", "2021-02-01", "Vector Virus", "Janssen"}).Abort("");
  cdc.AddRow({"Florida", "2021-03-01", "mRNA", "Pfizer"}).Abort("");
  cdc.AddRow({"New York", "2021-04-01", "Protein Subunit", "Novavax"}).Abort("");
  federation.AddRelation(std::move(cdc));

  table::Relation ecdc;
  ecdc.name = "ECDC";
  ecdc.schema = {"Country", "Date", "Trade Name", "Disease"};
  ecdc.AddRow({"Germany", "2021-01-01", "Pfizer-BioNTech", "COVID-19"}).Abort("");
  ecdc.AddRow({"France", "2021-02-01", "AstraZeneca", "COVID-19"}).Abort("");
  ecdc.AddRow({"Spain", "2021-03-01", "Moderna", "COVID-19"}).Abort("");
  ecdc.AddRow({"Italy", "2021-04-01", "Pfizer-BioNTech", "COVID-19"}).Abort("");
  federation.AddRelation(std::move(ecdc));

  table::Relation football;
  football.name = "FootballScores";
  football.schema = {"Team", "Points"};
  football.AddRow({"Harriers", "42"}).Abort("");
  football.AddRow({"Rovers", "38"}).Abort("");
  federation.AddRelation(std::move(football));

  std::printf("Federation:\n");
  for (const auto& relation : federation.relations()) PrintRelation(relation);

  // --- Sarah's keyword search ---
  std::printf("\n[1] keyword search for \"COVID\":\n");
  for (const auto& relation : federation.relations()) {
    if (KeywordMatch(relation, "covid")) {
      std::printf("  HIT  %s\n", relation.name.c_str());
    } else {
      std::printf("  miss %s\n", relation.name.c_str());
    }
  }
  std::printf("  -> only ECDC mentions the literal keyword; WHO and CDC are\n"
              "     about COVID vaccines too, but use trade names and\n"
              "     immunogen types (Comirnaty, mRNA, ...).\n");

  // --- Semantic matching: model knowledge that vaccine names relate ---
  auto lexicon = std::make_shared<embed::Lexicon>();
  int32_t covid = lexicon->AddTopic("covid");
  int32_t vaccines = lexicon->AddAspect(covid, "vaccines");
  auto add_concept = [&](const char* name,
                         std::initializer_list<const char*> surfaces) {
    int32_t id = lexicon->AddConcept(covid, name, vaccines);
    for (const char* s : surfaces) lexicon->AddSurface(id, s);
  };
  add_concept("covid_disease", {"covid", "covid-19", "coronavirus"});
  add_concept("pfizer_vaccine", {"comirnaty", "pfizer-biontech", "pfizer", "mrna"});
  add_concept("astrazeneca_vaccine", {"vaxzevria", "astrazeneca", "janssen"});
  add_concept("sinovac_vaccine", {"coronavac", "sinovac", "covaxin"});
  add_concept("moderna_vaccine", {"moderna", "spikevax"});
  add_concept("novavax_vaccine", {"novavax", "nuvaxovid"});

  discovery::EngineOptions options;
  options.encoder.dim = 256;
  auto engine =
      discovery::DiscoveryEngine::Build(federation, lexicon, options)
          .MoveValue();

  std::printf("\n[2] semantic search for \"COVID\" (all three methods):\n");
  for (auto method : {discovery::Method::kExhaustive, discovery::Method::kAnns,
                      discovery::Method::kCts}) {
    discovery::DiscoveryOptions search;
    search.top_k = 4;
    auto ranking = engine->Search(method, "COVID", search).MoveValue();
    std::printf("  %-4s:",
                std::string(discovery::MethodToString(method)).c_str());
    for (const auto& hit : ranking) {
      std::printf("  %s(%.3f)",
                  engine->federation().relation(hit.relation).name.c_str(),
                  hit.score);
    }
    std::printf("\n");
  }
  std::printf(
      "  -> WHO and CDC now rank alongside ECDC: their vaccine trade names\n"
      "     and immunogens embed near the COVID concept, while the football\n"
      "     table stays at the bottom. This is the paper's Figure 1 story.\n");
  return 0;
}
