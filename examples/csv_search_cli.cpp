// CSV search CLI: index a directory of CSV files and answer keyword queries
// from the command line with any of the three methods — the "use MIRA on
// your own data" path.
//
//   $ ./examples/csv_search_cli <dir-with-csvs> "keyword query" [method] [k]
//
// method: exs | anns | cts (default cts); k: top-k (default 10).
// With no arguments, a demo directory is synthesized under /tmp.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "discovery/engine.h"
#include "table/csv_reader.h"

using namespace mira;

namespace {

Result<table::Federation> LoadDirectory(const std::string& dir) {
  table::Federation federation;
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".csv") files.push_back(entry.path());
  }
  if (ec) return Status::IoError("cannot list directory: " + dir);
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    MIRA_ASSIGN_OR_RETURN(table::Relation relation,
                          table::ReadCsvFile(file.string()));
    if (relation.num_rows() == 0) continue;
    federation.AddRelation(std::move(relation));
  }
  if (federation.empty()) {
    return Status::NotFound("no non-empty .csv files in " + dir);
  }
  return federation;
}

std::string MakeDemoDirectory() {
  auto dir = std::filesystem::temp_directory_path() / "mira_csv_demo";
  std::filesystem::create_directories(dir);
  auto write = [&](const char* name, const char* body) {
    std::ofstream out(dir / name);
    out << body;
  };
  write("eu_energy.csv",
        "country,source,twh\ngermany,wind,131\nfrance,nuclear,379\n"
        "spain,solar,28\n");
  write("us_power_plants.csv",
        "state,fuel,capacity\ntexas,gas,54\ncalifornia,photovoltaic,31\n"
        "iowa,turbines,12\n");
  write("library_loans.csv",
        "branch,title,loans\ncentral,dune,42\nnorth,neuromancer,17\n");
  return dir.string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : MakeDemoDirectory();
  std::string query = argc > 2 ? argv[2] : "solar power generation";
  std::string method_name = argc > 3 ? ToLower(argv[3]) : "cts";
  size_t k = argc > 4 ? static_cast<size_t>(std::atol(argv[4])) : 10;

  discovery::Method method = discovery::Method::kCts;
  if (method_name == "exs") method = discovery::Method::kExhaustive;
  else if (method_name == "anns") method = discovery::Method::kAnns;
  else if (method_name != "cts") {
    std::fprintf(stderr, "unknown method '%s' (use exs|anns|cts)\n",
                 method_name.c_str());
    return 2;
  }

  auto federation_result = LoadDirectory(dir);
  if (!federation_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 federation_result.status().ToString().c_str());
    return 1;
  }
  table::Federation federation = federation_result.MoveValue();
  std::printf("indexed %zu tables (%zu cells) from %s\n", federation.size(),
              federation.TotalCells(), dir.c_str());

  // Without a curated lexicon the encoder still bridges morphological
  // variants via character n-grams (solar ~ photovoltaic requires a lexicon;
  // turbine ~ turbines does not).
  auto engine = discovery::DiscoveryEngine::Build(
                    std::move(federation), std::make_shared<embed::Lexicon>(),
                    {})
                    .MoveValue();

  discovery::DiscoveryOptions options;
  options.top_k = k;
  auto ranking = engine->Search(method, query, options).MoveValue();
  std::printf("\n%s results for \"%s\":\n",
              std::string(discovery::MethodToString(method)).c_str(),
              query.c_str());
  for (size_t i = 0; i < ranking.size(); ++i) {
    const table::Relation& relation =
        engine->federation().relation(ranking[i].relation);
    std::printf("  %2zu. %-24s %.4f  (%zu x %zu)\n", i + 1,
                relation.name.c_str(), ranking[i].score, relation.num_rows(),
                relation.num_columns());
  }
  return 0;
}
