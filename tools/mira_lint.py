#!/usr/bin/env python3
"""MIRA project-invariant linter — checks clang-tidy can't express.

Rules (see docs/STATIC_ANALYSIS.md for rationale and triage policy):

  endl          no std::endl in first-party code (src/, bench/, examples/):
                it forces a flush on every use; use '\\n'.
  guard         every header under src/ uses include guards named
                MIRA_<PATH>_H_ (e.g. src/index/hnsw_index.h ->
                MIRA_INDEX_HNSW_INDEX_H_), with matching #define and a
                commented #endif.
  naked-new     no naked new/delete outside src/common. `new` is allowed when
                ownership is taken on the same statement by unique_ptr/
                shared_ptr construction or .reset(...) — the private-ctor
                factory idiom make_unique cannot serve.
  nodiscard     function declarations in src/ headers returning Status or
                Result<T> by value carry [[nodiscard]], and the class-level
                [[nodiscard]] markers on Status/Result stay in place.
  bare-nolint   clang-tidy suppressions must name a check and justify it:
                `// NOLINT(check) -- reason`; bare `// NOLINT` is rejected.
  intrinsics    raw SIMD intrinsic headers (<immintrin.h>, <arm_neon.h>, ...)
                are confined to src/vecmath/ — everything else goes through
                the dispatched kernels in vecmath/simd.h, so portability and
                the scalar fallback stay in one place.
  obs-in-kernels no observability in src/vecmath/ (no "obs/..." includes, no
                TraceSpan/MetricRegistry/QueryLog/StatsReporter use): the SIMD
                kernels are the innermost hot loops, and even a no-op span
                constructor or a relaxed atomic bump is measurable there.
                Instrument the callers (index/discovery layers) instead.
                One layer further out, the control-plane obs headers
                (obs/debug_server.h, obs/cpu_profiler.h, obs/slo.h) are
                additionally banned from the index hot paths (src/index/,
                src/vectordb/): search code publishes metrics/spans, it
                never hosts the debugz server, the profiler, or the SLO
                evaluator — those are wired at the binary level
                (bench/harness.cc, src/service/monitor.cc).
  failpoint     MIRA_FAILPOINT macros live only in .cc files outside
                src/vecmath/ (src/common/failpoint.h, which defines them, is
                exempt). Headers would leak injection sites into every
                includer, and the vecmath kernels are too hot for even a
                compiled-out macro site (see docs/ROBUSTNESS.md).
  raw-sync      no raw standard lock primitives (std::mutex, lock_guard,
                condition_variable, <mutex>/<shared_mutex>/
                <condition_variable> includes, ...) in src/ outside
                src/common/sync.h: first-party code locks through the
                capability-annotated mira::Mutex/SharedMutex/CondVar wrappers
                so Clang -Wthread-safety sees every acquisition.
  guarded-member a mira::Mutex/SharedMutex member declared in a src/ header
                must be referenced by at least one thread-safety annotation
                (MIRA_GUARDED_BY/MIRA_REQUIRES/MIRA_ACQUIRE/...) in the same
                file — a mutex that guards nothing the analysis can see is
                either dead or hiding unannotated shared state.

A finding can be suppressed with a justified marker on the same line or the
line above: `// mira-lint-allow(rule-name) -- reason`. Bare markers (no rule
name or no reason) are themselves findings.

Usage: tools/mira_lint.py [paths...]   (defaults to the whole tree)
Exit:  0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

FINDINGS: list[str] = []


ALLOW_RE = re.compile(r"//\s*mira-lint-allow\(([a-z-]+)\)\s*--\s*\S")
ALLOW_MALFORMED_RE = re.compile(r"//\s*mira-lint-allow\b")

# Populated per file before the checks run: lineno -> set of allowed rules.
ALLOWED: dict[int, set[str]] = {}


def collect_allows(path: Path, lines: list[str]) -> None:
    """Builds the suppression map; malformed markers are findings."""
    ALLOWED.clear()
    for i, raw in enumerate(lines, 1):
        m = ALLOW_RE.search(raw)
        if m:
            # The marker covers its own line and the next (annotation-above
            # style), like NOLINTNEXTLINE.
            ALLOWED.setdefault(i, set()).add(m.group(1))
            ALLOWED.setdefault(i + 1, set()).add(m.group(1))
        elif ALLOW_MALFORMED_RE.search(raw):
            report(path, i, "bare-nolint",
                   "mira-lint-allow must name a rule and a reason: "
                   "// mira-lint-allow(rule) -- reason")


def report(path: Path, lineno: int, rule: str, msg: str) -> None:
    if rule in ALLOWED.get(lineno, ()):
        return
    FINDINGS.append(f"{path.as_posix()}:{lineno}: [{rule}] {msg}")


def strip_comments_and_strings(line: str) -> str:
    """Crude single-line scrub so rules don't fire inside comments/strings."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    line = re.sub(r"//.*$", "", line)
    return line


def tracked_files(args: list[str]) -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "--", *args] if args else ["git", "ls-files"],
        cwd=REPO, capture_output=True, text=True, check=True).stdout
    return [REPO / p for p in out.splitlines() if p]


def check_endl(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not rel.startswith(("src/", "bench/", "examples/")):
        return
    for i, raw in enumerate(lines, 1):
        if "std::endl" in strip_comments_and_strings(raw):
            report(path, i, "endl", "std::endl flushes; use '\\n'")


def expected_guard(path: Path) -> str:
    rel = path.relative_to(REPO).as_posix()
    stem = rel[len("src/"):]
    return "MIRA_" + re.sub(r"[/.]", "_", stem).upper() + "_"


def check_guard(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not (rel.startswith("src/") and rel.endswith(".h")):
        return
    guard = expected_guard(path)
    text = "".join(lines)
    if f"#ifndef {guard}" not in text:
        report(path, 1, "guard", f"missing '#ifndef {guard}'")
        return
    if f"#define {guard}" not in text:
        report(path, 1, "guard", f"missing '#define {guard}'")
    if f"#endif  // {guard}" not in text:
        report(path, len(lines), "guard",
               f"closing line must be '#endif  // {guard}'")


NEW_RE = re.compile(r"\bnew\b")  # includes placement `new (ptr) T`
OWNED_NEW_RE = re.compile(
    r"(unique_ptr\s*<[^;]*>\s*\w*\s*\(\s*new\b"   # unique_ptr<T> p(new T...)
    r"|shared_ptr\s*<[^;]*>\s*\w*\s*\(\s*new\b"
    r"|\.reset\s*\(\s*new\b)")
DELETE_RE = re.compile(r"\bdelete\s*(\[\s*\])?\s+\w")


def check_naked_new(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not rel.startswith(("src/", "bench/", "examples/")):
        return
    if rel.startswith("src/common/"):
        return  # common may build owning primitives
    for i, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if re.search(r"=\s*delete\b", line):
            continue
        # The owning construct may sit on the previous line
        # (`unique_ptr<T> p(\n    new T(...))`), so test the joined pair.
        prev = strip_comments_and_strings(lines[i - 2]) if i >= 2 else ""
        joined = prev.rstrip("\n") + " " + line
        if NEW_RE.search(line) and not OWNED_NEW_RE.search(joined):
            report(path, i, "naked-new",
                   "naked new: take ownership on the same statement "
                   "(make_unique, unique_ptr<T> p(new T...), or .reset(new ...))")
        if DELETE_RE.search(line):
            report(path, i, "naked-new", "naked delete: use owning types")


DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:Status|Result<[^;=]*>)\s+"
    r"[A-Za-z_][A-Za-z0-9_]*\s*\(")


def check_nodiscard(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not (rel.startswith("src/") and rel.endswith(".h")):
        return
    if rel == "src/common/status.h":
        if not any("class [[nodiscard]] Status" in ln for ln in lines):
            report(path, 1, "nodiscard",
                   "Status must stay 'class [[nodiscard]] Status'")
        return
    if rel == "src/common/result.h":
        if not any("class [[nodiscard]] Result" in ln for ln in lines):
            report(path, 1, "nodiscard",
                   "Result must stay 'class [[nodiscard]] Result'")
        return
    for i, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if DECL_RE.match(line) and "[[nodiscard]]" not in raw:
            prev = lines[i - 2] if i >= 2 else ""
            if "[[nodiscard]]" not in prev:
                report(path, i, "nodiscard",
                       "Status/Result-returning declaration needs [[nodiscard]]")


BARE_NOLINT_RE = re.compile(r"//\s*NOLINT(NEXTLINE)?\b(?!\()")


def check_bare_nolint(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not rel.startswith(("src/", "tests/", "bench/", "examples/")):
        return
    for i, raw in enumerate(lines, 1):
        if BARE_NOLINT_RE.search(raw):
            report(path, i, "bare-nolint",
                   "suppressions must name the check: // NOLINT(check-name)")


INTRINSIC_HEADER_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|xmmintrin|emmintrin|smmintrin"
    r"|tmmintrin|nmmintrin|pmmintrin|wmmintrin|avxintrin|avx2intrin"
    r"|arm_neon|arm_sve)\.h>")


def check_intrinsics(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not rel.startswith(("src/", "tests/", "bench/", "examples/")):
        return
    if rel.startswith("src/vecmath/"):
        return  # the dispatch layer is the one home for raw intrinsics
    for i, raw in enumerate(lines, 1):
        if INTRINSIC_HEADER_RE.search(strip_comments_and_strings(raw)):
            report(path, i, "intrinsics",
                   "raw SIMD intrinsic headers are confined to src/vecmath/; "
                   "use the dispatched kernels in vecmath/simd.h")


OBS_USE_RE = re.compile(
    r"\bTraceSpan\b|\bScopedTrace\b|\bMetricRegistry\b"
    r"|\bQueryLog\b|\bStatsReporter\b")
# Include directives keep their quoted path (strip_comments_and_strings blanks
# string literals, which would hide them); only trailing comments are dropped.
OBS_INCLUDE_RE = re.compile(r"#\s*include\s*\"obs/")
OBS_CONTROL_PLANE_INCLUDE_RE = re.compile(
    r"#\s*include\s*\"obs/(?:debug_server|cpu_profiler|slo)\.h\"")
# The index hot paths: allowed to publish metrics/spans, but never to pull in
# the control-plane surfaces (the debugz server, the SIGPROF profiler).
HOT_PATH_PREFIXES = ("src/index/", "src/vectordb/")


def check_obs_in_kernels(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    in_kernels = rel.startswith("src/vecmath/")
    in_hot_path = rel.startswith(HOT_PATH_PREFIXES)
    if not in_kernels and not in_hot_path:
        return
    for i, raw in enumerate(lines, 1):
        no_comment = re.sub(r"//.*$", "", raw)
        if in_kernels and (OBS_USE_RE.search(strip_comments_and_strings(raw))
                           or OBS_INCLUDE_RE.search(no_comment)):
            report(path, i, "obs-in-kernels",
                   "no spans/metrics inside src/vecmath/ — instrument the "
                   "calling layer (see docs/OBSERVABILITY.md)")
        elif OBS_CONTROL_PLANE_INCLUDE_RE.search(no_comment):
            report(path, i, "obs-in-kernels",
                   "obs/debug_server.h, obs/cpu_profiler.h, and obs/slo.h "
                   "are control-plane surfaces; index hot paths must not "
                   "include them — wire them at the binary level "
                   "(bench/harness.cc, src/service/monitor.cc)")


FAILPOINT_USE_RE = re.compile(r"\bMIRA_FAILPOINT(_PARTIAL)?\b")


def check_failpoint(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not rel.startswith("src/"):
        return
    if rel == "src/common/failpoint.h":
        return  # the macro definitions themselves
    in_header = rel.endswith(".h")
    in_vecmath = rel.startswith("src/vecmath/")
    if not (in_header or in_vecmath):
        return
    for i, raw in enumerate(lines, 1):
        if FAILPOINT_USE_RE.search(strip_comments_and_strings(raw)):
            where = ("src/vecmath/ is kernel-only"
                     if in_vecmath else "headers leak sites into includers")
            report(path, i, "failpoint",
                   f"MIRA_FAILPOINT sites belong in non-vecmath .cc files "
                   f"({where}; see docs/ROBUSTNESS.md)")


RAW_SYNC_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")
RAW_SYNC_TYPE_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
    r"|recursive_timed_mutex|shared_timed_mutex|condition_variable"
    r"|condition_variable_any|lock_guard|unique_lock|shared_lock"
    r"|scoped_lock)\b")


def check_raw_sync(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not rel.startswith("src/"):
        return
    if rel == "src/common/sync.h":
        return  # the wrappers themselves sit on the std primitives
    for i, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if RAW_SYNC_INCLUDE_RE.search(line) or RAW_SYNC_TYPE_RE.search(line):
            report(path, i, "raw-sync",
                   "raw std lock primitives are confined to src/common/sync.h;"
                   " use mira::Mutex/SharedMutex/CondVar + MutexLock/"
                   "ReaderLock/WriterLock so -Wthread-safety sees the lock")


MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:mira::)?(?:Mutex|SharedMutex)\s+(\w+)\s*;")


def check_guarded_member(path: Path, lines: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    if not (rel.startswith("src/") and rel.endswith(".h")):
        return
    if rel == "src/common/sync.h":
        return
    text = "".join(strip_comments_and_strings(ln) for ln in lines)
    annotation_args = " ".join(
        re.findall(r"MIRA_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED"
                   r"|ACQUIRE|ACQUIRE_SHARED|RELEASE|RELEASE_SHARED|EXCLUDES"
                   r"|ASSERT_CAPABILITY|ASSERT_SHARED_CAPABILITY"
                   r"|RETURN_CAPABILITY|ACQUIRED_BEFORE|ACQUIRED_AFTER)"
                   r"\s*\(([^)]*)\)", text))
    for i, raw in enumerate(lines, 1):
        m = MUTEX_MEMBER_RE.match(strip_comments_and_strings(raw))
        if not m:
            continue
        name = m.group(1)
        if not re.search(rf"\b{re.escape(name)}\b", annotation_args):
            report(path, i, "guarded-member",
                   f"mutex member '{name}' is never referenced by a "
                   "thread-safety annotation in this file — annotate the "
                   "state it guards (MIRA_GUARDED_BY) or the functions that "
                   "need it (MIRA_REQUIRES), or justify with "
                   "mira-lint-allow(guarded-member)")


CHECKS = [check_endl, check_guard, check_naked_new, check_nodiscard,
          check_bare_nolint, check_intrinsics, check_obs_in_kernels,
          check_failpoint, check_raw_sync, check_guarded_member]


def main(argv: list[str]) -> int:
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    try:
        files = tracked_files(argv)
    except subprocess.CalledProcessError as e:
        print(f"mira_lint: git ls-files failed: {e}", file=sys.stderr)
        return 2
    scanned = 0
    for path in files:
        if path.suffix not in (".h", ".cc"):
            continue
        try:
            lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        except (OSError, UnicodeDecodeError) as e:
            print(f"mira_lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        scanned += 1
        collect_allows(path, lines)
        for check in CHECKS:
            check(path, lines)
    if FINDINGS:
        print("\n".join(sorted(FINDINGS)))
        print(f"mira_lint: {len(FINDINGS)} finding(s) in {scanned} files",
              file=sys.stderr)
        return 1
    print(f"mira_lint: clean ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
