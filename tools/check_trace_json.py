#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file written by obs::ChromeTraceWriter.

Used by the perf-smoke CI job against TRACE_case_study.json (written by
bench_case_study) and usable against any exported trace:

    tools/check_trace_json.py TRACE_case_study.json

Checks:
  * top level is a JSON array (the trace_event "JSON Array Format");
  * metadata events ("ph": "M") are process_name / thread_name records with
    pid/tid and an args.name string;
  * every other event is a complete event ("ph": "X") carrying name, cat,
    pid, tid, and numeric ts/dur microseconds with dur >= 0;
  * per (pid, tid) lane, ts is monotonically non-decreasing in file order;
  * per lane, spans nest: sorted by start, every event either starts after
    the enclosing interval ends or lies fully inside it (balanced nesting —
    partial overlap means the writer emitted a malformed tree);
  * every (pid, tid) an X event references has a thread_name metadata record
    and every pid a process_name record;
  * when --expect-worker-spans is passed, at least one X event runs on a
    worker lane (tid != 0) — i.e. cross-thread trace propagation actually
    spliced pool-worker spans into the exported query.

Exit: 0 ok, 1 validation failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys

ERRORS: list[str] = []

X_FIELDS = ("name", "ph", "pid", "tid", "ts", "dur")


def fail(msg: str) -> None:
    ERRORS.append(msg)


def is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_metadata(i: int, event: dict, named_processes: set,
                   named_threads: set) -> None:
    name = event.get("name")
    if name not in ("process_name", "thread_name"):
        fail(f"event {i}: metadata event with unexpected name {name!r}")
        return
    if not isinstance(event.get("pid"), int):
        fail(f"event {i}: metadata event without integer pid")
        return
    args = event.get("args")
    if not isinstance(args, dict) or not isinstance(args.get("name"), str):
        fail(f"event {i}: metadata event without args.name string")
    if name == "process_name":
        named_processes.add(event["pid"])
    else:
        if not isinstance(event.get("tid"), int):
            fail(f"event {i}: thread_name event without integer tid")
            return
        named_threads.add((event["pid"], event["tid"]))


def check_complete_event(i: int, event: dict) -> bool:
    ok = True
    for field in X_FIELDS:
        if field not in event:
            fail(f"event {i}: X event missing field {field!r}")
            ok = False
    if not ok:
        return False
    if not isinstance(event["name"], str) or not event["name"]:
        fail(f"event {i}: X event name must be a non-empty string")
        ok = False
    for field in ("pid", "tid"):
        if not isinstance(event[field], int):
            fail(f"event {i}: X event {field} must be an integer")
            ok = False
    for field in ("ts", "dur"):
        if not is_number(event[field]):
            fail(f"event {i}: X event {field} must be a number")
            ok = False
    if ok and event["dur"] < 0:
        fail(f"event {i}: X event has negative dur {event['dur']!r}")
        ok = False
    return ok


def check_lane(lane: tuple, events: list) -> None:
    """Per-(pid, tid) checks: monotonic ts and balanced span nesting."""
    previous_ts = None
    for i, event in events:
        if previous_ts is not None and event["ts"] < previous_ts - 1e-9:
            fail(f"event {i}: ts {event['ts']} goes backwards on lane "
                 f"pid={lane[0]} tid={lane[1]} (previous {previous_ts})")
        previous_ts = event["ts"]

    # Balanced nesting: walking spans by (start, -duration), each span must
    # lie fully inside whatever enclosing span is still open, never straddle
    # its end. A small epsilon absorbs float rounding in ms -> us conversion.
    eps = 1e-6
    ordered = sorted(events, key=lambda e: (e[1]["ts"], -e[1]["dur"]))
    stack: list = []  # (end, event index)
    for i, event in ordered:
        start, end = event["ts"], event["ts"] + event["dur"]
        while stack and start >= stack[-1][0] - eps:
            stack.pop()
        if stack and end > stack[-1][0] + eps:
            fail(f"event {i}: span [{start}, {end}] straddles the end of "
                 f"enclosing span (ends {stack[-1][0]}) on lane "
                 f"pid={lane[0]} tid={lane[1]}")
        stack.append((end, i))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="Chrome trace JSON file to validate")
    parser.add_argument("--expect-worker-spans", action="store_true",
                        help="require at least one X event with tid != 0 "
                             "(spans propagated from pool workers)")
    args = parser.parse_args(argv)

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace_json: cannot load {args.path}: {e}",
              file=sys.stderr)
        return 2

    if not isinstance(doc, list):
        print("check_trace_json: top level is not a JSON array",
              file=sys.stderr)
        return 1

    named_processes: set = set()
    named_threads: set = set()
    lanes: dict = {}
    worker_events = 0
    x_events = 0
    for i, event in enumerate(doc):
        if not isinstance(event, dict):
            fail(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            check_metadata(i, event, named_processes, named_threads)
            continue
        if ph != "X":
            fail(f"event {i}: unexpected phase {ph!r} (only M/X are emitted)")
            continue
        if not check_complete_event(i, event):
            continue
        x_events += 1
        if event["tid"] != 0:
            worker_events += 1
        lanes.setdefault((event["pid"], event["tid"]), []).append((i, event))

    for lane, events in lanes.items():
        check_lane(lane, events)
        if lane not in named_threads:
            fail(f"lane pid={lane[0]} tid={lane[1]} has no thread_name "
                 "metadata event")
        if lane[0] not in named_processes:
            fail(f"pid {lane[0]} has no process_name metadata event")

    if args.expect_worker_spans and worker_events == 0:
        fail("expected at least one worker-thread span (tid != 0), found "
             "none — cross-thread propagation did not contribute spans")

    if ERRORS:
        for err in ERRORS:
            print(f"check_trace_json: {err}", file=sys.stderr)
        return 1
    print(f"ok: {len(doc)} events ({x_events} spans, "
          f"{worker_events} on worker threads, {len(lanes)} lanes)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
