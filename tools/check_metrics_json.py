#!/usr/bin/env python3
"""Validates the shape of a MetricRegistry::ExportJson document.

Used by the perf-smoke CI job against METRICS_case_study.json (written by
bench_case_study) and usable against any metrics dump:

    tools/check_metrics_json.py METRICS_case_study.json

Checks:
  * top level is an object with "counters" / "gauges" / "histograms" dicts;
  * counters are non-negative integers, gauges are finite numbers;
  * every histogram carries count/sum/min/max/mean/p50/p90/p99/buckets;
  * bucket entries are [lower_bound, upper_bound, count] triples with
    lower < upper, non-overlapping ascending ranges, and counts that sum
    to the histogram's count;
  * quantiles are ordered (min <= p50 <= p90 <= p99 <= max) when count > 0;
  * "exemplars", when present, is a list of [value, id] pairs with finite
    values and positive integer query-log ids;
  * when --expect-queries is passed, the per-method query metrics the engine
    publishes (mira.query.count.* / mira.query.latency_ms.*) are present and
    populated.

Exit: 0 ok, 1 validation failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

ERRORS: list[str] = []

HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99",
                    "buckets")
QUERY_METHODS = ("exs", "anns", "cts")


def fail(msg: str) -> None:
    ERRORS.append(msg)


def check_counters(counters: object) -> None:
    if not isinstance(counters, dict):
        fail("'counters' is not an object")
        return
    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f"counter {name!r}: expected non-negative integer, "
                 f"got {value!r}")


def check_gauges(gauges: object) -> None:
    if not isinstance(gauges, dict):
        fail("'gauges' is not an object")
        return
    for name, value in gauges.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            fail(f"gauge {name!r}: expected finite number, got {value!r}")


def check_histogram(name: str, hist: object) -> None:
    if not isinstance(hist, dict):
        fail(f"histogram {name!r}: not an object")
        return
    for field in HISTOGRAM_FIELDS:
        if field not in hist:
            fail(f"histogram {name!r}: missing field {field!r}")
    count = hist.get("count")
    if not isinstance(count, int) or count < 0:
        fail(f"histogram {name!r}: bad count {count!r}")
        return
    buckets = hist.get("buckets")
    if not isinstance(buckets, list):
        fail(f"histogram {name!r}: 'buckets' is not a list")
        return
    bucket_total = 0
    previous_upper = -math.inf
    for entry in buckets:
        if (not isinstance(entry, list) or len(entry) != 3
                or not isinstance(entry[0], (int, float))
                or not isinstance(entry[1], (int, float))
                or not isinstance(entry[2], int) or entry[2] <= 0):
            fail(f"histogram {name!r}: bucket entry {entry!r} is not "
                 "[lower_bound, upper_bound, positive_count]")
            return
        lower, upper, bucket_count = entry
        if lower >= upper:
            fail(f"histogram {name!r}: bucket [{lower}, {upper}) is empty "
                 "or inverted")
        if lower < previous_upper:
            fail(f"histogram {name!r}: bucket [{lower}, {upper}) overlaps "
                 "or reorders the previous bucket")
        previous_upper = upper
        bucket_total += bucket_count
    if bucket_total != count:
        fail(f"histogram {name!r}: bucket counts sum to {bucket_total}, "
             f"count says {count}")
    check_exemplars(name, hist)
    if count > 0:
        ordered = (hist["min"], hist["p50"], hist["p90"], hist["p99"],
                   hist["max"])
        for lo, hi, what in zip(ordered, ordered[1:],
                                ("min<=p50", "p50<=p90", "p90<=p99",
                                 "p99<=max")):
            if lo > hi + 1e-9:
                fail(f"histogram {name!r}: quantile order violated "
                     f"({what}: {lo} > {hi})")
        if hist["sum"] < 0 and hist["min"] >= 0:
            fail(f"histogram {name!r}: negative sum with non-negative min")


def check_exemplars(name: str, hist: dict) -> None:
    if "exemplars" not in hist:
        return  # optional: only emitted once a tail observation was captured
    exemplars = hist["exemplars"]
    if not isinstance(exemplars, list) or not exemplars:
        fail(f"histogram {name!r}: 'exemplars' present but not a non-empty "
             "list")
        return
    for entry in exemplars:
        if (not isinstance(entry, list) or len(entry) != 2
                or not isinstance(entry[0], (int, float))
                or not math.isfinite(entry[0])
                or not isinstance(entry[1], int) or entry[1] <= 0):
            fail(f"histogram {name!r}: exemplar {entry!r} is not "
                 "[finite_value, positive_id]")
            return
        minimum = hist.get("min")
        maximum = hist.get("max")
        if (isinstance(minimum, (int, float)) and isinstance(
                maximum, (int, float)) and hist.get("count", 0) > 0
                and not minimum <= entry[0] <= maximum):
            fail(f"histogram {name!r}: exemplar value {entry[0]} outside "
                 f"[min={minimum}, max={maximum}]")


def check_query_metrics(doc: dict) -> None:
    counters = doc.get("counters", {})
    histograms = doc.get("histograms", {})
    for method in QUERY_METHODS:
        count_name = f"mira.query.count.{method}"
        latency_name = f"mira.query.latency_ms.{method}"
        if counters.get(count_name, 0) <= 0:
            fail(f"expected populated counter {count_name!r}")
        hist = histograms.get(latency_name)
        if not isinstance(hist, dict) or hist.get("count", 0) <= 0:
            fail(f"expected populated histogram {latency_name!r}")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="metrics JSON file to validate")
    parser.add_argument("--expect-queries", action="store_true",
                        help="require populated mira.query.* metrics for "
                             "ExS/ANNS/CTS")
    args = parser.parse_args(argv)

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_metrics_json: cannot load {args.path}: {e}",
              file=sys.stderr)
        return 2

    if not isinstance(doc, dict):
        fail("top level is not an object")
    else:
        for section in ("counters", "gauges", "histograms"):
            if section not in doc:
                fail(f"missing top-level section {section!r}")
        check_counters(doc.get("counters", {}))
        check_gauges(doc.get("gauges", {}))
        histograms = doc.get("histograms", {})
        if isinstance(histograms, dict):
            for name, hist in histograms.items():
                check_histogram(name, hist)
        else:
            fail("'histograms' is not an object")
        if args.expect_queries:
            check_query_metrics(doc)

    if ERRORS:
        for err in ERRORS:
            print(f"check_metrics_json: {err}", file=sys.stderr)
        return 1
    counters = len(doc.get("counters", {}))
    gauges = len(doc.get("gauges", {}))
    histograms = len(doc.get("histograms", {}))
    print(f"ok: {counters} counters, {gauges} gauges, "
          f"{histograms} histograms")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
