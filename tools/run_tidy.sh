#!/usr/bin/env bash
# Runs clang-tidy over MIRA's first-party sources against a build tree's
# compile_commands.json.
#
# Usage:
#   tools/run_tidy.sh [BUILD_DIR] [-- file1.cc file2.cc ...]
#
# With no file list, lints every git-tracked first-party translation unit.
# A file list after `--` restricts the run (CI's diff gate uses this).
# BUILD_DIR defaults to the first of build, build/release, build/asan that
# contains compile_commands.json. Produce one with any preset, e.g.:
#   cmake --preset release
#
# Exit codes: 0 = clean (or clang-tidy unavailable, reported as SKIPPED so
# environments without LLVM — like this container — don't hard-fail; CI
# installs clang-tidy and treats findings as errors via WarningsAsErrors).
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "$tidy_bin" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy_bin="$cand"
      break
    fi
  done
fi
if [[ -z "$tidy_bin" ]]; then
  echo "run_tidy: SKIPPED — clang-tidy not found on PATH (set CLANG_TIDY=...)" >&2
  exit 0
fi

build_dir="${1:-}"
if [[ -n "$build_dir" && "$build_dir" != "--" ]]; then
  shift
else
  for cand in build build/release build/asan build/ubsan build/tsan; do
    if [[ -f "$cand/compile_commands.json" ]]; then
      build_dir="$cand"
      break
    fi
  done
fi
if [[ "${1:-}" == "--" ]]; then shift; fi
if [[ -z "$build_dir" || ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy: no compile_commands.json found; configure a build first:" >&2
  echo "  cmake --preset release" >&2
  exit 2
fi

if [[ $# -gt 0 ]]; then
  sources=("$@")
else
  mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' 'examples/*.cc')
fi
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run_tidy: no sources found" >&2
  exit 2
fi

echo "run_tidy: $tidy_bin, ${#sources[@]} files, compile db: $build_dir"

jobs="$(nproc 2>/dev/null || echo 1)"
fail=0
printf '%s\n' "${sources[@]}" |
  xargs -P "$jobs" -n 8 "$tidy_bin" -p "$build_dir" --quiet || fail=1

if [[ $fail -ne 0 ]]; then
  echo "run_tidy: FAILED — findings above (policy: .clang-tidy, docs/STATIC_ANALYSIS.md)" >&2
  exit 1
fi
echo "run_tidy: clean"
