#!/usr/bin/env python3
"""Validates BENCH_service_load.json from bench/bench_service_load.cc.

Used by the perf-smoke CI job after a `bench_service_load --quick` run:

    tools/check_bench_service.py --expect-shedding BENCH_service_load.json

Always checked:
  * the document has the BenchJsonWriter layout (bench/meta/rows);
  * meta carries the unloaded baseline (unloaded_p50_ms/unloaded_p99_ms) and
    the saturation estimate (saturation_qps), all positive;
  * every row has mode ("closed"/"open"), offered_qps, completed_qps,
    rejected/evicted/failed counts, shed_fraction and p50_ms/p99_ms, with
    sane ranges (fractions in [0,1], percentiles ordered, rates >= 0);
  * request conservation per row: completed + rejected + evicted + failed
    equals offered_qps * window within rounding.

With --expect-shedding (the overload acceptance gate):
  * at least one row is measured past saturation
    (offered_qps >= 1.5 * saturation_qps);
  * every such row sheds (rejected > 0) rather than queueing unboundedly;
  * on those rows the p99 of *accepted* requests stays within
    --p99-multiple (default 3) times the unloaded p99, plus --slack-ms
    (default 25) of absolute scheduler-noise allowance.

Exit: 0 ok, 1 validation failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys

ERRORS: list[str] = []

ROW_FIELDS = ("mode", "offered_qps", "completed_qps", "completed", "rejected",
              "evicted", "failed", "shed_fraction", "p50_ms", "p99_ms")

META_FIELDS = ("unloaded_p50_ms", "unloaded_p99_ms", "saturation_qps",
               "window_seconds", "worker_threads", "max_queue_depth")


def fail(msg: str) -> None:
    ERRORS.append(msg)


def check_row(i: int, row: dict, window_s: float) -> None:
    for field in ROW_FIELDS:
        if field not in row:
            fail(f"row {i}: missing field {field!r}")
            return
    if row["mode"] not in ("closed", "open"):
        fail(f"row {i}: unknown mode {row['mode']!r}")
    for field in ("offered_qps", "completed_qps", "completed", "rejected",
                  "evicted", "failed", "p50_ms", "p99_ms"):
        value = row[field]
        if not isinstance(value, (int, float)) or value < 0:
            fail(f"row {i}: {field} = {value!r} is not a non-negative number")
            return
    if not 0.0 <= row["shed_fraction"] <= 1.0:
        fail(f"row {i}: shed_fraction {row['shed_fraction']} outside [0, 1]")
    if row["completed"] > 0 and row["p99_ms"] < row["p50_ms"]:
        fail(f"row {i}: p99 {row['p99_ms']} below p50 {row['p50_ms']}")
    total = (row["completed"] + row["rejected"] + row["evicted"] +
             row["failed"])
    offered = row["offered_qps"] * window_s
    if total > 0 and abs(total - offered) > max(2.0, 0.02 * total):
        fail(f"row {i}: conservation broken — counts sum to {total} but "
             f"offered_qps*window = {offered:.1f}")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_file", help="path to BENCH_service_load.json")
    parser.add_argument("--expect-shedding", action="store_true",
                        help="require overload rows to shed and bound their "
                             "accepted-request p99 against the unloaded p99")
    parser.add_argument("--p99-multiple", type=float, default=3.0,
                        help="allowed accepted-p99 multiple of the unloaded "
                             "p99 on overload rows (default 3)")
    parser.add_argument("--slack-ms", type=float, default=25.0,
                        help="absolute p99 allowance on top of the multiple, "
                             "for CI scheduler noise (default 25)")
    args = parser.parse_args(argv)

    try:
        with open(args.json_file, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_service: cannot read {args.json_file}: {e}",
              file=sys.stderr)
        return 2

    meta = doc.get("meta")
    rows = doc.get("rows")
    if doc.get("bench") != "service_load":
        fail(f"bench name is {doc.get('bench')!r}, expected 'service_load'")
    if not isinstance(meta, dict):
        fail("missing or non-object 'meta'")
        meta = {}
    if not isinstance(rows, list) or not rows:
        fail("missing or empty 'rows'")
        rows = []

    for field in META_FIELDS:
        value = meta.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"meta.{field} = {value!r} is not a positive number")

    window_s = meta.get("window_seconds") or 1.0
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"row {i}: not an object")
            continue
        check_row(i, row, window_s)

    if args.expect_shedding and not ERRORS:
        unloaded_p99 = meta["unloaded_p99_ms"]
        saturation = meta["saturation_qps"]
        bound = args.p99_multiple * unloaded_p99 + args.slack_ms
        overload = [r for r in rows
                    if r["offered_qps"] >= 1.5 * saturation]
        if not overload:
            fail(f"no row offered >= 1.5x saturation "
                 f"({saturation:.1f} qps) — overload never measured")
        for row in overload:
            label = f"{row['mode']} @ {row['offered_qps']:.0f} qps"
            if row["rejected"] <= 0:
                fail(f"{label}: overload row never shed "
                     f"(rejected = {row['rejected']}) — the queue absorbed "
                     f"~{row['offered_qps'] / saturation:.1f}x saturation")
            if row["completed"] > 0 and row["p99_ms"] > bound:
                fail(f"{label}: accepted p99 {row['p99_ms']:.2f} ms exceeds "
                     f"{args.p99_multiple}x unloaded p99 "
                     f"({unloaded_p99:.2f} ms) + {args.slack_ms} ms slack")
        if not ERRORS:
            worst = max(r["p99_ms"] for r in overload)
            print(f"ok: {len(overload)} overload row(s) shed with accepted "
                  f"p99 <= {worst:.2f} ms (bound {bound:.2f} ms)")

    if ERRORS:
        for err in ERRORS:
            print(f"check_bench_service: {err}", file=sys.stderr)
        return 1
    print(f"ok: BENCH_service_load.json carries {len(rows)} valid rows")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
