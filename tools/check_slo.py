#!/usr/bin/env python3
"""End-to-end gate for the service SLO / tenant-slice / exemplar plumbing.

Used by the perf-smoke CI job:

    tools/check_slo.py ./build/release/bench/bench_service_load

Starts the binary with `--quick --debug-server --hold`. The bench runs its
closed- and open-loop load points *before* the serve tail, so by the time the
"[bench] debugz listening on ..." line appears the overload phase already
happened and the SLO transition history is populated. Then:

  * /slozz.json must record a shed_fraction transition into "breach" with a
    nonzero fast burn rate (the open-loop overload points shed 40%+ against
    a 2% objective — the multi-window burn detector has to fire);
  * polls /slozz.json until a transition *out of* breach appears: the hold
    loop's gentle serial drive drains the windows, so the objective must
    recover instead of latching (bounded wait, then failure);
  * /varz per-tenant slice counters (mira.tenant.<t>.admitted) must sum to
    the service-level admitted counter, modulo a small skew tolerance for
    requests admitted mid-scrape;
  * at least one latency exemplar captured by the engine histograms
    (mira.query.latency_ms.*) must resolve to a trace id promoted on
    /tracez — the exemplar -> query log -> promoted trace chain is intact;
  * /querylogz?format=jsonl entries must carry "tenant" and "priority".

Exit: 0 ok, 1 validation failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

ERRORS: list[str] = []

LISTEN_RE = re.compile(
    r"\[bench\] debugz listening on http://127\.0\.0\.1:(\d+)/")
TRACE_ID_RE = re.compile(r"tracez\?id=(\d+)")

# The bench's synthetic tenants plus the bounded-slice overflow bucket.
TENANTS = ("alpha", "beta", "gamma", "_other")


def fail(msg: str) -> None:
    ERRORS.append(msg)


def fetch(port: int, path: str, timeout: float = 30.0) -> tuple[int, bytes]:
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as e:
        return e.code, e.read()
    except (urllib.error.URLError, OSError) as e:
        fail(f"GET {path}: connection failed: {e}")
        return 0, b""


def wait_for_port(proc: subprocess.Popen, deadline_s: float = 300.0) -> int:
    start = time.monotonic()
    assert proc.stderr is not None
    while time.monotonic() - start < deadline_s:
        line = proc.stderr.readline()
        if not line:
            if proc.poll() is not None:
                break
            time.sleep(0.05)
            continue
        match = LISTEN_RE.search(line)
        if match:
            return int(match.group(1))
    return 0


def load_slozz(port: int) -> dict | None:
    status, body = fetch(port, "/slozz.json")
    if status != 200:
        fail(f"/slozz.json: HTTP {status}")
        return None
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"/slozz.json: not valid JSON: {e}")
        return None
    if not isinstance(doc, dict):
        fail("/slozz.json: top level is not an object")
        return None
    return doc


def shed_transitions(doc: dict) -> list[dict]:
    transitions = doc.get("transitions")
    if not isinstance(transitions, list):
        fail("/slozz.json: 'transitions' is not a list")
        return []
    return [t for t in transitions
            if isinstance(t, dict) and t.get("objective") == "shed_fraction"]


def check_breach(doc: dict) -> None:
    breaches = [t for t in shed_transitions(doc) if t.get("to") == "breach"]
    if not breaches:
        fail("no shed_fraction transition into 'breach' — the overload "
             "points shed 40%+ against a 2% objective, the burn detector "
             "had to fire")
        return
    if not any(t.get("burn_fast", 0) > 0 for t in breaches):
        fail("shed_fraction breach recorded with zero fast burn rate")
        return
    worst = max(t.get("burn_fast", 0) for t in breaches)
    print(f"ok: shed_fraction breached (peak fast burn {worst:.1f}x)")


def await_recovery(port: int, deadline_s: float) -> None:
    """The hold loop drives gentle serial load, so the shed windows drain
    and the objective must leave breach within the deadline."""
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        doc = load_slozz(port)
        if doc is None:
            return
        recoveries = [t for t in shed_transitions(doc)
                      if t.get("from") == "breach" and t.get("to") != "breach"]
        if recoveries:
            print(f"ok: shed_fraction recovered "
                  f"(breach -> {recoveries[-1].get('to')})")
            return
        time.sleep(0.5)
    fail(f"shed_fraction never left 'breach' within {deadline_s:.0f}s of "
         "gentle hold-loop load — burn windows are not draining")


def check_tenant_slices(port: int, tolerance: int) -> None:
    status, body = fetch(port, "/varz")
    if status != 200:
        fail(f"/varz: HTTP {status}")
        return
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"/varz: not valid JSON: {e}")
        return
    counters = doc.get("counters", {})
    if not isinstance(counters, dict):
        fail("/varz: 'counters' is not an object")
        return
    service_admitted = counters.get("mira.service.admitted", 0)
    slice_admitted = sum(
        counters.get(f"mira.tenant.{tenant}.admitted", 0)
        for tenant in TENANTS)
    if service_admitted <= 0:
        fail("/varz: mira.service.admitted is zero after a full bench run")
        return
    for tenant in ("alpha", "beta", "gamma"):
        if counters.get(f"mira.tenant.{tenant}.admitted", 0) <= 0:
            fail(f"/varz: tenant slice {tenant!r} admitted nothing — the "
                 "bench spreads requests over all three tenants")
    # The hold loop admits requests between the two counter reads, so allow
    # a small skew; a label-dimension bug would be off by thousands.
    if abs(slice_admitted - service_admitted) > tolerance:
        fail(f"tenant slices sum to {slice_admitted} admitted, service "
             f"total says {service_admitted} (tolerance {tolerance})")
        return
    print(f"ok: tenant slices sum to service totals "
          f"({slice_admitted} vs {service_admitted})")


def engine_exemplar_ids(counters_doc: dict) -> set[int]:
    ids: set[int] = set()
    histograms = counters_doc.get("histograms", {})
    if not isinstance(histograms, dict):
        return ids
    for name, hist in histograms.items():
        if not name.startswith("mira.query.latency_ms."):
            continue
        if not isinstance(hist, dict):
            continue
        for entry in hist.get("exemplars", []):
            if (isinstance(entry, list) and len(entry) == 2
                    and isinstance(entry[1], int)):
                ids.add(entry[1])
    return ids


def check_exemplar_trace_link(port: int, deadline_s: float) -> None:
    """At least one engine-histogram exemplar id must appear among the
    promoted /tracez ids. Exemplar capture is best-effort (TryLock) and the
    hold loop keeps promoting, so poll briefly rather than single-shot."""
    start = time.monotonic()
    last_exemplars: set[int] = set()
    last_promoted: set[int] = set()
    while time.monotonic() - start < deadline_s:
        status, body = fetch(port, "/varz")
        if status != 200:
            fail(f"/varz: HTTP {status}")
            return
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as e:
            fail(f"/varz: not valid JSON: {e}")
            return
        last_exemplars = engine_exemplar_ids(doc)
        status, body = fetch(port, "/tracez")
        if status != 200:
            fail(f"/tracez: HTTP {status}")
            return
        last_promoted = {
            int(m) for m in TRACE_ID_RE.findall(
                body.decode("utf-8", errors="replace"))}
        linked = last_exemplars & last_promoted
        if linked:
            print(f"ok: {len(linked)} exemplar id(s) resolve to promoted "
                  f"traces (e.g. id {min(linked)})")
            return
        time.sleep(0.5)
    fail(f"no engine latency exemplar resolves to a promoted trace id "
         f"(exemplars: {sorted(last_exemplars)}, promoted: "
         f"{sorted(last_promoted)})")


def check_querylog_tenancy(port: int) -> None:
    status, body = fetch(port, "/querylogz?format=jsonl")
    if status != 200:
        fail(f"/querylogz?format=jsonl: HTTP {status}")
        return
    lines = [line for line in body.decode("utf-8").splitlines() if line]
    if not lines:
        fail("/querylogz?format=jsonl: empty export")
        return
    tenants_seen = set()
    for i, line in enumerate(lines):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"/querylogz jsonl line {i}: not valid JSON: {e}")
            return
        for field in ("tenant", "priority"):
            if field not in entry:
                fail(f"/querylogz jsonl line {i}: missing field {field!r}")
                return
        tenants_seen.add(entry["tenant"])
    if not tenants_seen & {"alpha", "beta", "gamma"}:
        fail(f"/querylogz jsonl: no bench tenant in export "
             f"(saw {sorted(tenants_seen)})")
        return
    print(f"ok: query log carries tenant + priority "
          f"({len(lines)} entries, tenants {sorted(tenants_seen)})")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary",
                        help="bench_service_load binary (supports --quick "
                             "--debug-server --hold)")
    parser.add_argument("--recovery-seconds", type=float, default=60.0,
                        help="max wait for the breached objective to recover "
                             "under hold-loop load (default 60)")
    parser.add_argument("--slice-tolerance", type=int, default=32,
                        help="allowed skew between the tenant-slice sum and "
                             "the service admitted counter (default 32)")
    args = parser.parse_args(argv)

    try:
        proc = subprocess.Popen(
            [args.binary, "--quick", "--debug-server", "--hold"],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    except OSError as e:
        print(f"check_slo: cannot start {args.binary}: {e}", file=sys.stderr)
        return 2

    try:
        port = wait_for_port(proc)
        if port == 0:
            print("check_slo: no listening line on stderr "
                  "(binary exited or --debug-server unsupported)",
                  file=sys.stderr)
            return 2

        doc = load_slozz(port)
        if doc is not None:
            check_breach(doc)
            if doc.get("watchdog") is None:
                fail("/slozz.json: watchdog section missing (bench enables "
                     "the stuck-query watchdog)")
            elif doc["watchdog"].get("scans", 0) <= 0:
                fail("/slozz.json: watchdog never scanned")
        check_tenant_slices(port, args.slice_tolerance)
        check_exemplar_trace_link(port, deadline_s=30.0)
        check_querylog_tenancy(port)
        await_recovery(port, args.recovery_seconds)
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("binary ignored SIGINT (hold loop did not stop)")
        if proc.stderr is not None:
            proc.stderr.close()

    if proc.returncode not in (0, None):
        fail(f"binary exited with {proc.returncode} after SIGINT")

    if ERRORS:
        for err in ERRORS:
            print(f"check_slo: {err}", file=sys.stderr)
        return 1
    print(f"ok: SLO breach + recovery, tenant slices, exemplar->trace link "
          f"on port {port}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
