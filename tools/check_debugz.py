#!/usr/bin/env python3
"""End-to-end smoke of the embedded debugz server against a live bench binary.

Used by the perf-smoke CI job:

    tools/check_debugz.py ./build/release/bench/bench_case_study

Starts the binary with `--debug-server --hold` (the hold loop drives queries
so /profilez has CPU time to sample), parses the
"[bench] debugz listening on http://127.0.0.1:PORT/" stderr line, then:

  * scrapes every endpoint (/, /healthz, /statusz, /metricsz, /varz,
    /querylogz, /tracez, /memz) and requires HTTP 200 with a non-empty body;
  * validates /varz as JSON with counters/gauges/histograms sections;
  * validates /querylogz?format=jsonl as one JSON object per line carrying
    the query-log fields (id, method, duration_ms, ...);
  * requires /healthz to lead with "ok";
  * captures a 1-second /profilez profile and checks the folded-stack shape
    ("frame[;frame...] <count>" lines) — and, since the hold loop burns its
    CPU in vector kernels, that some stack mentions vecmath;
  * confirms malformed /profilez parameters get HTTP 400;

then terminates the binary (SIGINT, the hold loop's documented stop signal)
and requires a clean exit.

`--expect-page /servicez` (repeatable) additionally requires a binary-
registered page to serve HTTP 200 with content and be linked from the index;
`--arg --quick` (repeatable) forwards extra arguments to the binary ahead of
--debug-server/--hold.

Exit: 0 ok, 1 validation failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

ERRORS: list[str] = []

LISTEN_RE = re.compile(
    r"\[bench\] debugz listening on http://127\.0\.0\.1:(\d+)/")

ENDPOINTS = ("/", "/healthz", "/statusz", "/metricsz", "/varz", "/querylogz",
             "/tracez", "/memz")

QUERYLOG_FIELDS = ("id", "method", "duration_ms")


def fail(msg: str) -> None:
    ERRORS.append(msg)


def fetch(port: int, path: str, timeout: float = 30.0) -> tuple[int, bytes]:
    """Returns (status_code, body); HTTP error statuses are returned, not
    raised (0 means the connection itself failed)."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as e:
        return e.code, e.read()
    except (urllib.error.URLError, OSError) as e:
        fail(f"GET {path}: connection failed: {e}")
        return 0, b""


def wait_for_port(proc: subprocess.Popen, deadline_s: float = 300.0) -> int:
    """Reads the binary's stderr until the listening line appears. The serve
    tail comes after the binary's normal workload, which for the table benches
    is minutes of evaluation — hence the generous deadline."""
    start = time.monotonic()
    assert proc.stderr is not None
    while time.monotonic() - start < deadline_s:
        line = proc.stderr.readline()
        if not line:
            if proc.poll() is not None:
                break
            time.sleep(0.05)
            continue
        match = LISTEN_RE.search(line)
        if match:
            return int(match.group(1))
    return 0


def check_varz(body: bytes) -> None:
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"/varz: not valid JSON: {e}")
        return
    if not isinstance(doc, dict):
        fail("/varz: top level is not an object")
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"/varz: missing or non-object section {section!r}")
    if not doc.get("counters"):
        fail("/varz: no counters registered after a full bench run")


def check_querylog_jsonl(body: bytes) -> None:
    lines = [line for line in body.decode("utf-8").splitlines() if line]
    if not lines:
        fail("/querylogz?format=jsonl: empty export after a full bench run")
        return
    for i, line in enumerate(lines):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"/querylogz jsonl line {i}: not valid JSON: {e}")
            return
        if not isinstance(entry, dict):
            fail(f"/querylogz jsonl line {i}: not an object")
            return
        for field in QUERYLOG_FIELDS:
            if field not in entry:
                fail(f"/querylogz jsonl line {i}: missing field {field!r}")
                return
    print(f"ok: /querylogz jsonl carries {len(lines)} entries")


FOLDED_LINE_RE = re.compile(r"^[^ ](?:.*[^ ])? \d+$")


def check_profile(body: bytes) -> None:
    text = body.decode("utf-8", errors="replace")
    lines = [line for line in text.splitlines() if line]
    if not lines:
        fail("/profilez: empty folded output (hold loop not burning CPU?)")
        return
    for line in lines:
        if not FOLDED_LINE_RE.match(line):
            fail(f"/profilez: malformed folded line {line[:120]!r}")
            return
    if not any("vecmath" in line for line in lines):
        fail("/profilez: no vecmath frames in any stack — symbolization or "
             "-rdynamic (ENABLE_EXPORTS) regressed")
    print(f"ok: /profilez captured {len(lines)} distinct stacks")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary",
                        help="bench binary supporting --debug-server/--hold")
    parser.add_argument("--profile-seconds", type=float, default=1.0,
                        help="length of the /profilez capture (default 1)")
    parser.add_argument("--expect-page", action="append", default=[],
                        metavar="PATH",
                        help="extra registered page (e.g. /servicez) that "
                             "must serve HTTP 200 with a non-empty body and "
                             "be linked from the index; repeatable")
    parser.add_argument("--arg", action="append", default=[], dest="extra_args",
                        metavar="ARG",
                        help="extra argument passed to the binary before "
                             "--debug-server/--hold (e.g. --quick); "
                             "repeatable")
    args = parser.parse_args(argv)

    try:
        proc = subprocess.Popen(
            [args.binary, *args.extra_args, "--debug-server", "--hold"],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    except OSError as e:
        print(f"check_debugz: cannot start {args.binary}: {e}",
              file=sys.stderr)
        return 2

    try:
        port = wait_for_port(proc)
        if port == 0:
            print("check_debugz: no listening line on stderr "
                  "(binary exited or --debug-server unsupported)",
                  file=sys.stderr)
            return 2

        for path in ENDPOINTS + tuple(args.expect_page):
            status, body = fetch(port, path)
            if status != 200:
                fail(f"GET {path}: HTTP {status}")
            elif not body:
                fail(f"GET {path}: empty body")

        if args.expect_page:
            status, body = fetch(port, "/")
            index = body.decode("utf-8", errors="replace")
            for page in args.expect_page:
                if status == 200 and page.lstrip("/") not in index:
                    fail(f"index does not link registered page {page}")

        status, body = fetch(port, "/healthz")
        if status == 200 and not body.startswith(b"ok"):
            fail(f"/healthz does not lead with 'ok': {body[:80]!r}")

        status, body = fetch(port, "/varz")
        if status == 200:
            check_varz(body)

        status, body = fetch(port, "/querylogz?format=jsonl")
        if status != 200:
            fail(f"/querylogz?format=jsonl: HTTP {status}")
        else:
            check_querylog_jsonl(body)

        status, body = fetch(port, "/profilez?seconds=bogus")
        if status != 400:
            fail(f"/profilez?seconds=bogus: expected HTTP 400, got {status}")

        seconds = args.profile_seconds
        status, body = fetch(port, f"/profilez?seconds={seconds}",
                             timeout=seconds + 30.0)
        if status != 200:
            fail(f"/profilez?seconds={seconds}: HTTP {status}")
        else:
            check_profile(body)
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("binary ignored SIGINT (hold loop did not stop)")
        if proc.stderr is not None:
            proc.stderr.close()

    if proc.returncode not in (0, None):
        fail(f"binary exited with {proc.returncode} after SIGINT")

    if ERRORS:
        for err in ERRORS:
            print(f"check_debugz: {err}", file=sys.stderr)
        return 1
    print(f"ok: all {len(ENDPOINTS)} endpoints + profilez on port {port}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
