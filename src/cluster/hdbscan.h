#ifndef MIRA_CLUSTER_HDBSCAN_H_
#define MIRA_CLUSTER_HDBSCAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "vecmath/matrix.h"

namespace mira::cluster {

/// Label assigned to noise points.
inline constexpr int32_t kNoise = -1;

/// Options of the HDBSCAN* implementation (Campello et al.; McInnes et al.
/// [31]). Density-based, hierarchical, noise-aware — chosen by the paper for
/// its ability to form meaningful clusters from the non-convex shapes of
/// tabular text embeddings (§4.3).
struct HdbscanOptions {
  /// Smallest subtree that counts as a cluster in the condensed tree.
  size_t min_cluster_size = 8;
  /// Neighborhood size for core distances; 0 means min_cluster_size.
  size_t min_samples = 0;
};

/// One cluster of the flat extraction.
struct HdbscanCluster {
  /// Row indices of the members.
  std::vector<size_t> members;
  /// Excess-of-mass stability of the selected condensed-tree node.
  double stability = 0.0;
};

struct HdbscanResult {
  /// Cluster label per input row; kNoise for outliers.
  std::vector<int32_t> labels;
  /// Clusters indexed by label.
  std::vector<HdbscanCluster> clusters;

  size_t num_clusters() const { return clusters.size(); }
  size_t num_noise() const;
};

/// Runs HDBSCAN* over the rows of `data` with Euclidean base distance.
///
/// Pipeline: core distances (min_samples-NN) -> mutual reachability distance
/// -> MST (Prim, O(n^2) on the implicit complete graph) -> single-linkage
/// dendrogram -> condensed tree (min_cluster_size) -> excess-of-mass cluster
/// selection. Deterministic.
[[nodiscard]] Result<HdbscanResult> Hdbscan(const vecmath::Matrix& data,
                              const HdbscanOptions& options);

/// Medoid (member minimizing total intra-cluster distance) of each cluster;
/// returns one row index per cluster, aligned with result.clusters. HDBSCAN
/// has no native cluster centers, so the paper computes medoids manually as
/// cluster representatives (§4.3) — this is that step.
std::vector<size_t> ComputeMedoids(const vecmath::Matrix& data,
                                   const HdbscanResult& result);

}  // namespace mira::cluster

#endif  // MIRA_CLUSTER_HDBSCAN_H_
