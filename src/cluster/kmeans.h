#ifndef MIRA_CLUSTER_KMEANS_H_
#define MIRA_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "vecmath/matrix.h"

namespace mira::cluster {

/// Lloyd's k-means with k-means++ seeding. Deterministic given the seed.
struct KMeansOptions {
  size_t num_clusters = 8;
  size_t max_iterations = 25;
  /// Stop early when total centroid movement (squared L2) drops below this.
  double tolerance = 1e-6;
  uint64_t seed = 42;
};

struct KMeansResult {
  /// num_clusters x dim centroid matrix.
  vecmath::Matrix centroids;
  /// Cluster assignment per input row.
  std::vector<int32_t> assignments;
  /// Final total within-cluster sum of squared distances.
  double inertia = 0.0;
  size_t iterations = 0;
};

/// Clusters the rows of `data`. Fails if data is empty or has fewer rows than
/// clusters requested.
[[nodiscard]] Result<KMeansResult> KMeans(const vecmath::Matrix& data,
                            const KMeansOptions& options);

}  // namespace mira::cluster

#endif  // MIRA_CLUSTER_KMEANS_H_
