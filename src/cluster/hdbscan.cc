#include "cluster/hdbscan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "vecmath/simd.h"
#include "vecmath/vector_ops.h"

namespace mira::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct MstEdge {
  double weight;
  uint32_t a;
  uint32_t b;
};

// One row of the condensed tree: `child` is either a cluster id (when
// child_is_cluster) or a point row index.
struct CondensedRow {
  int32_t parent;
  int64_t child;
  bool child_is_cluster;
  double lambda;
  size_t size;
};

// Distance to the k-th nearest neighbor (excluding self) for every row.
std::vector<double> CoreDistances(const vecmath::Matrix& data, size_t k) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  std::vector<double> core(n, 0.0);
  if (n <= 1) return core;
  k = std::min(k, n - 1);
  std::vector<double> dists;
  dists.reserve(n - 1);
  for (size_t i = 0; i < n; ++i) {
    dists.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      // Scalar-reference distances: clustering must be bit-reproducible
      // across SIMD tiers (see vecmath/simd.h).
      dists.push_back(std::sqrt(static_cast<double>(
          vecmath::ScalarSquaredL2(data.Row(i), data.Row(j), d))));
    }
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    core[i] = dists[k - 1];
  }
  return core;
}

// Prim's algorithm over the implicit complete graph of mutual reachability
// distances: d_mr(a, b) = max(core_a, core_b, d(a, b)).
std::vector<MstEdge> MutualReachabilityMst(const vecmath::Matrix& data,
                                           const std::vector<double>& core) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, kInf);
  std::vector<uint32_t> from(n, 0);
  uint32_t current = 0;
  in_tree[0] = true;
  for (size_t added = 1; added < n; ++added) {
    // Relax edges out of `current`.
    for (size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      double dist = std::sqrt(static_cast<double>(
          vecmath::ScalarSquaredL2(data.Row(current), data.Row(j), d)));
      double mr = std::max({core[current], core[j], dist});
      if (mr < best[j]) {
        best[j] = mr;
        from[j] = current;
      }
    }
    // Pick the closest point outside the tree.
    double min_w = kInf;
    uint32_t next = 0;
    for (size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < min_w) {
        min_w = best[j];
        next = static_cast<uint32_t>(j);
      }
    }
    edges.push_back({min_w, from[next], next});
    in_tree[next] = true;
    current = next;
  }
  return edges;
}

// Single-linkage dendrogram in scipy layout: merge i creates node n+i with
// two children (points are 0..n-1), a merge weight and a subtree size.
struct Dendrogram {
  std::vector<int64_t> left;
  std::vector<int64_t> right;
  std::vector<double> weight;
  std::vector<size_t> size;  // of merged node
  size_t n = 0;

  size_t SizeOf(int64_t node) const {
    return node < static_cast<int64_t>(n) ? 1 : size[node - n];
  }
};

class UnionFind {
 public:
  explicit UnionFind(size_t slots) : parent_(slots) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int64_t Find(int64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Attach(int64_t child_root, int64_t new_root) {
    parent_[child_root] = new_root;
  }

 private:
  std::vector<int64_t> parent_;
};

Dendrogram SingleLinkage(std::vector<MstEdge> edges, size_t n) {
  std::sort(edges.begin(), edges.end(),
            [](const MstEdge& a, const MstEdge& b) { return a.weight < b.weight; });
  Dendrogram tree;
  tree.n = n;
  tree.left.reserve(edges.size());
  UnionFind uf(2 * n - 1);
  std::vector<int64_t> component_node(2 * n - 1);
  std::iota(component_node.begin(), component_node.end(), 0);

  for (size_t i = 0; i < edges.size(); ++i) {
    int64_t ra = component_node[uf.Find(edges[i].a)];
    int64_t rb = component_node[uf.Find(edges[i].b)];
    int64_t node = static_cast<int64_t>(n + i);
    tree.left.push_back(ra);
    tree.right.push_back(rb);
    tree.weight.push_back(edges[i].weight);
    tree.size.push_back(tree.SizeOf(ra) + tree.SizeOf(rb));
    uf.Attach(uf.Find(edges[i].a), node);
    uf.Attach(uf.Find(edges[i].b), node);
    component_node[node] = node;
  }
  return tree;
}

// Collects the point leaves under a dendrogram node.
void CollectLeaves(const Dendrogram& tree, int64_t node,
                   std::vector<size_t>* out) {
  std::vector<int64_t> stack = {node};
  while (!stack.empty()) {
    int64_t cur = stack.back();
    stack.pop_back();
    if (cur < static_cast<int64_t>(tree.n)) {
      out->push_back(static_cast<size_t>(cur));
    } else {
      stack.push_back(tree.left[cur - tree.n]);
      stack.push_back(tree.right[cur - tree.n]);
    }
  }
}

// Condenses the dendrogram: subtrees smaller than min_cluster_size fall out
// of their parent cluster as points; larger splits create child clusters.
std::vector<CondensedRow> CondenseTree(const Dendrogram& tree,
                                       size_t min_cluster_size,
                                       int32_t* num_condensed_clusters) {
  std::vector<CondensedRow> rows;
  *num_condensed_clusters = 1;  // cluster 0 = root
  const size_t n = tree.n;
  if (n == 0) return rows;
  if (tree.left.empty()) {
    // Single point corpus: it is noise at the root.
    return rows;
  }

  int64_t root = static_cast<int64_t>(n + tree.left.size() - 1);
  // relabel[slt_node] = condensed cluster that subtree currently belongs to.
  std::vector<int32_t> relabel(2 * n - 1, -1);
  relabel[root] = 0;

  std::vector<int64_t> stack = {root};
  std::vector<size_t> leaves;
  while (!stack.empty()) {
    int64_t node = stack.back();
    stack.pop_back();
    if (node < static_cast<int64_t>(n)) continue;  // leaf: handled by parent
    int32_t cluster = relabel[node];
    MIRA_DCHECK(cluster >= 0);
    size_t idx = node - n;
    double w = tree.weight[idx];
    double lambda = w > 0.0 ? 1.0 / w : kInf;
    int64_t left = tree.left[idx];
    int64_t right = tree.right[idx];
    size_t left_size = tree.SizeOf(left);
    size_t right_size = tree.SizeOf(right);

    if (left_size >= min_cluster_size && right_size >= min_cluster_size) {
      int32_t lc = (*num_condensed_clusters)++;
      int32_t rc = (*num_condensed_clusters)++;
      rows.push_back({cluster, lc, true, lambda, left_size});
      rows.push_back({cluster, rc, true, lambda, right_size});
      relabel[left] = lc;
      relabel[right] = rc;
      stack.push_back(left);
      stack.push_back(right);
    } else if (left_size < min_cluster_size &&
               right_size < min_cluster_size) {
      leaves.clear();
      CollectLeaves(tree, left, &leaves);
      CollectLeaves(tree, right, &leaves);
      for (size_t p : leaves) {
        rows.push_back({cluster, static_cast<int64_t>(p), false, lambda, 1});
      }
    } else if (left_size < min_cluster_size) {
      leaves.clear();
      CollectLeaves(tree, left, &leaves);
      for (size_t p : leaves) {
        rows.push_back({cluster, static_cast<int64_t>(p), false, lambda, 1});
      }
      relabel[right] = cluster;
      stack.push_back(right);
    } else {
      leaves.clear();
      CollectLeaves(tree, right, &leaves);
      for (size_t p : leaves) {
        rows.push_back({cluster, static_cast<int64_t>(p), false, lambda, 1});
      }
      relabel[left] = cluster;
      stack.push_back(left);
    }
  }
  return rows;
}

}  // namespace

size_t HdbscanResult::num_noise() const {
  size_t count = 0;
  for (int32_t label : labels) {
    if (label == kNoise) ++count;
  }
  return count;
}

Result<HdbscanResult> Hdbscan(const vecmath::Matrix& data,
                              const HdbscanOptions& options) {
  if (options.min_cluster_size < 2) {
    return Status::InvalidArgument("hdbscan: min_cluster_size must be >= 2");
  }
  const size_t n = data.rows();
  HdbscanResult result;
  result.labels.assign(n, kNoise);
  if (n < options.min_cluster_size) return result;  // everything is noise

  size_t min_samples =
      options.min_samples == 0 ? options.min_cluster_size : options.min_samples;

  std::vector<double> core = CoreDistances(data, min_samples);
  std::vector<MstEdge> edges = MutualReachabilityMst(data, core);
  Dendrogram tree = SingleLinkage(std::move(edges), n);

  int32_t num_clusters = 0;
  std::vector<CondensedRow> rows =
      CondenseTree(tree, options.min_cluster_size, &num_clusters);

  // Stability: sum over rows leaving cluster c of (lambda - lambda_birth(c)).
  std::vector<double> birth(num_clusters, 0.0);
  std::vector<int32_t> parent_of(num_clusters, -1);
  for (const auto& row : rows) {
    if (row.child_is_cluster) {
      birth[row.child] = row.lambda;
      parent_of[row.child] = row.parent;
    }
  }
  std::vector<double> stability(num_clusters, 0.0);
  for (const auto& row : rows) {
    double lambda = std::isinf(row.lambda) ? birth[row.parent] : row.lambda;
    stability[row.parent] +=
        (lambda - birth[row.parent]) * static_cast<double>(row.size);
  }

  // Excess-of-mass selection, leaves first (children always have larger ids
  // than their parents by construction). Root (0) is never selected.
  std::vector<std::vector<int32_t>> children(num_clusters);
  for (int32_t c = 1; c < num_clusters; ++c) {
    children[parent_of[c]].push_back(c);
  }
  std::vector<bool> selected(num_clusters, false);
  for (int32_t c = num_clusters - 1; c >= 1; --c) {
    double child_sum = 0.0;
    for (int32_t ch : children[c]) child_sum += stability[ch];
    if (children[c].empty() || stability[c] >= child_sum) {
      selected[c] = true;
      // Unselect all descendants.
      std::vector<int32_t> stack(children[c]);
      while (!stack.empty()) {
        int32_t d = stack.back();
        stack.pop_back();
        selected[d] = false;
        for (int32_t ch : children[d]) stack.push_back(ch);
      }
    } else {
      stability[c] = child_sum;
    }
  }

  // Label points: a point belongs to the nearest selected ancestor of the
  // cluster it fell out of (if any); otherwise it is noise.
  std::vector<int32_t> nearest_selected(num_clusters, -1);
  for (int32_t c = 1; c < num_clusters; ++c) {  // parents precede children
    if (selected[c]) {
      nearest_selected[c] = c;
    } else {
      nearest_selected[c] =
          parent_of[c] >= 0 ? nearest_selected[parent_of[c]] : -1;
    }
  }

  std::vector<int32_t> flat_label(num_clusters, -1);
  for (const auto& row : rows) {
    if (row.child_is_cluster) continue;
    int32_t owner = nearest_selected[row.parent];
    if (owner < 0) continue;
    if (flat_label[owner] < 0) {
      flat_label[owner] = static_cast<int32_t>(result.clusters.size());
      result.clusters.emplace_back();
      result.clusters.back().stability = stability[owner];
    }
    int32_t label = flat_label[owner];
    result.labels[row.child] = label;
    result.clusters[label].members.push_back(static_cast<size_t>(row.child));
  }
  for (auto& cluster : result.clusters) {
    std::sort(cluster.members.begin(), cluster.members.end());
  }
  return result;
}

std::vector<size_t> ComputeMedoids(const vecmath::Matrix& data,
                                   const HdbscanResult& result) {
  std::vector<size_t> medoids;
  medoids.reserve(result.clusters.size());
  const size_t d = data.cols();
  for (const auto& cluster : result.clusters) {
    double best_total = kInf;
    size_t best = cluster.members.empty() ? 0 : cluster.members.front();
    for (size_t i : cluster.members) {
      double total = 0.0;
      for (size_t j : cluster.members) {
        if (i == j) continue;
        total += std::sqrt(static_cast<double>(
            vecmath::ScalarSquaredL2(data.Row(i), data.Row(j), d)));
      }
      if (total < best_total) {
        best_total = total;
        best = i;
      }
    }
    medoids.push_back(best);
  }
  return medoids;
}

}  // namespace mira::cluster
