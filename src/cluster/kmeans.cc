#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "vecmath/simd.h"
#include "vecmath/vector_ops.h"

namespace mira::cluster {

namespace {

// k-means++ seeding: the first centroid is uniform; each next centroid is
// drawn with probability proportional to the squared distance to the nearest
// already-chosen centroid.
std::vector<size_t> PlusPlusSeeds(const vecmath::Matrix& data, size_t k,
                                  Rng* rng) {
  const size_t n = data.rows();
  std::vector<size_t> seeds;
  seeds.reserve(k);
  seeds.push_back(static_cast<size_t>(rng->NextBounded(n)));

  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  std::vector<float> dist(n);
  while (seeds.size() < k) {
    size_t last = seeds.back();
    double total = 0.0;
    // One batched sweep of the new seed against every row (the data slab is
    // contiguous); the kernel is symmetric in its arguments. Clustering uses
    // the scalar-reference kernels throughout: k-means amplifies any rounding
    // difference across iterations, so tier-dependent summation would make
    // codebooks and medoids machine-dependent.
    vecmath::ScalarSquaredL2Batch(data.Row(last), data.Row(0), n, data.cols(),
                                  dist.data());
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], static_cast<double>(dist[i]));
      total += min_dist[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; pick uniformly.
      seeds.push_back(static_cast<size_t>(rng->NextBounded(n)));
      continue;
    }
    double target = rng->NextDouble() * total;
    double cum = 0.0;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      cum += min_dist[i];
      if (cum >= target) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(chosen);
  }
  return seeds;
}

}  // namespace

Result<KMeansResult> KMeans(const vecmath::Matrix& data,
                            const KMeansOptions& options) {
  const size_t n = data.rows();
  const size_t dim = data.cols();
  const size_t k = options.num_clusters;
  if (k == 0) return Status::InvalidArgument("k-means: num_clusters must be > 0");
  if (n < k) {
    return Status::InvalidArgument(
        StrFormat("k-means: %zu rows < %zu clusters", n, k));
  }

  obs::TraceSpan span("kmeans.lloyd");
  span.AddCounter("n", static_cast<int64_t>(n));
  span.AddCounter("k", static_cast<int64_t>(k));

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = vecmath::Matrix(k, dim);
  std::vector<size_t> seeds = PlusPlusSeeds(data, k, &rng);
  for (size_t j = 0; j < k; ++j) {
    std::copy(data.Row(seeds[j]), data.Row(seeds[j]) + dim,
              result.centroids.Row(j));
  }

  result.assignments.assign(n, -1);
  std::vector<size_t> counts(k, 0);
  std::vector<float> cdist(k);
  vecmath::Matrix sums(k, dim);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: the centroid matrix is one contiguous slab, so each
    // point resolves its nearest centroid with a single batched sweep.
    bool changed = false;
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      vecmath::ScalarSquaredL2Batch(data.Row(i), result.centroids.Row(0), k,
                                    dim, cdist.data());
      float best = std::numeric_limits<float>::max();
      int32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        if (cdist[c] < best) {
          best = cdist[c];
          best_c = static_cast<int32_t>(c);
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
      result.inertia += static_cast<double>(best);
    }

    // Update step.
    std::fill(counts.begin(), counts.end(), 0);
    std::fill(sums.data().begin(), sums.data().end(), 0.f);
    for (size_t i = 0; i < n; ++i) {
      size_t c = static_cast<size_t>(result.assignments[i]);
      vecmath::AddInPlace(sums.Row(c), data.Row(i), dim);
      ++counts[c];
    }
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at the point farthest from its centroid.
        size_t farthest = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          size_t ci = static_cast<size_t>(result.assignments[i]);
          double d = vecmath::ScalarSquaredL2(data.Row(i),
                                              result.centroids.Row(ci), dim);
          if (d > far_d) {
            far_d = d;
            farthest = i;
          }
        }
        movement += vecmath::ScalarSquaredL2(result.centroids.Row(c),
                                             data.Row(farthest), dim);
        std::copy(data.Row(farthest), data.Row(farthest) + dim,
                  result.centroids.Row(c));
        continue;
      }
      float inv = 1.0f / static_cast<float>(counts[c]);
      for (size_t j = 0; j < dim; ++j) {
        float next = sums.At(c, j) * inv;
        float delta = next - result.centroids.At(c, j);
        movement += static_cast<double>(delta) * delta;
        result.centroids.At(c, j) = next;
      }
    }

    if (!changed || movement < options.tolerance) break;
  }
  span.AddCounter("iterations", static_cast<int64_t>(result.iterations));

  return result;
}

}  // namespace mira::cluster
