#include "dimred/umap.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "dimred/pca.h"
#include "index/hnsw_index.h"
#include "vecmath/simd.h"
#include "vecmath/vector_ops.h"

namespace mira::dimred {

namespace {

struct Edge {
  uint32_t from;
  uint32_t to;
  float weight;
};

constexpr float kSmoothKTolerance = 1e-5f;
constexpr size_t kSmoothKIterations = 64;
constexpr float kMinKDistScale = 1e-3f;

// Solves sigma_i by bisection so that sum_j exp(-max(0, d_ij - rho_i) /
// sigma_i) = log2(k) (umap-learn's smooth_knn_dist).
void SmoothKnnDist(const std::vector<float>& dists, float* rho, float* sigma) {
  const size_t k = dists.size();
  float target = std::log2(static_cast<float>(k));

  *rho = 0.f;
  for (float d : dists) {
    if (d > 0.f) {
      *rho = d;
      break;
    }
  }

  float lo = 0.f;
  float hi = std::numeric_limits<float>::max();
  float mid = 1.0f;
  for (size_t iter = 0; iter < kSmoothKIterations; ++iter) {
    float psum = 0.f;
    for (float d : dists) {
      float adj = d - *rho;
      psum += adj > 0.f ? std::exp(-adj / mid) : 1.0f;
    }
    if (std::fabs(psum - target) < kSmoothKTolerance) break;
    if (psum > target) {
      hi = mid;
      mid = (lo + hi) / 2.0f;
    } else {
      lo = mid;
      mid = hi == std::numeric_limits<float>::max() ? mid * 2.0f
                                                    : (lo + hi) / 2.0f;
    }
  }
  *sigma = mid;

  // Guard against degenerate neighborhoods (all-identical points).
  float mean_dist = 0.f;
  for (float d : dists) mean_dist += d;
  mean_dist /= static_cast<float>(k);
  if (*sigma < kMinKDistScale * mean_dist) *sigma = kMinKDistScale * mean_dist;
  if (*sigma <= 0.f) *sigma = 1.0f;
}

}  // namespace

void FitAbParams(float min_dist, float spread, float* a, float* b) {
  // Least-squares fit of phi(x) = 1/(1 + a x^(2b)) to the target curve
  //   psi(x) = 1                         for x <= min_dist
  //          = exp(-(x - min_dist)/spread) otherwise
  // over x in (0, 3*spread]. Coarse grid search then local refinement —
  // deterministic and dependency-free (umap-learn uses scipy curve_fit).
  constexpr size_t kSamples = 300;
  std::vector<float> xs(kSamples), ys(kSamples);
  for (size_t i = 0; i < kSamples; ++i) {
    float x = 3.0f * spread * static_cast<float>(i + 1) / kSamples;
    xs[i] = x;
    ys[i] = x <= min_dist ? 1.0f : std::exp(-(x - min_dist) / spread);
  }
  auto loss = [&](float ca, float cb) {
    float total = 0.f;
    for (size_t i = 0; i < kSamples; ++i) {
      float phi = 1.0f / (1.0f + ca * std::pow(xs[i], 2.0f * cb));
      float diff = phi - ys[i];
      total += diff * diff;
    }
    return total;
  };

  float best_a = 1.0f, best_b = 1.0f;
  float best = std::numeric_limits<float>::max();
  for (float ca = 0.2f; ca <= 10.0f; ca += 0.2f) {
    for (float cb = 0.2f; cb <= 2.5f; cb += 0.05f) {
      float l = loss(ca, cb);
      if (l < best) {
        best = l;
        best_a = ca;
        best_b = cb;
      }
    }
  }
  // Local refinement by coordinate descent with shrinking steps.
  float step_a = 0.1f, step_b = 0.025f;
  for (int round = 0; round < 40; ++round) {
    bool moved = false;
    for (float da : {-step_a, step_a}) {
      float l = loss(best_a + da, best_b);
      if (best_a + da > 0.f && l < best) {
        best = l;
        best_a += da;
        moved = true;
      }
    }
    for (float db : {-step_b, step_b}) {
      float l = loss(best_a, best_b + db);
      if (best_b + db > 0.f && l < best) {
        best = l;
        best_b += db;
        moved = true;
      }
    }
    if (!moved) {
      step_a *= 0.5f;
      step_b *= 0.5f;
    }
  }
  *a = best_a;
  *b = best_b;
}

Result<UmapModel> FitUmap(const vecmath::Matrix& data,
                          const UmapOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n < 4) return Status::InvalidArgument("umap: need at least 4 rows");
  if (options.target_dim == 0 || options.target_dim > d) {
    return Status::InvalidArgument(
        StrFormat("umap: target_dim %zu out of range (input dim %zu)",
                  options.target_dim, d));
  }
  const size_t k = std::min(options.n_neighbors, n - 1);

  // --- 1. approximate kNN graph via HNSW ---
  index::HnswOptions hnsw_opts;
  hnsw_opts.metric = vecmath::Metric::kL2;
  hnsw_opts.M = 16;
  hnsw_opts.ef_construction = std::max<size_t>(100, 2 * k);
  hnsw_opts.seed = options.seed ^ 0xA11CE;
  // The embedding feeds clustering, which must be bit-reproducible across
  // SIMD tiers (see vecmath/simd.h) — tier-dependent rounding in the kNN
  // graph would cascade through the whole layout.
  hnsw_opts.deterministic = true;
  index::HnswIndex knn_index(hnsw_opts);
  for (size_t i = 0; i < n; ++i) {
    MIRA_RETURN_NOT_OK(knn_index.Add(i, data.RowVec(i)));
  }
  MIRA_RETURN_NOT_OK(knn_index.Build());

  std::vector<std::vector<uint32_t>> knn_ids(n);
  std::vector<std::vector<float>> knn_dists(n);
  index::SearchParams params;
  params.k = k + 1;  // self likely included
  params.ef = std::max<size_t>(64, 2 * (k + 1));
  for (size_t i = 0; i < n; ++i) {
    MIRA_ASSIGN_OR_RETURN(auto hits, knn_index.Search(data.RowVec(i), params));
    for (const auto& hit : hits) {
      if (hit.id == i) continue;
      if (knn_ids[i].size() >= k) break;
      knn_ids[i].push_back(static_cast<uint32_t>(hit.id));
      // kL2 similarity is the negated squared distance.
      knn_dists[i].push_back(std::sqrt(std::max(0.f, -hit.score)));
    }
  }

  // --- 2 & 3. fuzzy simplicial set ---
  // Directed membership strengths, then symmetrize: w = u + v - u*v.
  std::vector<std::unordered_map<uint32_t, float>> directed(n);
  for (size_t i = 0; i < n; ++i) {
    if (knn_ids[i].empty()) continue;
    float rho, sigma;
    SmoothKnnDist(knn_dists[i], &rho, &sigma);
    for (size_t j = 0; j < knn_ids[i].size(); ++j) {
      float adj = knn_dists[i][j] - rho;
      float w = adj > 0.f ? std::exp(-adj / sigma) : 1.0f;
      directed[i][knn_ids[i][j]] = w;
    }
  }
  std::vector<Edge> edges;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [j, w_ij] : directed[i]) {
      if (j > i) {
        // Forward entry owns the pair; fold in the reverse weight if present.
        float w_ji = 0.f;
        auto it = directed[j].find(static_cast<uint32_t>(i));
        if (it != directed[j].end()) w_ji = it->second;
        float w = w_ij + w_ji - w_ij * w_ji;
        if (w > 0.f) edges.push_back({static_cast<uint32_t>(i), j, w});
      } else if (j < i && directed[j].find(static_cast<uint32_t>(i)) ==
                              directed[j].end()) {
        // Pair seen only in this (backward) direction.
        if (w_ij > 0.f) edges.push_back({j, static_cast<uint32_t>(i), w_ij});
      }
    }
  }

  // --- 4. curve parameters ---
  UmapModel model;
  FitAbParams(options.min_dist, options.spread, &model.a, &model.b);

  // --- 5. PCA init, scaled to a ~10-unit box ---
  PcaOptions pca_opts;
  pca_opts.target_dim = options.target_dim;
  pca_opts.seed = options.seed ^ 0xBEEF;
  MIRA_ASSIGN_OR_RETURN(PcaModel pca, FitPca(data, pca_opts));
  model.embedding = pca.TransformAll(data);
  float max_abs = 1e-9f;
  for (float x : model.embedding.data()) max_abs = std::max(max_abs, std::fabs(x));
  vecmath::ScaleInPlace(model.embedding.data().data(), 10.0f / max_abs,
                        model.embedding.data().size());

  // --- 6. SGD with negative sampling ---
  float max_w = 0.f;
  for (const Edge& e : edges) max_w = std::max(max_w, e.weight);
  if (max_w <= 0.f) return model;  // fully disconnected; PCA layout stands

  std::vector<float> epochs_per_sample(edges.size());
  std::vector<float> next_due(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    epochs_per_sample[e] = max_w / edges[e].weight;
    next_due[e] = epochs_per_sample[e];
  }

  Rng rng(options.seed ^ 0x5EED);
  const float a = model.a;
  const float b = model.b;
  const size_t dim = options.target_dim;
  auto clip = [](float x) { return std::clamp(x, -4.0f, 4.0f); };

  for (size_t epoch = 1; epoch <= options.n_epochs; ++epoch) {
    float alpha = options.learning_rate *
                  (1.0f - static_cast<float>(epoch) / options.n_epochs);
    for (size_t e = 0; e < edges.size(); ++e) {
      if (next_due[e] > static_cast<float>(epoch)) continue;
      next_due[e] += epochs_per_sample[e];
      float* yi = model.embedding.Row(edges[e].from);
      float* yj = model.embedding.Row(edges[e].to);

      float dist_sq = vecmath::ScalarSquaredL2(yi, yj, dim);
      if (dist_sq > 0.f) {
        float pd = std::pow(dist_sq, b);
        float coef = (-2.0f * a * b * pd / dist_sq) / (1.0f + a * pd);
        for (size_t c = 0; c < dim; ++c) {
          float g = clip(coef * (yi[c] - yj[c]));
          yi[c] += alpha * g;
          yj[c] -= alpha * g;
        }
      }

      for (size_t s = 0; s < options.negative_sample_rate; ++s) {
        uint32_t other = static_cast<uint32_t>(rng.NextBounded(n));
        if (other == edges[e].from) continue;
        float* yk = model.embedding.Row(other);
        float nd = vecmath::ScalarSquaredL2(yi, yk, dim);
        if (nd <= 0.f) nd = 1e-3f;
        float pd = std::pow(nd, b);
        float coef = (2.0f * b) / ((0.001f + nd) * (1.0f + a * pd));
        for (size_t c = 0; c < dim; ++c) {
          float g = clip(coef * (yi[c] - yk[c]));
          yi[c] += alpha * g;
        }
      }
    }
  }
  return model;
}

}  // namespace mira::dimred
