#include "dimred/pca.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "vecmath/simd.h"
#include "vecmath/vector_ops.h"

namespace mira::dimred {

vecmath::Vec PcaModel::Transform(const vecmath::Vec& input) const {
  const size_t out_dim = components.rows();
  const size_t in_dim = components.cols();
  vecmath::Vec centered(in_dim);
  for (size_t j = 0; j < in_dim; ++j) centered[j] = input[j] - mean[j];
  vecmath::Vec out(out_dim);
  for (size_t c = 0; c < out_dim; ++c) {
    // Scalar-reference projection: the reduced vectors feed clustering,
    // which must be bit-reproducible across SIMD tiers (see vecmath/simd.h).
    out[c] = vecmath::ScalarDot(centered.data(), components.Row(c), in_dim);
  }
  return out;
}

vecmath::Matrix PcaModel::TransformAll(const vecmath::Matrix& input) const {
  vecmath::Matrix out(input.rows(), components.rows());
  for (size_t i = 0; i < input.rows(); ++i) {
    out.SetRow(i, Transform(input.RowVec(i)));
  }
  return out;
}

Result<PcaModel> FitPca(const vecmath::Matrix& data, const PcaOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n < 2) return Status::InvalidArgument("pca: need at least 2 rows");
  if (options.target_dim == 0 || options.target_dim > d) {
    return Status::InvalidArgument(
        StrFormat("pca: target_dim %zu out of range (input dim %zu)",
                  options.target_dim, d));
  }

  PcaModel model;
  model.mean.assign(d, 0.f);
  for (size_t i = 0; i < n; ++i) {
    vecmath::AddInPlace(model.mean.data(), data.Row(i), d);
  }
  vecmath::ScaleInPlace(model.mean.data(), 1.0f / static_cast<float>(n), d);

  // Covariance (d x d). d is modest (<= 768) so this is affordable and keeps
  // the power iteration independent of n.
  std::vector<double> cov(d * d, 0.0);
  std::vector<double> centered(d);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.Row(i);
    for (size_t j = 0; j < d; ++j) centered[j] = row[j] - model.mean[j];
    for (size_t a = 0; a < d; ++a) {
      double ca = centered[a];
      if (ca == 0.0) continue;
      double* cov_row = cov.data() + a * d;
      for (size_t b = a; b < d; ++b) cov_row[b] += ca * centered[b];
    }
  }
  double inv_n = 1.0 / static_cast<double>(n - 1);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov[a * d + b] *= inv_n;
      cov[b * d + a] = cov[a * d + b];
    }
  }

  Rng rng(options.seed);
  model.components = vecmath::Matrix(options.target_dim, d);
  model.explained_variance.resize(options.target_dim);
  std::vector<double> v(d), next(d);

  for (size_t c = 0; c < options.target_dim; ++c) {
    for (auto& x : v) x = rng.NextGaussian();
    double eigenvalue = 0.0;
    for (size_t iter = 0; iter < options.power_iterations; ++iter) {
      // next = Cov * v
      for (size_t a = 0; a < d; ++a) {
        double sum = 0.0;
        const double* cov_row = cov.data() + a * d;
        for (size_t b = 0; b < d; ++b) sum += cov_row[b] * v[b];
        next[a] = sum;
      }
      // Orthogonalize against previously-extracted components.
      for (size_t p = 0; p < c; ++p) {
        const float* comp = model.components.Row(p);
        double dot = 0.0;
        for (size_t b = 0; b < d; ++b) dot += next[b] * comp[b];
        for (size_t b = 0; b < d; ++b) next[b] -= dot * comp[b];
      }
      double norm = 0.0;
      for (double x : next) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) {
        // Degenerate direction (rank-deficient data); restart randomly.
        for (auto& x : next) x = rng.NextGaussian();
        norm = 0.0;
        for (double x : next) norm += x * x;
        norm = std::sqrt(norm);
      }
      eigenvalue = norm;
      for (size_t b = 0; b < d; ++b) v[b] = next[b] / norm;
    }
    for (size_t b = 0; b < d; ++b) {
      model.components.At(c, b) = static_cast<float>(v[b]);
    }
    model.explained_variance[c] = eigenvalue;
  }
  return model;
}

}  // namespace mira::dimred
