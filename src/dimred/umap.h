#ifndef MIRA_DIMRED_UMAP_H_
#define MIRA_DIMRED_UMAP_H_

#include <cstdint>

#include "common/result.h"
#include "vecmath/matrix.h"

namespace mira::dimred {

/// UMAP (McInnes, Healy & Melville [32]): non-linear dimensionality reduction
/// that preserves both local neighborhoods and (better than t-SNE) global
/// structure — the reducer CTS applies to cell embeddings before HDBSCAN
/// clustering (§4.3).
///
/// Pipeline (matching umap-learn):
///   1. approximate kNN graph (HNSW; the "precomputed KNN" optimization the
///      paper mentions);
///   2. per-point smooth kernel calibration (rho_i = nearest distance, sigma_i
///      solved by bisection so the smoothed neighborhood has log2(k) mass);
///   3. fuzzy simplicial set symmetrization: w = w_ij + w_ji - w_ij * w_ji;
///   4. a/b curve-fit from (min_dist, spread);
///   5. PCA initialization;
///   6. SGD over edges with negative sampling on the cross-entropy objective.
struct UmapOptions {
  size_t target_dim = 5;
  size_t n_neighbors = 15;
  float min_dist = 0.1f;
  float spread = 1.0f;
  size_t n_epochs = 200;
  float learning_rate = 1.0f;
  size_t negative_sample_rate = 5;
  uint64_t seed = 31;
};

struct UmapModel {
  /// The n x target_dim layout of the training rows.
  vecmath::Matrix embedding;
  /// Fitted attraction-curve parameters.
  float a = 0.f;
  float b = 0.f;
};

/// Reduces the rows of `data`. Requires data.rows() >= 4 and target_dim <=
/// data.cols().
[[nodiscard]] Result<UmapModel> FitUmap(const vecmath::Matrix& data, const UmapOptions& options);

/// Least-squares fit of a, b in phi(x) = 1 / (1 + a x^(2b)) to the target
/// membership curve defined by (min_dist, spread). Exposed for tests.
void FitAbParams(float min_dist, float spread, float* a, float* b);

}  // namespace mira::dimred

#endif  // MIRA_DIMRED_UMAP_H_
