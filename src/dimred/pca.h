#ifndef MIRA_DIMRED_PCA_H_
#define MIRA_DIMRED_PCA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "vecmath/matrix.h"

namespace mira::dimred {

/// Principal component analysis via power iteration with deflation on the
/// covariance matrix. Used as UMAP's deterministic initialization and as a
/// standalone (linear) reducer for ablation benches.
struct PcaOptions {
  size_t target_dim = 5;
  size_t power_iterations = 60;
  uint64_t seed = 97;
};

struct PcaModel {
  /// Per-feature mean subtracted before projection.
  vecmath::Vec mean;
  /// target_dim x input_dim row-major component matrix (orthonormal rows).
  vecmath::Matrix components;
  /// Eigenvalue estimate per component (descending).
  std::vector<double> explained_variance;

  /// Projects one vector into the principal subspace.
  vecmath::Vec Transform(const vecmath::Vec& input) const;
  /// Projects all rows.
  vecmath::Matrix TransformAll(const vecmath::Matrix& input) const;
};

/// Fits PCA on the rows of `data`. target_dim must be <= input dim and
/// data must have >= 2 rows.
[[nodiscard]] Result<PcaModel> FitPca(const vecmath::Matrix& data, const PcaOptions& options);

}  // namespace mira::dimred

#endif  // MIRA_DIMRED_PCA_H_
