#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace mira::ml {

namespace {

double MeanOf(const RegressionData& data, const std::vector<size_t>& indices,
              size_t begin, size_t end) {
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += data.targets[indices[i]];
  return sum / static_cast<double>(end - begin);
}

}  // namespace

Result<DecisionTree> DecisionTree::Fit(const RegressionData& data,
                                       const TreeOptions& options,
                                       const std::vector<size_t>& sample_indices) {
  if (data.size() == 0) return Status::InvalidArgument("tree: empty data");
  DecisionTree tree;
  std::vector<size_t> indices = sample_indices;
  if (indices.empty()) {
    indices.resize(data.size());
    std::iota(indices.begin(), indices.end(), 0);
  }
  Rng rng(options.seed);
  tree.BuildNode(data, &indices, 0, indices.size(), 0, options, &rng);
  return tree;
}

int32_t DecisionTree::BuildNode(const RegressionData& data,
                                std::vector<size_t>* indices, size_t begin,
                                size_t end, size_t depth,
                                const TreeOptions& options, Rng* rng) {
  depth_ = std::max(depth_, depth);
  int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = MeanOf(data, *indices, begin, end);

  const size_t count = end - begin;
  if (depth >= options.max_depth || count < options.min_samples_split) {
    return node_id;
  }

  // Candidate features for this split.
  const size_t f = data.num_features;
  std::vector<size_t> feature_order(f);
  std::iota(feature_order.begin(), feature_order.end(), 0);
  size_t feature_budget = options.max_features == 0
                              ? f
                              : std::min(options.max_features, f);
  if (feature_budget < f) rng->Shuffle(&feature_order);

  // Best split by sum-of-squares reduction, scanning sorted feature values
  // with prefix statistics.
  double best_gain = 1e-12;
  int32_t best_feature = -1;
  double best_threshold = 0.0;

  double total_sum = 0.0, total_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    double y = data.targets[(*indices)[i]];
    total_sum += y;
    total_sq += y * y;
  }
  double parent_sse = total_sq - total_sum * total_sum / count;

  std::vector<std::pair<double, double>> xy(count);  // (feature value, target)
  for (size_t fi = 0; fi < feature_budget; ++fi) {
    size_t feature = feature_order[fi];
    for (size_t i = begin; i < end; ++i) {
      size_t row = (*indices)[i];
      xy[i - begin] = {data.features[row][feature], data.targets[row]};
    }
    std::sort(xy.begin(), xy.end());

    double left_sum = 0.0, left_sq = 0.0;
    for (size_t i = 0; i + 1 < count; ++i) {
      left_sum += xy[i].second;
      left_sq += xy[i].second * xy[i].second;
      if (xy[i].first == xy[i + 1].first) continue;  // no boundary here
      size_t left_n = i + 1;
      size_t right_n = count - left_n;
      if (left_n < options.min_samples_leaf || right_n < options.min_samples_leaf) {
        continue;
      }
      double right_sum = total_sum - left_sum;
      double right_sq = total_sq - left_sq;
      double sse = (left_sq - left_sum * left_sum / left_n) +
                   (right_sq - right_sum * right_sum / right_n);
      double gain = parent_sse - sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(feature);
        best_threshold = (xy[i].first + xy[i + 1].first) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition indices in place.
  auto middle = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](size_t row) {
        return data.features[row][best_feature] <= best_threshold;
      });
  size_t split = static_cast<size_t>(middle - indices->begin());
  if (split == begin || split == end) return node_id;  // degenerate

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int32_t left = BuildNode(data, indices, begin, split, depth + 1, options, rng);
  int32_t right = BuildNode(data, indices, split, end, depth + 1, options, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::Predict(const std::vector<double>& x) const {
  if (nodes_.empty()) return 0.0;
  int32_t node = 0;
  while (nodes_[node].feature >= 0) {
    size_t feature = static_cast<size_t>(nodes_[node].feature);
    double value = feature < x.size() ? x[feature] : 0.0;
    node = value <= nodes_[node].threshold ? nodes_[node].left
                                           : nodes_[node].right;
  }
  return nodes_[node].value;
}

Result<RandomForest> RandomForest::Fit(const RegressionData& data,
                                       const ForestOptions& options) {
  if (data.size() == 0) return Status::InvalidArgument("forest: empty data");
  RandomForest forest;
  Rng rng(options.seed);
  size_t sample_size = static_cast<size_t>(
      std::max(1.0, options.bootstrap_fraction * data.size()));
  for (size_t t = 0; t < options.num_trees; ++t) {
    std::vector<size_t> sample(sample_size);
    for (auto& idx : sample) {
      idx = static_cast<size_t>(rng.NextBounded(data.size()));
    }
    TreeOptions tree_opts = options.tree;
    tree_opts.seed = SplitMix64(options.seed + t * 2654435761ULL);
    if (tree_opts.max_features == 0) {
      tree_opts.max_features = static_cast<size_t>(
          std::max(1.0, std::sqrt(static_cast<double>(data.num_features))));
    }
    MIRA_ASSIGN_OR_RETURN(DecisionTree tree,
                          DecisionTree::Fit(data, tree_opts, sample));
    forest.trees_.push_back(std::move(tree));
  }
  return forest;
}

double RandomForest::Predict(const std::vector<double>& x) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(x);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace mira::ml
