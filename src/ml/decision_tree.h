#ifndef MIRA_ML_DECISION_TREE_H_
#define MIRA_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/linear_regression.h"

namespace mira::ml {

/// CART regression tree: greedy variance-reduction splits on
/// (feature, threshold) pairs.
struct TreeOptions {
  size_t max_depth = 8;
  size_t min_samples_split = 4;
  size_t min_samples_leaf = 2;
  /// Features considered per split; 0 = all (random forests pass sqrt(f)).
  size_t max_features = 0;
  uint64_t seed = 11;
};

class DecisionTree {
 public:
  /// Fits on the rows of `data` selected by `sample_indices` (empty = all).
  [[nodiscard]] static Result<DecisionTree> Fit(const RegressionData& data,
                                  const TreeOptions& options,
                                  const std::vector<size_t>& sample_indices = {});

  double Predict(const std::vector<double>& x) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t depth() const { return depth_; }

 private:
  struct Node {
    // Leaf iff feature < 0.
    int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t BuildNode(const RegressionData& data, std::vector<size_t>* indices,
                    size_t begin, size_t end, size_t depth,
                    const TreeOptions& options, Rng* rng);

  std::vector<Node> nodes_;
  size_t depth_ = 0;
};

/// Bagged ensemble of CART trees with per-split feature subsampling — the
/// Random Forest regressor TCS [55] ranks with.
struct ForestOptions {
  size_t num_trees = 30;
  TreeOptions tree;
  /// Bootstrap sample fraction per tree.
  double bootstrap_fraction = 1.0;
  uint64_t seed = 13;
};

class RandomForest {
 public:
  [[nodiscard]] static Result<RandomForest> Fit(const RegressionData& data,
                                  const ForestOptions& options = {});

  double Predict(const std::vector<double>& x) const;
  size_t num_trees() const { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace mira::ml

#endif  // MIRA_ML_DECISION_TREE_H_
