#ifndef MIRA_ML_LINEAR_REGRESSION_H_
#define MIRA_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "common/result.h"

namespace mira::ml {

/// A supervised regression dataset: row-major feature matrix + targets.
struct RegressionData {
  size_t num_features = 0;
  std::vector<std::vector<double>> features;
  std::vector<double> targets;

  [[nodiscard]] Status Add(std::vector<double> x, double y);
  size_t size() const { return targets.size(); }
};

/// Ridge regression fit by solving the regularized normal equations with
/// Gaussian elimination (feature counts here are tiny). Backs the WebTable
/// System baseline's hand-crafted-features + linear-regression ranker [6].
struct RidgeOptions {
  double l2 = 1e-3;
  bool fit_intercept = true;
};

class LinearRegression {
 public:
  [[nodiscard]] static Result<LinearRegression> Fit(const RegressionData& data,
                                      const RidgeOptions& options = {});

  double Predict(const std::vector<double>& x) const;

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

/// Solves A x = b in place (A is n x n row-major) by Gaussian elimination
/// with partial pivoting. Fails on (near-)singular systems.
[[nodiscard]] Status SolveLinearSystem(std::vector<double>* a, std::vector<double>* b,
                         size_t n);

}  // namespace mira::ml

#endif  // MIRA_ML_LINEAR_REGRESSION_H_
