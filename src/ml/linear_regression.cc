#include "ml/linear_regression.h"

#include <cmath>

#include "common/string_util.h"

namespace mira::ml {

Status RegressionData::Add(std::vector<double> x, double y) {
  if (num_features == 0) num_features = x.size();
  if (x.size() != num_features) {
    return Status::InvalidArgument(
        StrFormat("regression data: %zu features, expected %zu", x.size(),
                  num_features));
  }
  features.push_back(std::move(x));
  targets.push_back(y);
  return Status::OK();
}

Status SolveLinearSystem(std::vector<double>* a, std::vector<double>* b,
                         size_t n) {
  auto& A = *a;
  auto& B = *b;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(A[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(A[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::InvalidArgument("linear system is singular");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(A[col * n + c], A[pivot * n + c]);
      std::swap(B[col], B[pivot]);
    }
    // Eliminate below.
    for (size_t r = col + 1; r < n; ++r) {
      double factor = A[r * n + col] / A[col * n + col];
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) A[r * n + c] -= factor * A[col * n + c];
      B[r] -= factor * B[col];
    }
  }
  // Back substitution.
  for (size_t col = n; col > 0; --col) {
    size_t i = col - 1;
    double sum = B[i];
    for (size_t c = i + 1; c < n; ++c) sum -= A[i * n + c] * B[c];
    B[i] = sum / A[i * n + i];
  }
  return Status::OK();
}

Result<LinearRegression> LinearRegression::Fit(const RegressionData& data,
                                               const RidgeOptions& options) {
  if (data.size() == 0) return Status::InvalidArgument("ridge: empty data");
  const size_t f = data.num_features;
  const size_t n = f + (options.fit_intercept ? 1 : 0);

  // Normal equations: (X'X + l2 I) w = X'y, with an appended all-ones
  // feature for the intercept (not regularized).
  std::vector<double> xtx(n * n, 0.0);
  std::vector<double> xty(n, 0.0);
  std::vector<double> row(n);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < f; ++j) row[j] = data.features[i][j];
    if (options.fit_intercept) row[f] = 1.0;
    for (size_t a = 0; a < n; ++a) {
      xty[a] += row[a] * data.targets[i];
      for (size_t b = 0; b < n; ++b) xtx[a * n + b] += row[a] * row[b];
    }
  }
  for (size_t j = 0; j < f; ++j) xtx[j * n + j] += options.l2;

  MIRA_RETURN_NOT_OK(SolveLinearSystem(&xtx, &xty, n));

  LinearRegression model;
  model.weights_.assign(xty.begin(), xty.begin() + f);
  model.intercept_ = options.fit_intercept ? xty[f] : 0.0;
  return model;
}

double LinearRegression::Predict(const std::vector<double>& x) const {
  double sum = intercept_;
  for (size_t j = 0; j < weights_.size() && j < x.size(); ++j) {
    sum += weights_[j] * x[j];
  }
  return sum;
}

}  // namespace mira::ml
