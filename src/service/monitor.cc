#include "service/monitor.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace mira::service {

namespace {

obs::WindowedMetrics::Options WindowOptions(const ServiceMonitor::Options& options) {
  obs::WindowedMetrics::Options window_options;
  window_options.bucket_seconds = options.bucket_seconds;
  window_options.ring_buckets = options.ring_buckets;
  return window_options;
}

obs::SloEngine::Options SloOptions(const ServiceMonitor::Options& options) {
  obs::SloEngine::Options slo_options;
  slo_options.eval_interval_s = options.eval_interval_s;
  return slo_options;
}

/// Minimal JSON string escaping for names we control (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.append(StrFormat("\\u%04x", c));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

ServiceMonitor::ServiceMonitor(DiscoveryService* service, Options options)
    : options_(std::move(options)),
      service_(service),
      windows_(WindowOptions(options_)),
      slo_(&windows_, SloOptions(options_)) {
  // Accepted-request latency: "p<1 - target> of end-to-end latency stays
  // under threshold". Counts only dispatched requests (sheds never reach the
  // latency histogram).
  obs::SloObjective latency;
  latency.name = "latency_p99";
  latency.kind = obs::SloObjective::Kind::kLatency;
  latency.histogram = "mira.service.latency_ms";
  latency.threshold_ms = options_.latency_threshold_ms;
  latency.target_fraction = options_.latency_target_fraction;
  latency.fast_window_s = options_.fast_window_s;
  latency.slow_window_s = options_.slow_window_s;
  latency.warn_burn = options_.warn_burn;
  latency.breach_burn = options_.breach_burn;
  slo_.AddObjective(latency);

  // Shed fraction: rejects (quota + queue-full) over all admission verdicts.
  obs::SloObjective shed;
  shed.name = "shed_fraction";
  shed.kind = obs::SloObjective::Kind::kRatio;
  shed.bad_counters = {"mira.service.rejected.quota",
                       "mira.service.rejected.queue_full"};
  shed.total_counters = {"mira.service.admitted",
                         "mira.service.rejected.quota",
                         "mira.service.rejected.queue_full"};
  shed.target_fraction = options_.shed_target_fraction;
  shed.fast_window_s = options_.fast_window_s;
  shed.slow_window_s = options_.slow_window_s;
  shed.warn_burn = options_.warn_burn;
  shed.breach_burn = options_.breach_burn;
  slo_.AddObjective(shed);

  // Per-configured-tenant shed objectives over the tenant metric slices.
  for (const std::string& tenant : options_.tenants) {
    const std::string prefix = "mira.tenant." + tenant + ".";
    obs::SloObjective tenant_shed = shed;
    tenant_shed.name = "shed_fraction_" + tenant;
    tenant_shed.bad_counters = {prefix + "rejected"};
    tenant_shed.total_counters = {prefix + "admitted", prefix + "rejected"};
    slo_.AddObjective(tenant_shed);
    // Extra windowed series so /tenantz can show live per-tenant rates.
    windows_.TrackCounter(prefix + "completed");
  }
  windows_.TrackCounter("mira.service.completed");

  if (options_.enable_watchdog) {
    watchdog_ = std::make_unique<StuckQueryWatchdog>(
        [service] { return service->InflightSnapshot(); }, options_.watchdog);
  }
}

ServiceMonitor::~ServiceMonitor() { Stop(); }

void ServiceMonitor::Start() {
  slo_.Start();
  if (watchdog_ != nullptr) watchdog_->Start();
}

void ServiceMonitor::Stop() {
  if (watchdog_ != nullptr) watchdog_->Stop();
  slo_.Stop();
}

std::string ServiceMonitor::RenderSlozz() const {
  std::string body;
  body.append(StrFormat("slo objectives (evaluations: %llu)\n",
                        static_cast<unsigned long long>(slo_.evaluations())));
  for (const obs::SloStatus& status : slo_.Statuses()) {
    body.append(StrFormat(
        "  %s: %s burn_fast %.2f burn_slow %.2f bad_fraction %.4f "
        "(target %.4f) events_fast %llu%s\n",
        status.name.c_str(),
        std::string(obs::SloStateToString(status.state)).c_str(),
        status.burn_fast, status.burn_slow, status.bad_fraction_fast,
        status.target_fraction,
        static_cast<unsigned long long>(status.total_fast),
        status.measurable ? "" : " [not yet measurable]"));
  }
  body.append("transitions (oldest first)\n");
  const std::vector<obs::SloTransition> history = slo_.History();
  if (history.empty()) body.append("  (none)\n");
  for (const obs::SloTransition& transition : history) {
    body.append(StrFormat(
        "  [t=%.1f] %s %s -> %s (burn_fast %.2f burn_slow %.2f)\n",
        transition.time_s, transition.objective.c_str(),
        std::string(obs::SloStateToString(transition.from)).c_str(),
        std::string(obs::SloStateToString(transition.to)).c_str(),
        transition.burn_fast, transition.burn_slow));
  }
  body.append("watchdog\n");
  if (watchdog_ == nullptr) {
    body.append("  (disabled)\n");
  } else {
    body.append(
        StrFormat("  scans %llu stuck %llu\n",
                  static_cast<unsigned long long>(watchdog_->scans()),
                  static_cast<unsigned long long>(watchdog_->total_stuck())));
    for (const StuckReport& report : watchdog_->RecentReports()) {
      body.append(StrFormat(
          "  request %llu tenant %s method %s running %.1f ms budget %.1f ms"
          "%s\n",
          static_cast<unsigned long long>(report.request_id),
          report.tenant.c_str(), report.method.c_str(), report.running_ms,
          report.budget_ms,
          report.profile_folded.empty() ? "" : " [profile attached]"));
    }
  }
  return body;
}

std::string ServiceMonitor::SlozzJson() const {
  std::string out = "{\n";
  out.append(StrFormat("  \"evaluations\": %llu,\n",
                       static_cast<unsigned long long>(slo_.evaluations())));
  out.append("  \"statuses\": [");
  bool first = true;
  for (const obs::SloStatus& status : slo_.Statuses()) {
    if (!first) out.append(",");
    first = false;
    out.append(StrFormat(
        "\n    {\"name\": \"%s\", \"state\": \"%s\", \"burn_fast\": %.6g, "
        "\"burn_slow\": %.6g, \"bad_fraction_fast\": %.6g, "
        "\"total_fast\": %llu, \"target_fraction\": %.6g, "
        "\"measurable\": %s}",
        JsonEscape(status.name).c_str(),
        std::string(obs::SloStateToString(status.state)).c_str(),
        status.burn_fast, status.burn_slow, status.bad_fraction_fast,
        static_cast<unsigned long long>(status.total_fast),
        status.target_fraction, status.measurable ? "true" : "false"));
  }
  out.append(first ? "],\n" : "\n  ],\n");
  out.append("  \"transitions\": [");
  first = true;
  for (const obs::SloTransition& transition : slo_.History()) {
    if (!first) out.append(",");
    first = false;
    out.append(StrFormat(
        "\n    {\"time_s\": %.6f, \"objective\": \"%s\", \"from\": \"%s\", "
        "\"to\": \"%s\", \"burn_fast\": %.6g, \"burn_slow\": %.6g}",
        transition.time_s, JsonEscape(transition.objective).c_str(),
        std::string(obs::SloStateToString(transition.from)).c_str(),
        std::string(obs::SloStateToString(transition.to)).c_str(),
        transition.burn_fast, transition.burn_slow));
  }
  out.append(first ? "],\n" : "\n  ],\n");
  if (watchdog_ == nullptr) {
    out.append("  \"watchdog\": null\n");
  } else {
    out.append(
        StrFormat("  \"watchdog\": {\"scans\": %llu, \"stuck\": %llu}\n",
                  static_cast<unsigned long long>(watchdog_->scans()),
                  static_cast<unsigned long long>(watchdog_->total_stuck())));
  }
  out.append("}\n");
  return out;
}

std::string ServiceMonitor::RenderTenantz() const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  std::string body;
  body.append("tenants (admission view)\n");
  std::set<std::string> names(options_.tenants.begin(),
                              options_.tenants.end());
  for (const AdmissionController::TenantState& tenant :
       service_->TenantStates()) {
    names.insert(tenant.tenant);
    body.append(StrFormat(
        "  %s: tokens %.1f/%.0f refill %.1f qps priority %d admitted %llu "
        "rejected %llu\n",
        tenant.tenant.c_str(), tenant.tokens, tenant.burst, tenant.refill_qps,
        tenant.priority, static_cast<unsigned long long>(tenant.admitted),
        static_cast<unsigned long long>(tenant.rejected)));
  }
  body.append("slices (cumulative mira.tenant.* counters)\n");
  if (names.empty()) body.append("  (none seen yet)\n");
  for (const std::string& name : names) {
    const std::string prefix = "mira.tenant." + name + ".";
    body.append(StrFormat(
        "  %s: admitted %llu completed %llu rejected %llu evicted %llu "
        "failed %llu preemptive %llu\n",
        name.c_str(),
        static_cast<unsigned long long>(
            registry.GetCounter(prefix + "admitted").value()),
        static_cast<unsigned long long>(
            registry.GetCounter(prefix + "completed").value()),
        static_cast<unsigned long long>(
            registry.GetCounter(prefix + "rejected").value()),
        static_cast<unsigned long long>(
            registry.GetCounter(prefix + "evicted").value()),
        static_cast<unsigned long long>(
            registry.GetCounter(prefix + "failed").value()),
        static_cast<unsigned long long>(
            registry.GetCounter(prefix + "preemptive").value())));
  }
  body.append(StrFormat("rates (trailing %.0fs window)\n",
                        options_.fast_window_s));
  bool any_rate = false;
  for (const std::string& tracked : windows_.TrackedCounters()) {
    const obs::WindowedMetrics::WindowRate rate =
        windows_.CounterRate(tracked, options_.fast_window_s);
    if (!rate.ok) continue;
    any_rate = true;
    body.append(StrFormat("  %s: %.2f/s over %.1fs\n", tracked.c_str(),
                          rate.rate_per_s, rate.covered_s));
  }
  if (!any_rate) body.append("  (no window data yet)\n");
  return body;
}

void ServiceMonitor::RegisterDebugPages(obs::DebugServer* server) {
  if (server == nullptr) return;
  server->AddPage("/slozz", "SLO burn rates, transitions, stuck queries",
                  [this] { return RenderSlozz(); });
  server->AddPage("/slozz.json", "machine-readable /slozz",
                  [this] { return SlozzJson(); });
  server->AddPage("/tenantz", "per-tenant quotas, metric slices, rates",
                  [this] { return RenderTenantz(); });
}

}  // namespace mira::service
