#include "service/admission.h"

#include <algorithm>
#include <limits>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace mira::service {

TokenBucket::TokenBucket(double refill_qps, double burst)
    : refill_qps_(std::max(0.0, refill_qps)),
      burst_(std::max(1.0, burst)),
      tokens_(burst_),
      last_refill_s_(0.0) {}

double TokenBucket::RefilledTokens(double now_s) const {
  const double elapsed = std::max(0.0, now_s - last_refill_s_);
  return std::min(burst_, tokens_ + elapsed * refill_qps_);
}

bool TokenBucket::TryAcquire(double now_s) {
  tokens_ = RefilledTokens(now_s);
  last_refill_s_ = std::max(last_refill_s_, now_s);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::SecondsUntilToken(double now_s) const {
  const double tokens = RefilledTokens(now_s);
  if (tokens >= 1.0) return 0.0;
  if (refill_qps_ <= 0.0) return std::numeric_limits<double>::infinity();
  return (1.0 - tokens) / refill_qps_;
}

double TokenBucket::Tokens(double now_s) const { return RefilledTokens(now_s); }

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)), retry_policy_(options_.retry) {}

const TenantQuota& AdmissionController::QuotaFor(
    const std::string& tenant) const {
  auto it = options_.tenant_quotas.find(tenant);
  return it == options_.tenant_quotas.end() ? options_.default_quota
                                            : it->second;
}

AdmissionDecision AdmissionController::Admit(const std::string& tenant,
                                             size_t queue_depth,
                                             double now_s) {
  const TenantQuota& quota = QuotaFor(tenant);
  AdmissionDecision decision;
  decision.priority = quota.priority;

  // Forced shed: an armed `service.admit` failpoint rejects with whatever
  // status it injects (typed codes pass through to the caller untouched).
  if (Status injected = failpoint::Trigger("service.admit"); !injected.ok()) {
    decision.outcome = AdmitOutcome::kRejectQueueFull;
    decision.retry_after_ms = retry_policy_.BackoffMsForAttempt(1);
    decision.status = std::move(injected);
    MutexLock lock(mu_);
    auto [it, inserted] = buckets_.try_emplace(
        tenant, Bucket{TokenBucket(quota.refill_qps, quota.burst)});
    ++it->second.rejected;
    return decision;
  }

  MutexLock lock(mu_);
  auto [it, inserted] = buckets_.try_emplace(
      tenant, Bucket{TokenBucket(quota.refill_qps, quota.burst)});
  Bucket& bucket = it->second;

  if (queue_depth >= options_.max_queue_depth) {
    decision.outcome = AdmitOutcome::kRejectQueueFull;
    decision.retry_after_ms = retry_policy_.BackoffMsForAttempt(1);
    decision.status = Status::ResourceExhausted(StrFormat(
        "admission: queue full (%zu/%zu); retry after %.1f ms", queue_depth,
        options_.max_queue_depth, decision.retry_after_ms));
    ++bucket.rejected;
    return decision;
  }

  if (!bucket.bucket.TryAcquire(now_s)) {
    decision.outcome = AdmitOutcome::kRejectQuota;
    decision.retry_after_ms =
        std::max(bucket.bucket.SecondsUntilToken(now_s) * 1000.0,
                 retry_policy_.BackoffMsForAttempt(1));
    decision.status = Status::ResourceExhausted(StrFormat(
        "admission: tenant '%s' quota exhausted (%.1f qps, burst %.0f); "
        "retry after %.1f ms",
        tenant.c_str(), quota.refill_qps, quota.burst,
        decision.retry_after_ms));
    ++bucket.rejected;
    return decision;
  }

  ++bucket.admitted;
  return decision;
}

std::vector<AdmissionController::TenantState> AdmissionController::TenantStates(
    double now_s) const {
  std::vector<TenantState> out;
  MutexLock lock(mu_);
  out.reserve(buckets_.size());
  for (const auto& [tenant, bucket] : buckets_) {
    const TenantQuota& quota = QuotaFor(tenant);
    TenantState state;
    state.tenant = tenant;
    state.tokens = bucket.bucket.Tokens(now_s);
    state.burst = quota.burst;
    state.refill_qps = quota.refill_qps;
    state.priority = quota.priority;
    state.admitted = bucket.admitted;
    state.rejected = bucket.rejected;
    out.push_back(std::move(state));
  }
  return out;
}

}  // namespace mira::service
