#ifndef MIRA_SERVICE_WATCHDOG_H_
#define MIRA_SERVICE_WATCHDOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"
#include "service/discovery_service.h"

namespace mira::service {

/// One in-flight request the watchdog flagged as stuck: it has been running
/// for more than `overdue_factor` times its deadline budget (or past the
/// no-deadline grace budget) without completing. Engine queries are supposed
/// to self-degrade and return *before* their deadline, so an overdue-by-3x
/// request means a worker is wedged — in a lock, a pathological scan, or an
/// injected fault — and would otherwise only surface as quiet tail latency.
struct StuckReport {
  uint64_t request_id = 0;  ///< DiscoveryService dispatch sequence id.
  std::string tenant;
  std::string method;
  double detected_at_s = 0.0;  ///< Monotonic seconds at detection.
  double running_ms = 0.0;     ///< Age when flagged.
  double budget_ms = 0.0;      ///< Deadline budget at dispatch (0 = none).
  /// Folded stacks from the CPU profile slice taken at detection (empty when
  /// profiling is disabled, compiled out, or another profile was active).
  std::string profile_folded;
};

/// Background scanner over DiscoveryService::InflightSnapshot(). Each
/// interval it flags requests whose run time exceeds N× their dispatch-time
/// deadline budget, logs one report per offender (never re-reports the same
/// dispatch id), bumps mira.watchdog.* counters, and — optionally — captures
/// a short whole-process CPU profile slice so the report says what the
/// wedged worker was actually doing.
///
/// Lifecycle mirrors StatsReporter: construct → Start() → ... → Stop() (or
/// destructor). ScanOnce(now_s) is the deterministic seam the tests drive
/// directly, no thread involved.
class StuckQueryWatchdog {
 public:
  using SnapshotFn =
      std::function<std::vector<DiscoveryService::InflightInfo>()>;

  struct Options {
    /// Scan cadence for the background thread.
    double interval_s = 0.5;
    /// A request is stuck once running_ms > overdue_factor * budget_ms ...
    double overdue_factor = 3.0;
    /// ... but never before this floor (keeps sub-millisecond budgets from
    /// flagging requests the scheduler merely hasn't run yet).
    double min_overdue_ms = 50.0;
    /// Budget charged to requests that carried no deadline at all.
    double no_deadline_budget_ms = 1000.0;
    /// Capture a CPU profile slice when a scan finds new offenders. Off by
    /// default: the profiler is process-wide and single-active.
    bool profile_on_stuck = false;
    double profile_seconds = 0.25;
    /// Reports retained for RecentReports (oldest dropped first).
    size_t max_reports = 32;
  };

  StuckQueryWatchdog(SnapshotFn snapshot, Options options);
  ~StuckQueryWatchdog();

  StuckQueryWatchdog(const StuckQueryWatchdog&) = delete;
  StuckQueryWatchdog& operator=(const StuckQueryWatchdog&) = delete;

  void Start();
  /// Idempotent; safe without Start().
  void Stop();
  bool running() const;

  /// One scan at time `now_s` (monotonic seconds — the InflightInfo::start_s
  /// clock). Returns how many *new* offenders this scan flagged. Thread-safe
  /// with the background loop, though tests normally use one or the other.
  size_t ScanOnce(double now_s);

  /// Most recent reports, oldest first (bounded by Options::max_reports).
  std::vector<StuckReport> RecentReports() const;

  uint64_t scans() const;
  uint64_t total_stuck() const;

 private:
  void Loop();

  Options options_;
  SnapshotFn snapshot_;

  /// mira.watchdog.* handles, resolved once.
  obs::Counter* scans_metric_;
  obs::Counter* stuck_metric_;
  obs::Gauge* stuck_now_metric_;

  mutable Mutex mu_;
  CondVar wake_;
  std::thread thread_ MIRA_GUARDED_BY(mu_);
  bool running_ MIRA_GUARDED_BY(mu_) = false;
  bool stop_requested_ MIRA_GUARDED_BY(mu_) = false;
  uint64_t scans_ MIRA_GUARDED_BY(mu_) = 0;
  uint64_t total_stuck_ MIRA_GUARDED_BY(mu_) = 0;
  /// Dispatch ids already reported: one report per stuck request, however
  /// many scans it stays wedged for. Pruned to the ids still in flight.
  std::set<uint64_t> reported_ MIRA_GUARDED_BY(mu_);
  std::deque<StuckReport> reports_ MIRA_GUARDED_BY(mu_);
};

}  // namespace mira::service

#endif  // MIRA_SERVICE_WATCHDOG_H_
