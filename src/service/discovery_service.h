#ifndef MIRA_SERVICE_DISCOVERY_SERVICE_H_
#define MIRA_SERVICE_DISCOVERY_SERVICE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "discovery/engine.h"
#include "discovery/types.h"
#include "obs/debug_server.h"
#include "obs/metrics.h"
#include "service/admission.h"

namespace mira::service {

/// Which regime the scheduler dispatched a request under (the MAGPIE
/// two-mode threading tradeoff — see docs/ROBUSTNESS.md § service layer):
///  - kFanOut: the queue is shallow, so few requests run at once and each
///    one gets the engine's intra-query `ParallelFor` fan-out to itself.
///  - kThroughput: the queue is deep; every worker dispatches independently
///    (one query per worker) and throughput wins over single-query latency.
enum class DispatchMode { kFanOut = 0, kThroughput = 1 };

std::string_view DispatchModeToString(DispatchMode mode);

/// One discovery query as submitted by a client of the service.
struct ServiceRequest {
  std::string tenant = "default";
  discovery::Method method = discovery::Method::kAnns;
  std::string query;
  discovery::DiscoveryOptions options;
};

enum class RequestOutcome {
  /// Ran to completion (possibly degraded) and carries a ranking.
  kCompleted = 0,
  /// Shed at admission (quota or queue-full); never queued, never ran.
  kRejected,
  /// Admitted, but its deadline expired (or it was cancelled) while queued;
  /// evicted at dispatch time without running.
  kEvicted,
  /// Dispatched but the engine (or an injected fault) returned an error.
  kFailed,
};

std::string_view RequestOutcomeToString(RequestOutcome outcome);

struct ServiceResponse {
  Status status = Status::OK();
  discovery::Ranking ranking;
  RequestOutcome outcome = RequestOutcome::kCompleted;
  /// Suggested client backoff before retrying (kRejected only).
  double retry_after_ms = 0.0;
  /// Time spent queued before dispatch (0 for rejections).
  double queue_ms = 0.0;
  /// Time spent running in the engine (0 unless dispatched).
  double run_ms = 0.0;
  /// Scheduler regime the request was dispatched under.
  DispatchMode mode = DispatchMode::kThroughput;
  /// True when sustained queue pressure tightened the request's budget
  /// before it ran (degraded-before-deadline; the ranking's own `degraded`
  /// flag says whether the engine actually had to reduce effort).
  bool preemptively_degraded = false;
};

struct ServiceOptions {
  /// Dispatch workers (upper bound on concurrently running queries).
  size_t worker_threads = 4;
  AdmissionOptions admission;
  /// Queue depths at or below this count as "shallow": dispatch switches to
  /// kFanOut and caps concurrency at `fanout_inflight_limit` so the engine's
  /// intra-query ParallelFor owns the cores.
  size_t fanout_queue_threshold = 2;
  size_t fanout_inflight_limit = 2;
  /// Pressure ladder: when the queue at dispatch is at or beyond this
  /// fraction of max_queue_depth, the request runs preemptively degraded —
  /// its budget tightened to `remaining * pressure_budget_scale` (or to
  /// `pressure_budget_ms` if it had no deadline at all).
  double pressure_degrade_fraction = 0.5;
  double pressure_budget_scale = 0.5;
  double pressure_budget_ms = 25.0;
  /// Record every request (including sheds/evictions) in the global
  /// obs::QueryLog.
  bool record_query_log = true;
  /// Distinct tenants that get their own mira.tenant.<name>.* metric slice.
  /// Everyone past the cap shares the "_other" slice, so a tenant-id flood
  /// cannot grow the registry without bound.
  size_t max_tenant_slices = 16;
};

/// Admission-controlled concurrent front-end over DiscoveryEngine.
///
/// Overload policy, in ladder order (docs/ROBUSTNESS.md):
///   1. admission control *rejects* (kResourceExhausted + retry-after) when
///      a tenant is over quota or the bounded queue is full;
///   2. queued requests whose deadline expires before dispatch are
///      *evicted* — they never reach the engine;
///   3. requests dispatched under sustained queue pressure run *preemptively
///      degraded* on a tightened budget, converting tail latency into the
///      engine's graceful-degradation ladder before deadlines fire.
///
/// Thread-safety: all public methods are safe for concurrent use once
/// Start() returned; Start/Stop themselves are for the owning thread.
class DiscoveryService {
 public:
  /// Seam for tests and benches: runs one (admitted, dispatched) request.
  using QueryRunner =
      std::function<Result<discovery::Ranking>(const ServiceRequest&)>;
  using Callback = std::function<void(ServiceResponse)>;

  /// Serves queries from `engine` (not owned; must outlive the service).
  DiscoveryService(const discovery::DiscoveryEngine* engine,
                   ServiceOptions options);
  /// Serves queries through an arbitrary runner (tests, benches).
  DiscoveryService(QueryRunner runner, ServiceOptions options);
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// Spawns the dispatch workers. Fails if already started.
  [[nodiscard]] Status Start();

  /// Stops accepting work, completes every still-queued request with
  /// kUnavailable, and joins the workers. Idempotent.
  void Stop();

  /// Asynchronous entry point. `done` is invoked exactly once: inline (from
  /// the submitting thread) for admission rejections, from a worker thread
  /// otherwise. The callback must not re-enter Stop().
  void Submit(ServiceRequest request, Callback done);

  /// Blocking convenience wrapper around Submit.
  ServiceResponse Search(ServiceRequest request);

  struct Stats {
    size_t queue_depth = 0;
    size_t inflight = 0;
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
    uint64_t evicted = 0;
    uint64_t failed = 0;
    uint64_t preemptively_degraded = 0;
    /// Regime the next dispatch would use at the current depth.
    DispatchMode mode = DispatchMode::kFanOut;
  };
  Stats GetStats() const;

  /// Per-tenant quota view (for /servicez and tests).
  std::vector<AdmissionController::TenantState> TenantStates() const;

  /// One request currently running in a worker (admitted, dispatched, not
  /// yet completed). The stuck-query watchdog polls this.
  struct InflightInfo {
    uint64_t id = 0;  ///< Monotonic dispatch sequence number.
    std::string tenant;
    discovery::Method method = discovery::Method::kAnns;
    double start_s = 0.0;    ///< MonotonicSeconds() at dispatch.
    double budget_ms = 0.0;  ///< Deadline budget at dispatch; 0 = none.
    bool preemptively_degraded = false;
  };
  std::vector<InflightInfo> InflightSnapshot() const;

  /// The /servicez page body (plain text).
  std::string RenderServicez() const;

  /// Registers /servicez on a debugz server. No-op under MIRA_OBS=OFF.
  void RegisterDebugPages(obs::DebugServer* server);

  const ServiceOptions& options() const { return options_; }

 private:
  struct Queued {
    ServiceRequest request;
    Callback done;
    double enqueue_s = 0.0;
  };

  /// Per-tenant metric slice (mira.tenant.<name>.*) — a bounded label
  /// dimension over the service counters. Handles are resolved once per
  /// tenant and cached; the increments themselves are lock-free.
  struct TenantMetrics {
    obs::Counter* admitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* preemptive = nullptr;
    obs::Gauge* priority = nullptr;
    obs::Histogram* latency_ms = nullptr;
  };

  void WorkerLoop();
  /// Runs one dequeued request end to end and invokes its callback.
  void Dispatch(Queued item, size_t depth_at_dispatch, DispatchMode mode);
  /// Logs the finished request (query log gets tenant + priority) and fires
  /// the callback. Returns the query-log entry id (0 when logging is off) so
  /// the caller can pin it to a latency histogram as an exemplar.
  uint64_t Complete(const ServiceRequest& request, ServiceResponse response,
                    const Callback& done);
  size_t QueueDepthLocked() const MIRA_REQUIRES(mu_);
  /// The cached slice for `tenant`, creating it on first sight (the slice
  /// directory is capped at options_.max_tenant_slices; overflow tenants
  /// share "_other").
  TenantMetrics* TenantSlice(const std::string& tenant);
  /// Configured quota priority for `tenant` (default quota's otherwise).
  int TenantPriority(const std::string& tenant) const;

  ServiceOptions options_;
  QueryRunner runner_;
  AdmissionController admission_;

  mutable Mutex mu_;
  CondVar work_cv_;
  bool running_ MIRA_GUARDED_BY(mu_) = false;
  /// Priority -> FIFO of that priority; highest priority dispatches first.
  std::map<int, std::deque<Queued>, std::greater<int>> queues_
      MIRA_GUARDED_BY(mu_);
  size_t inflight_ MIRA_GUARDED_BY(mu_) = 0;
  uint64_t submitted_ MIRA_GUARDED_BY(mu_) = 0;
  uint64_t admitted_count_ MIRA_GUARDED_BY(mu_) = 0;
  uint64_t completed_ MIRA_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ MIRA_GUARDED_BY(mu_) = 0;
  uint64_t evicted_ MIRA_GUARDED_BY(mu_) = 0;
  uint64_t failed_ MIRA_GUARDED_BY(mu_) = 0;
  uint64_t preemptive_ MIRA_GUARDED_BY(mu_) = 0;
  /// Requests currently running in workers, keyed by dispatch sequence.
  uint64_t next_dispatch_id_ MIRA_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, InflightInfo> inflight_requests_ MIRA_GUARDED_BY(mu_);

  /// Separate lock for the tenant-slice directory: slices are resolved from
  /// outside mu_ (resolution touches the registry lock), so watchers of mu_
  /// never wait on registry I/O.
  mutable Mutex tenant_mu_;
  std::map<std::string, std::unique_ptr<TenantMetrics>> tenant_metrics_
      MIRA_GUARDED_BY(tenant_mu_);

  std::vector<std::thread> workers_;

  /// Cached metric handles (mira.service.*) — resolved once, then lock-free.
  struct ServiceMetrics {
    obs::Counter* admitted;
    obs::Counter* completed;
    obs::Counter* errors;
    obs::Counter* rejected_quota;
    obs::Counter* rejected_queue_full;
    obs::Counter* evicted_deadline;
    obs::Counter* degraded_preemptive;
    obs::Gauge* queue_depth;
    obs::Gauge* inflight;
    obs::Gauge* mode_fanout;
    obs::Histogram* queue_ms;
    obs::Histogram* latency_ms;
    /// mira.service.method.<m>.dispatched, indexed by Method enumerator.
    std::array<obs::Counter*, 3> method_dispatched;
  };
  ServiceMetrics metrics_;
};

}  // namespace mira::service

#endif  // MIRA_SERVICE_DISCOVERY_SERVICE_H_
