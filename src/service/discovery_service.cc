#include "service/discovery_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "obs/query_log.h"

namespace mira::service {

namespace {

/// Monotonic clock in seconds (same epoch as Deadline's steady_clock).
double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view DispatchModeToString(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kFanOut:
      return "fanout";
    case DispatchMode::kThroughput:
      return "throughput";
  }
  return "unknown";
}

std::string_view RequestOutcomeToString(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kCompleted:
      return "completed";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kEvicted:
      return "evicted";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

DiscoveryService::DiscoveryService(const discovery::DiscoveryEngine* engine,
                                   ServiceOptions options)
    : DiscoveryService(
          // SearchTraced (not Search) so sampled slow queries get their span
          // tree promoted into /tracez — the exemplar on the latency
          // histogram then resolves to an inspectable trace.
          [engine](const ServiceRequest& request) -> Result<discovery::Ranking> {
            Result<discovery::TracedRanking> traced = engine->SearchTraced(
                request.method, request.query, request.options);
            if (!traced.ok()) return traced.status();
            discovery::TracedRanking out = traced.MoveValue();
            return std::move(out.ranking);
          },
          std::move(options)) {}

DiscoveryService::DiscoveryService(QueryRunner runner, ServiceOptions options)
    : options_(std::move(options)),
      runner_(std::move(runner)),
      admission_(options_.admission) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  metrics_.admitted = &registry.GetCounter("mira.service.admitted");
  metrics_.completed = &registry.GetCounter("mira.service.completed");
  metrics_.errors = &registry.GetCounter("mira.service.errors");
  metrics_.rejected_quota =
      &registry.GetCounter("mira.service.rejected.quota");
  metrics_.rejected_queue_full =
      &registry.GetCounter("mira.service.rejected.queue_full");
  metrics_.evicted_deadline =
      &registry.GetCounter("mira.service.evicted.deadline");
  metrics_.degraded_preemptive =
      &registry.GetCounter("mira.service.degraded.preemptive");
  metrics_.queue_depth = &registry.GetGauge("mira.service.queue_depth");
  metrics_.inflight = &registry.GetGauge("mira.service.inflight");
  metrics_.mode_fanout = &registry.GetGauge("mira.service.mode.fanout");
  metrics_.queue_ms = &registry.GetHistogram("mira.service.queue_ms");
  metrics_.latency_ms = &registry.GetHistogram("mira.service.latency_ms");
  for (discovery::Method method :
       {discovery::Method::kExhaustive, discovery::Method::kAnns,
        discovery::Method::kCts}) {
    metrics_.method_dispatched[static_cast<size_t>(method)] =
        &registry.GetCounter(
            "mira.service.method." +
            ToLower(discovery::MethodToString(method)) + ".dispatched");
  }
}

DiscoveryService::~DiscoveryService() { Stop(); }

size_t DiscoveryService::QueueDepthLocked() const {
  size_t depth = 0;
  for (const auto& [priority, fifo] : queues_) depth += fifo.size();
  return depth;
}

int DiscoveryService::TenantPriority(const std::string& tenant) const {
  const auto it = options_.admission.tenant_quotas.find(tenant);
  return it != options_.admission.tenant_quotas.end()
             ? it->second.priority
             : options_.admission.default_quota.priority;
}

DiscoveryService::TenantMetrics* DiscoveryService::TenantSlice(
    const std::string& tenant) {
  MutexLock lock(tenant_mu_);
  auto it = tenant_metrics_.find(tenant);
  if (it == tenant_metrics_.end()) {
    // Bounded label dimension: past the cap every new tenant shares one
    // overflow slice, so an id flood cannot grow the registry unboundedly.
    std::string name = tenant;
    if (tenant_metrics_.size() >= options_.max_tenant_slices) {
      name = "_other";
      it = tenant_metrics_.find(name);
      if (it != tenant_metrics_.end()) return it->second.get();
    }
    auto slice = std::make_unique<TenantMetrics>();
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    const std::string prefix = "mira.tenant." + name + ".";
    slice->admitted = &registry.GetCounter(prefix + "admitted");
    slice->completed = &registry.GetCounter(prefix + "completed");
    slice->rejected = &registry.GetCounter(prefix + "rejected");
    slice->evicted = &registry.GetCounter(prefix + "evicted");
    slice->failed = &registry.GetCounter(prefix + "failed");
    slice->preemptive = &registry.GetCounter(prefix + "preemptive");
    slice->priority = &registry.GetGauge(prefix + "priority");
    slice->latency_ms = &registry.GetHistogram(prefix + "latency_ms");
    slice->priority->Set(static_cast<double>(TenantPriority(name)));
    it = tenant_metrics_.emplace(std::move(name), std::move(slice)).first;
  }
  return it->second.get();
}

std::vector<DiscoveryService::InflightInfo> DiscoveryService::InflightSnapshot()
    const {
  std::vector<InflightInfo> snapshot;
  MutexLock lock(mu_);
  snapshot.reserve(inflight_requests_.size());
  for (const auto& [id, info] : inflight_requests_) snapshot.push_back(info);
  return snapshot;
}

Status DiscoveryService::Start() {
  {
    MutexLock lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("service: already started");
    }
    running_ = true;
  }
  workers_.reserve(options_.worker_threads);
  for (size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void DiscoveryService::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_ && workers_.empty() && queues_.empty()) return;
    running_ = false;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // Requests admitted but never dispatched complete with kUnavailable: the
  // admission contract ("queued means it will be answered") holds through
  // shutdown.
  std::vector<Queued> drained;
  {
    MutexLock lock(mu_);
    for (auto& [priority, fifo] : queues_) {
      for (Queued& item : fifo) drained.push_back(std::move(item));
    }
    queues_.clear();
    failed_ += drained.size();
  }
  metrics_.queue_depth->Set(0.0);
  for (Queued& item : drained) {
    ServiceResponse response;
    response.status =
        Status::Unavailable("service: shutting down before dispatch");
    response.outcome = RequestOutcome::kFailed;
    metrics_.errors->Increment();
    Complete(item.request, std::move(response), item.done);
  }
}

void DiscoveryService::Submit(ServiceRequest request, Callback done) {
  AdmissionDecision decision;
  const std::string tenant_for_metrics = request.tenant;
  {
    MutexLock lock(mu_);
    ++submitted_;
    // Admission under mu_ keeps the depth the controller sees exact, so the
    // queue bound is strict even with concurrent submitters. Lock order is
    // service mu_ -> controller mu_ (never reversed).
    decision = admission_.Admit(request.tenant, QueueDepthLocked(),
                                MonotonicSeconds());
    if (decision.outcome == AdmitOutcome::kAdmit) {
      if (!running_) {
        decision.status =
            Status::Unavailable("service: not running (Start not called "
                                "or Stop already ran)");
        ++failed_;
      } else {
        ++admitted_count_;
        queues_[decision.priority].push_back(
            Queued{std::move(request), std::move(done), MonotonicSeconds()});
        metrics_.queue_depth->Set(static_cast<double>(QueueDepthLocked()));
      }
    } else {
      ++rejected_;
    }
  }

  if (decision.outcome == AdmitOutcome::kAdmit && decision.status.ok()) {
    metrics_.admitted->Increment();
    // Slice resolution stays outside mu_ (it may take the registry lock);
    // `request` was moved into the queue, hence the saved tenant copy.
    TenantSlice(tenant_for_metrics)->admitted->Increment();
    work_cv_.NotifyAll();
    return;
  }

  // Rejection (or submit-after-stop): the callback runs inline on the
  // submitting thread — no service resources are held by a shed request.
  ServiceResponse response;
  response.status = std::move(decision.status);
  response.outcome = decision.outcome == AdmitOutcome::kAdmit
                         ? RequestOutcome::kFailed  // submit-after-stop
                         : RequestOutcome::kRejected;
  response.retry_after_ms = decision.retry_after_ms;
  if (decision.outcome == AdmitOutcome::kRejectQuota) {
    metrics_.rejected_quota->Increment();
    TenantSlice(tenant_for_metrics)->rejected->Increment();
  } else if (decision.outcome == AdmitOutcome::kRejectQueueFull) {
    metrics_.rejected_queue_full->Increment();
    TenantSlice(tenant_for_metrics)->rejected->Increment();
  } else {
    metrics_.errors->Increment();
    TenantSlice(tenant_for_metrics)->failed->Increment();
  }
  Complete(request, std::move(response), done);
}

ServiceResponse DiscoveryService::Search(ServiceRequest request) {
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool done MIRA_GUARDED_BY(mu) = false;
    ServiceResponse response MIRA_GUARDED_BY(mu);
  };
  Waiter waiter;
  Submit(std::move(request), [&waiter](ServiceResponse response) {
    MutexLock lock(waiter.mu);
    waiter.response = std::move(response);
    waiter.done = true;
    waiter.cv.NotifyAll();
  });
  MutexLock lock(waiter.mu);
  while (!waiter.done) waiter.cv.Wait(lock);
  return std::move(waiter.response);
}

void DiscoveryService::WorkerLoop() {
  for (;;) {
    Queued item;
    size_t depth_before = 0;
    DispatchMode mode = DispatchMode::kThroughput;
    {
      MutexLock lock(mu_);
      for (;;) {
        if (!running_) return;
        depth_before = QueueDepthLocked();
        if (depth_before == 0) {
          work_cv_.Wait(lock);
          continue;
        }
        mode = depth_before <= options_.fanout_queue_threshold
                   ? DispatchMode::kFanOut
                   : DispatchMode::kThroughput;
        if (mode == DispatchMode::kFanOut &&
            inflight_ >= options_.fanout_inflight_limit) {
          // Shallow queue: hold extra workers back so the few running
          // queries keep the engine's intra-query ParallelFor fan-out to
          // themselves. A deepening queue (or a completion) re-wakes us.
          work_cv_.Wait(lock);
          continue;
        }
        break;
      }
      auto it = queues_.begin();
      item = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) queues_.erase(it);
      ++inflight_;
      metrics_.queue_depth->Set(static_cast<double>(QueueDepthLocked()));
      metrics_.inflight->Set(static_cast<double>(inflight_));
      metrics_.mode_fanout->Set(mode == DispatchMode::kFanOut ? 1.0 : 0.0);
    }

    Dispatch(std::move(item), depth_before, mode);

    {
      MutexLock lock(mu_);
      --inflight_;
      metrics_.inflight->Set(static_cast<double>(inflight_));
    }
    // Completions can shift the regime (fan-out slots free up) and unblock
    // held-back workers.
    work_cv_.NotifyAll();
  }
}

void DiscoveryService::Dispatch(Queued item, size_t depth_at_dispatch,
                                DispatchMode mode) {
  ServiceRequest& request = item.request;
  ServiceResponse response;
  response.mode = mode;
  response.queue_ms = (MonotonicSeconds() - item.enqueue_s) * 1000.0;
  metrics_.queue_ms->Record(response.queue_ms);

  // Eviction: a budget that died in the queue never reaches the engine.
  const QueryControl& control = request.options.control;
  if (control.cancel.cancelled() || control.deadline.expired()) {
    response.outcome = RequestOutcome::kEvicted;
    response.status =
        control.cancel.cancelled()
            ? Status::Cancelled("service: request cancelled while queued")
            : Status::DeadlineExceeded(
                  "service: deadline expired in queue (evicted, never ran)");
    {
      MutexLock lock(mu_);
      ++evicted_;
    }
    metrics_.evicted_deadline->Increment();
    TenantSlice(request.tenant)->evicted->Increment();
    Complete(request, std::move(response), item.done);
    return;
  }

  // Fault injection on the dispatch path: an injected error fails this
  // request; an injected delay stalls this worker (deterministic queue
  // pressure for the robustness matrix).
  if (Status injected = failpoint::Trigger("service.dispatch");
      !injected.ok()) {
    response.outcome = RequestOutcome::kFailed;
    response.status = std::move(injected);
    {
      MutexLock lock(mu_);
      ++failed_;
    }
    metrics_.errors->Increment();
    TenantSlice(request.tenant)->failed->Increment();
    Complete(request, std::move(response), item.done);
    return;
  }

  // Pressure ladder: sustained depth means later queued requests are
  // already aging; tighten this one's budget so the engine degrades now
  // instead of blowing its (and everyone else's) deadline.
  const size_t pressure_threshold = std::max<size_t>(
      1, static_cast<size_t>(options_.pressure_degrade_fraction *
                             static_cast<double>(
                                 options_.admission.max_queue_depth)));
  if (depth_at_dispatch >= pressure_threshold) {
    response.preemptively_degraded = true;
    Deadline& deadline = request.options.control.deadline;
    if (deadline.infinite()) {
      deadline = Deadline::After(options_.pressure_budget_ms);
    } else {
      deadline =
          Deadline::After(deadline.remaining_ms() *
                          options_.pressure_budget_scale);
    }
    {
      MutexLock lock(mu_);
      ++preemptive_;
    }
    metrics_.degraded_preemptive->Increment();
    TenantSlice(request.tenant)->preemptive->Increment();
  }

  TenantMetrics* tenant = TenantSlice(request.tenant);
  metrics_.method_dispatched[static_cast<size_t>(request.method)]->Increment();

  // Register in the inflight table so the stuck-query watchdog can see this
  // request (and its budget) while the engine runs it.
  const double run_start_s = MonotonicSeconds();
  uint64_t dispatch_id = 0;
  {
    MutexLock lock(mu_);
    dispatch_id = ++next_dispatch_id_;
    InflightInfo info;
    info.id = dispatch_id;
    info.tenant = request.tenant;
    info.method = request.method;
    info.start_s = run_start_s;
    const Deadline& deadline = request.options.control.deadline;
    info.budget_ms = deadline.infinite() ? 0.0 : deadline.remaining_ms();
    info.preemptively_degraded = response.preemptively_degraded;
    inflight_requests_.emplace(dispatch_id, std::move(info));
  }
  Result<discovery::Ranking> result = runner_(request);
  response.run_ms = (MonotonicSeconds() - run_start_s) * 1000.0;
  {
    MutexLock lock(mu_);
    inflight_requests_.erase(dispatch_id);
  }

  if (result.ok()) {
    response.ranking = std::move(result).ValueOrDie();
    response.outcome = RequestOutcome::kCompleted;
    {
      MutexLock lock(mu_);
      ++completed_;
    }
    metrics_.completed->Increment();
    tenant->completed->Increment();
  } else {
    response.status = result.status();
    response.outcome = RequestOutcome::kFailed;
    {
      MutexLock lock(mu_);
      ++failed_;
    }
    metrics_.errors->Increment();
    tenant->failed->Increment();
  }
  const double total_ms = response.queue_ms + response.run_ms;
  // Complete() records the query log first so its entry id can ride along as
  // the latency exemplar — /metricsz tail buckets then name the request.
  const uint64_t log_id = Complete(request, std::move(response), item.done);
  metrics_.latency_ms->RecordWithExemplar(total_ms, log_id);
  tenant->latency_ms->RecordWithExemplar(total_ms, log_id);
}

uint64_t DiscoveryService::Complete(const ServiceRequest& request,
                                    ServiceResponse response,
                                    const Callback& done) {
  uint64_t log_id = 0;
  if (options_.record_query_log) {
    obs::QueryLogEntry entry;
    entry.SetMethod(discovery::MethodToString(request.method));
    entry.SetTenant(request.tenant);
    entry.priority = static_cast<int8_t>(TenantPriority(request.tenant));
    entry.ok = response.status.ok();
    entry.k = static_cast<uint32_t>(request.options.top_k);
    entry.result_count = static_cast<uint32_t>(response.ranking.size());
    entry.duration_ms = response.queue_ms + response.run_ms;
    entry.degraded = response.ranking.degraded;
    entry.partial = response.ranking.partial;
    entry.shed = response.outcome == RequestOutcome::kRejected;
    entry.evicted = response.outcome == RequestOutcome::kEvicted;
    entry.preemptive = response.preemptively_degraded;
    const Deadline& deadline = request.options.control.deadline;
    if (!deadline.infinite()) {
      entry.budget_consumed = 1.0 - deadline.FractionRemaining();
    }
    log_id = obs::QueryLog::Global().Record(entry);
  }
  if (done) done(std::move(response));
  return log_id;
}

DiscoveryService::Stats DiscoveryService::GetStats() const {
  Stats stats;
  MutexLock lock(mu_);
  stats.queue_depth = QueueDepthLocked();
  stats.inflight = inflight_;
  stats.submitted = submitted_;
  stats.admitted = admitted_count_;
  stats.completed = completed_;
  stats.rejected = rejected_;
  stats.evicted = evicted_;
  stats.failed = failed_;
  stats.preemptively_degraded = preemptive_;
  stats.mode = stats.queue_depth <= options_.fanout_queue_threshold
                   ? DispatchMode::kFanOut
                   : DispatchMode::kThroughput;
  return stats;
}

std::vector<AdmissionController::TenantState> DiscoveryService::TenantStates()
    const {
  return admission_.TenantStates(MonotonicSeconds());
}

std::string DiscoveryService::RenderServicez() const {
  const Stats stats = GetStats();
  std::string body;
  body.append("service\n");
  body.append(StrFormat("  queue_depth: %zu / %zu\n", stats.queue_depth,
                        options_.admission.max_queue_depth));
  body.append(StrFormat("  inflight: %zu / %zu workers\n", stats.inflight,
                        options_.worker_threads));
  body.append(StrFormat("  mode: %s\n",
                        std::string(DispatchModeToString(stats.mode)).c_str()));
  body.append(StrFormat("  submitted: %llu\n",
                        static_cast<unsigned long long>(stats.submitted)));
  body.append(StrFormat("  admitted: %llu\n",
                        static_cast<unsigned long long>(stats.admitted)));
  body.append(StrFormat("  completed: %llu\n",
                        static_cast<unsigned long long>(stats.completed)));
  body.append(StrFormat("  rejected (shed): %llu\n",
                        static_cast<unsigned long long>(stats.rejected)));
  body.append(StrFormat("  evicted (deadline in queue): %llu\n",
                        static_cast<unsigned long long>(stats.evicted)));
  body.append(StrFormat("  failed: %llu\n",
                        static_cast<unsigned long long>(stats.failed)));
  body.append(
      StrFormat("  preemptively_degraded: %llu\n",
                static_cast<unsigned long long>(stats.preemptively_degraded)));
  body.append("tenants\n");
  std::vector<AdmissionController::TenantState> tenants = TenantStates();
  if (tenants.empty()) body.append("  (none seen yet)\n");
  for (const AdmissionController::TenantState& tenant : tenants) {
    body.append(StrFormat(
        "  %s: tokens %.1f/%.0f refill %.1f qps priority %d admitted %llu "
        "rejected %llu\n",
        tenant.tenant.c_str(), tenant.tokens, tenant.burst, tenant.refill_qps,
        tenant.priority, static_cast<unsigned long long>(tenant.admitted),
        static_cast<unsigned long long>(tenant.rejected)));
  }
  return body;
}

void DiscoveryService::RegisterDebugPages(obs::DebugServer* server) {
  if (server == nullptr) return;
  server->AddPage("/servicez",
                  "service queue, per-tenant quotas, shed/evict counters",
                  [this] { return RenderServicez(); });
}

}  // namespace mira::service
