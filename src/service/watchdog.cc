#include "service/watchdog.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/cpu_profiler.h"

namespace mira::service {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StuckQueryWatchdog::StuckQueryWatchdog(SnapshotFn snapshot, Options options)
    : options_(options), snapshot_(std::move(snapshot)) {
  if (options_.interval_s <= 0.0) options_.interval_s = 0.5;
  options_.overdue_factor = std::max(1.0, options_.overdue_factor);
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  scans_metric_ = &registry.GetCounter("mira.watchdog.scans");
  stuck_metric_ = &registry.GetCounter("mira.watchdog.stuck");
  stuck_now_metric_ = &registry.GetGauge("mira.watchdog.stuck_inflight");
}

StuckQueryWatchdog::~StuckQueryWatchdog() { Stop(); }

void StuckQueryWatchdog::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void StuckQueryWatchdog::Stop() {
  std::thread worker;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    worker = std::move(thread_);
  }
  wake_.NotifyAll();
  worker.join();
}

bool StuckQueryWatchdog::running() const {
  MutexLock lock(mu_);
  return running_;
}

uint64_t StuckQueryWatchdog::scans() const {
  MutexLock lock(mu_);
  return scans_;
}

uint64_t StuckQueryWatchdog::total_stuck() const {
  MutexLock lock(mu_);
  return total_stuck_;
}

std::vector<StuckReport> StuckQueryWatchdog::RecentReports() const {
  MutexLock lock(mu_);
  return {reports_.begin(), reports_.end()};
}

size_t StuckQueryWatchdog::ScanOnce(double now_s) {
  const std::vector<DiscoveryService::InflightInfo> inflight = snapshot_();

  // Classify outside the lock; only the report bookkeeping needs it.
  std::vector<StuckReport> fresh;
  std::set<uint64_t> live_stuck;
  for (const DiscoveryService::InflightInfo& info : inflight) {
    const double running_ms = (now_s - info.start_s) * 1000.0;
    const double budget_ms =
        info.budget_ms > 0.0 ? info.budget_ms : options_.no_deadline_budget_ms;
    const double threshold_ms =
        std::max(options_.min_overdue_ms, options_.overdue_factor * budget_ms);
    if (running_ms <= threshold_ms) continue;
    live_stuck.insert(info.id);
    StuckReport report;
    report.request_id = info.id;
    report.tenant = info.tenant;
    report.method = std::string(discovery::MethodToString(info.method));
    report.detected_at_s = now_s;
    report.running_ms = running_ms;
    report.budget_ms = info.budget_ms;
    fresh.push_back(std::move(report));
  }

  size_t new_offenders = 0;
  {
    MutexLock lock(mu_);
    ++scans_;
    // A dispatch id that left the inflight table is done; forget it so the
    // reported-set stays bounded by actual concurrency.
    for (auto it = reported_.begin(); it != reported_.end();) {
      it = live_stuck.count(*it) != 0 ? std::next(it) : reported_.erase(it);
    }
    std::vector<StuckReport> unreported;
    for (StuckReport& report : fresh) {
      if (reported_.count(report.request_id) == 0) {
        unreported.push_back(std::move(report));
      }
    }
    fresh = std::move(unreported);
    new_offenders = fresh.size();
  }
  stuck_now_metric_->Set(static_cast<double>(live_stuck.size()));
  scans_metric_->Increment();
  if (new_offenders == 0) return 0;

  // One profile slice per scan (not per offender): the profiler is process
  // wide, so a single capture covers every wedged worker at once. Failure —
  // profiler busy or compiled out — degrades to a report without stacks.
  std::string folded;
  if (options_.profile_on_stuck) {
    obs::CpuProfileOptions profile_options;
    profile_options.duration_seconds = options_.profile_seconds;
    obs::CpuProfile profile;
    if (CollectCpuProfile(profile_options, &profile).ok()) {
      folded = std::move(profile.folded);
    }
  }

  for (StuckReport& report : fresh) {
    report.profile_folded = folded;
    MIRA_LOG_WARNING() << "watchdog: request " << report.request_id
                       << " (tenant " << report.tenant << ", "
                       << report.method << ") stuck: running "
                       << report.running_ms << " ms against budget "
                       << report.budget_ms << " ms";
    stuck_metric_->Increment();
  }

  {
    MutexLock lock(mu_);
    total_stuck_ += new_offenders;
    for (StuckReport& report : fresh) {
      reported_.insert(report.request_id);
      reports_.push_back(std::move(report));
    }
    while (reports_.size() > options_.max_reports) reports_.pop_front();
  }
  return new_offenders;
}

void StuckQueryWatchdog::Loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.interval_s));
      while (!stop_requested_) {
        if (wake_.WaitUntil(lock, deadline)) break;
      }
      if (stop_requested_) return;
    }
    ScanOnce(MonotonicSeconds());
  }
}

}  // namespace mira::service
