#ifndef MIRA_SERVICE_MONITOR_H_
#define MIRA_SERVICE_MONITOR_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/debug_server.h"
#include "obs/slo.h"
#include "obs/windowed.h"
#include "service/discovery_service.h"
#include "service/watchdog.h"

namespace mira::service {

/// Self-monitoring bundle for one DiscoveryService: a WindowedMetrics ticker
/// over the service and tenant counters, an SloEngine evaluating the default
/// service objectives (accepted-latency p99 and shed fraction, plus one shed
/// objective per configured tenant), and a StuckQueryWatchdog over the
/// service's inflight table. Surfaces as the /slozz, /slozz.json and
/// /tenantz debugz pages.
///
/// Construction wires everything up; Start()/Stop() run the background
/// threads. Tests drive the pieces deterministically through windows()/slo()
/// (Step) and watchdog() (ScanOnce) without starting anything.
class ServiceMonitor {
 public:
  struct Options {
    /// Window engine shape. Defaults suit a long-running server; benches use
    /// sub-second buckets so SLOs react within the run.
    double bucket_seconds = 5.0;
    size_t ring_buckets = 64;
    double eval_interval_s = 1.0;

    /// Shared multi-window alerting shape for the default objectives.
    double fast_window_s = 60.0;
    double slow_window_s = 300.0;
    double warn_burn = 1.0;
    double breach_burn = 10.0;

    /// "p99 of accepted-request latency ≤ threshold".
    double latency_threshold_ms = 50.0;
    double latency_target_fraction = 0.01;
    /// "fraction of submissions shed at admission ≤ target".
    double shed_target_fraction = 0.05;

    /// Tenants that get their own shed-fraction objective and windowed
    /// rates on /tenantz (beyond the cumulative counters every seen tenant
    /// gets). Tracked counters must exist by name, so this is config, not
    /// discovery.
    std::vector<std::string> tenants;

    bool enable_watchdog = true;
    StuckQueryWatchdog::Options watchdog;
  };

  /// `service` is not owned and must outlive the monitor.
  ServiceMonitor(DiscoveryService* service, Options options);
  ~ServiceMonitor();

  ServiceMonitor(const ServiceMonitor&) = delete;
  ServiceMonitor& operator=(const ServiceMonitor&) = delete;

  /// Starts the SLO evaluation thread (which ticks the windows) and the
  /// watchdog. Stop() is idempotent and runs from the destructor.
  void Start();
  void Stop();

  obs::WindowedMetrics& windows() { return windows_; }
  obs::SloEngine& slo() { return slo_; }
  /// Null when Options::enable_watchdog was false.
  StuckQueryWatchdog* watchdog() { return watchdog_.get(); }

  /// /slozz — objective states, burn rates, transition history, watchdog
  /// reports (plain text).
  std::string RenderSlozz() const;
  /// /slozz.json — the same, machine-readable (its own page because debugz
  /// renderers receive no query parameters).
  std::string SlozzJson() const;
  /// /tenantz — per-tenant admission state, cumulative slice counters, and
  /// windowed rates for the configured tenants.
  std::string RenderTenantz() const;

  /// Registers the three pages. No-op under MIRA_OBS=OFF.
  void RegisterDebugPages(obs::DebugServer* server);

  const Options& options() const { return options_; }

 private:
  Options options_;
  DiscoveryService* service_;
  obs::WindowedMetrics windows_;
  obs::SloEngine slo_;
  std::unique_ptr<StuckQueryWatchdog> watchdog_;
};

}  // namespace mira::service

#endif  // MIRA_SERVICE_MONITOR_H_
