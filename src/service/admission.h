#ifndef MIRA_SERVICE_ADMISSION_H_
#define MIRA_SERVICE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/sync.h"

namespace mira::service {

/// Per-tenant admission budget: a token bucket (sustained rate + burst) plus
/// a scheduling priority for requests that do get in.
struct TenantQuota {
  /// Sustained admissions per second (the bucket refill rate).
  double refill_qps = 50.0;
  /// Bucket capacity: how many requests may arrive back-to-back before the
  /// rate limit bites.
  double burst = 10.0;
  /// Dispatch priority of admitted requests; higher runs first.
  int priority = 0;
};

struct AdmissionOptions {
  /// Upper bound on queued (admitted but not yet dispatched) requests across
  /// all tenants. Admissions beyond it are rejected, never queued.
  size_t max_queue_depth = 64;
  /// Quota for tenants without an explicit entry in `tenant_quotas`.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Source of the retry-after hints attached to rejections: a rejected
  /// caller that sleeps `AdmissionDecision::retry_after_ms` behaves like the
  /// first backoff step of this policy.
  RetryOptions retry;
};

/// Classic token bucket over a caller-supplied monotonic clock (seconds).
/// Not internally synchronized — AdmissionController serializes access under
/// its own lock, and tests drive the clock by hand.
class TokenBucket {
 public:
  TokenBucket(double refill_qps, double burst);

  /// Takes one token if available (refilling for elapsed time first).
  bool TryAcquire(double now_s);

  /// Seconds until a full token will have accrued; 0 when one is available.
  double SecondsUntilToken(double now_s) const;

  /// Current (refilled) token count.
  double Tokens(double now_s) const;

 private:
  double RefilledTokens(double now_s) const;

  double refill_qps_;
  double burst_;
  double tokens_;
  double last_refill_s_;
};

enum class AdmitOutcome {
  kAdmit = 0,
  /// The tenant's token bucket is empty.
  kRejectQuota,
  /// The shared request queue is at max_queue_depth.
  kRejectQueueFull,
};

struct AdmissionDecision {
  AdmitOutcome outcome = AdmitOutcome::kAdmit;
  /// Dispatch priority of the admitting tenant (meaningful on kAdmit).
  int priority = 0;
  /// Suggested client backoff before re-submitting (meaningful on reject):
  /// for quota rejections, when the bucket will hold a token again; never
  /// below the first RetryPolicy backoff step so retry storms stay jittered.
  double retry_after_ms = 0.0;
  /// OK on admit; kResourceExhausted (or a failpoint-injected code) on
  /// rejection, message carrying the retry-after hint.
  Status status = Status::OK();
};

/// Decides, per request, whether the service takes it: the `service.admit`
/// failpoint (forced shed) first, then queue capacity, then the tenant's
/// token bucket. Thread-safe; clock injected per call for testability.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// `queue_depth` is the current admitted-but-undispatched count; `now_s`
  /// a monotonic clock reading in seconds.
  AdmissionDecision Admit(const std::string& tenant, size_t queue_depth,
                          double now_s);

  /// Point-in-time per-tenant quota view for /servicez.
  struct TenantState {
    std::string tenant;
    double tokens = 0.0;
    double burst = 0.0;
    double refill_qps = 0.0;
    int priority = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
  };
  std::vector<TenantState> TenantStates(double now_s) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  const TenantQuota& QuotaFor(const std::string& tenant) const;

  AdmissionOptions options_;
  RetryPolicy retry_policy_;

  struct Bucket {
    TokenBucket bucket;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
  };
  mutable Mutex mu_;
  std::map<std::string, Bucket> buckets_ MIRA_GUARDED_BY(mu_);
};

}  // namespace mira::service

#endif  // MIRA_SERVICE_ADMISSION_H_
