#include "text/corpus_stats.h"

#include <cmath>
#include <unordered_set>

namespace mira::text {

TermBag CorpusStats::AddDocument(const std::vector<std::string>& tokens) {
  TermBag bag;
  std::unordered_set<int32_t> seen;
  for (const auto& token : tokens) {
    int32_t id = vocab_.AddToken(token);
    if (static_cast<size_t>(id) >= doc_freq_.size()) {
      doc_freq_.resize(id + 1, 0);
    }
    bag.Add(id);
    seen.insert(id);
  }
  for (int32_t id : seen) ++doc_freq_[id];
  ++num_documents_;
  total_length_ += bag.length;
  return bag;
}

int64_t CorpusStats::DocumentFrequency(int32_t token_id) const {
  if (token_id < 0 || static_cast<size_t>(token_id) >= doc_freq_.size()) {
    return 0;
  }
  return doc_freq_[token_id];
}

double CorpusStats::Idf(int32_t token_id) const {
  double df = static_cast<double>(DocumentFrequency(token_id));
  double n = static_cast<double>(num_documents_);
  return std::log((n - df + 0.5) / (df + 0.5) + 1.0);
}

double CorpusStats::CollectionProb(int32_t token_id) const {
  double count = 0.0;
  if (token_id >= 0 && static_cast<size_t>(token_id) < vocab_.size()) {
    count = static_cast<double>(vocab_.GetCount(token_id));
  }
  double total = static_cast<double>(vocab_.total_count());
  double vsize = static_cast<double>(vocab_.size());
  return (count + 1.0) / (total + vsize + 1.0);
}

double CorpusStats::DirichletLogLikelihood(
    const std::vector<int32_t>& query_ids, const TermBag& doc,
    double mu) const {
  double ll = 0.0;
  double denom = static_cast<double>(doc.length) + mu;
  for (int32_t id : query_ids) {
    double tf = static_cast<double>(doc.Count(id));
    double pc = CollectionProb(id);
    ll += std::log((tf + mu * pc) / denom);
  }
  return ll;
}

double CorpusStats::Bm25(const std::vector<int32_t>& query_ids,
                         const TermBag& doc, double k1, double b) const {
  double score = 0.0;
  double avgdl = average_document_length();
  if (avgdl <= 0.0) avgdl = 1.0;
  double len_norm = k1 * (1.0 - b + b * static_cast<double>(doc.length) / avgdl);
  for (int32_t id : query_ids) {
    double tf = static_cast<double>(doc.Count(id));
    if (tf <= 0.0) continue;
    score += Idf(id) * tf * (k1 + 1.0) / (tf + len_norm);
  }
  return score;
}

}  // namespace mira::text
