#include "text/tokenizer.h"

#include <array>
#include <cctype>

#include "common/string_util.h"

namespace mira::text {

namespace {

// Compact English stopword list; enough for IR statistics, deliberately not
// exhaustive.
constexpr std::array<std::string_view, 36> kStopwords = {
    "a",    "an",   "and",  "are", "as",   "at",   "be",   "by",   "for",
    "from", "has",  "have", "he",  "in",   "is",   "it",   "its",  "of",
    "on",   "or",   "that", "the", "their", "them", "then", "there", "these",
    "they", "this", "to",   "was", "were", "which", "will", "with", "you"};

inline bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c));
}

// '-', '_', '.' join a token when both neighbors are alphanumeric.
inline bool IsJoiner(char c) { return c == '-' || c == '_' || c == '.'; }

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

bool Tokenizer::IsStopword(std::string_view token) {
  for (auto sw : kStopwords) {
    if (token == sw) return true;
  }
  return false;
}

bool Tokenizer::KeepToken(const std::string& token) const {
  if (token.size() < options_.min_token_length) return false;
  if (!options_.keep_numbers && LooksNumeric(token)) return false;
  if (options_.remove_stopwords && IsStopword(token)) return false;
  return true;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (IsWordChar(c)) {
      current.push_back(options_.lowercase
                            ? static_cast<char>(std::tolower(
                                  static_cast<unsigned char>(c)))
                            : c);
    } else if (IsJoiner(c) && !current.empty() && i + 1 < text.size() &&
               IsWordChar(text[i + 1])) {
      current.push_back(c);
    } else if (!current.empty()) {
      if (KeepToken(current)) tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty() && KeepToken(current)) tokens.push_back(current);
  return tokens;
}

size_t Tokenizer::CountTokens(std::string_view text) const {
  return Tokenize(text).size();
}

std::vector<std::string> CharNgrams(std::string_view token, size_t n) {
  std::vector<std::string> grams;
  if (n == 0) return grams;
  std::string padded;
  padded.reserve(token.size() + 2);
  padded.push_back('^');
  padded.append(token);
  padded.push_back('$');
  if (padded.size() < n) {
    grams.push_back(padded);
    return grams;
  }
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.emplace_back(padded.substr(i, n));
  }
  return grams;
}

}  // namespace mira::text
