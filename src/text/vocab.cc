#include "text/vocab.h"

#include "common/logging.h"

namespace mira::text {

int32_t Vocab::AddToken(std::string_view token) {
  auto it = ids_.find(std::string(token));
  int32_t id;
  if (it == ids_.end()) {
    id = static_cast<int32_t>(tokens_.size());
    tokens_.emplace_back(token);
    counts_.push_back(0);
    ids_.emplace(tokens_.back(), id);
  } else {
    id = it->second;
  }
  ++counts_[id];
  ++total_count_;
  return id;
}

int32_t Vocab::GetId(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kUnknownToken : it->second;
}

const std::string& Vocab::GetToken(int32_t id) const {
  MIRA_CHECK(id >= 0 && static_cast<size_t>(id) < tokens_.size());
  return tokens_[id];
}

int64_t Vocab::GetCount(int32_t id) const {
  MIRA_CHECK(id >= 0 && static_cast<size_t>(id) < counts_.size());
  return counts_[id];
}

}  // namespace mira::text
