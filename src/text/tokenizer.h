#ifndef MIRA_TEXT_TOKENIZER_H_
#define MIRA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace mira::text {

/// Tokenization options.
struct TokenizerOptions {
  /// Lowercase all tokens (default on; embeddings and IR statistics are
  /// case-insensitive throughout the paper's pipeline).
  bool lowercase = true;
  /// Drop a small English stopword list.
  bool remove_stopwords = false;
  /// Keep tokens that are purely numeric. The paper stresses that numeric
  /// cells matter (26.9% of WikiTables values, 55.3% of EDP values).
  bool keep_numbers = true;
  /// Minimum token length in characters; shorter tokens are dropped.
  size_t min_token_length = 1;
};

/// Splits text into word tokens on non-alphanumeric boundaries. '-', '_' and
/// '.' inside a token are treated as part of it when flanked by alphanumerics
/// ("covid-19", "3.14", "all-mpnet-base-v2" stay single tokens).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes a single string.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Tokenizes and joins nothing: token count only (cheaper than Tokenize
  /// when only the length is needed, e.g. query-length classification).
  size_t CountTokens(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

  /// True if the token is in the built-in English stopword list.
  static bool IsStopword(std::string_view token);

 private:
  bool KeepToken(const std::string& token) const;

  TokenizerOptions options_;
};

/// Extracts padded character n-grams of size n from a token, e.g. n = 3 on
/// "cat" -> {"^ca", "cat", "at$"}. Used by the hashed token embedder.
std::vector<std::string> CharNgrams(std::string_view token, size_t n);

}  // namespace mira::text

#endif  // MIRA_TEXT_TOKENIZER_H_
