#ifndef MIRA_TEXT_CORPUS_STATS_H_
#define MIRA_TEXT_CORPUS_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/vocab.h"

namespace mira::text {

/// Bag-of-words form of one document (or one document *field*).
struct TermBag {
  std::unordered_map<int32_t, int32_t> counts;
  int64_t length = 0;

  void Add(int32_t token_id) {
    ++counts[token_id];
    ++length;
  }
  int32_t Count(int32_t token_id) const {
    auto it = counts.find(token_id);
    return it == counts.end() ? 0 : it->second;
  }
};

/// Collection-level term statistics shared by the classic-IR baselines (MDR's
/// language models, WS's features, BM25). Build once per corpus; thereafter
/// read-only and safe to share across threads.
class CorpusStats {
 public:
  /// Registers a document's tokens; returns its TermBag (ids assigned via the
  /// internal vocabulary).
  TermBag AddDocument(const std::vector<std::string>& tokens);

  /// Number of documents containing the token at least once.
  int64_t DocumentFrequency(int32_t token_id) const;

  /// Smoothed inverse document frequency: ln((N - df + 0.5)/(df + 0.5) + 1)
  /// (the BM25+ variant, always positive).
  double Idf(int32_t token_id) const;

  /// Collection language-model probability p(t|C) with add-one smoothing.
  double CollectionProb(int32_t token_id) const;

  int64_t num_documents() const { return num_documents_; }
  double average_document_length() const {
    return num_documents_ ? static_cast<double>(total_length_) /
                                static_cast<double>(num_documents_)
                          : 0.0;
  }

  Vocab& vocab() { return vocab_; }
  const Vocab& vocab() const { return vocab_; }

  /// Dirichlet-smoothed query log-likelihood of `query_ids` under the
  /// document `doc`: sum_t log((tf + mu p(t|C)) / (|d| + mu)).
  double DirichletLogLikelihood(const std::vector<int32_t>& query_ids,
                                const TermBag& doc, double mu) const;

  /// Okapi BM25 score of `query_ids` against `doc`.
  double Bm25(const std::vector<int32_t>& query_ids, const TermBag& doc,
              double k1 = 1.2, double b = 0.75) const;

 private:
  Vocab vocab_;
  std::vector<int64_t> doc_freq_;
  int64_t num_documents_ = 0;
  int64_t total_length_ = 0;
};

}  // namespace mira::text

#endif  // MIRA_TEXT_CORPUS_STATS_H_
