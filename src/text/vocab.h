#ifndef MIRA_TEXT_VOCAB_H_
#define MIRA_TEXT_VOCAB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mira::text {

/// Sentinel for "token not in vocabulary".
inline constexpr int32_t kUnknownToken = -1;

/// Bidirectional token <-> dense-id mapping with frequency counts.
class Vocab {
 public:
  /// Adds (or finds) a token, incrementing its count. Returns its id.
  int32_t AddToken(std::string_view token);

  /// Id of a token or kUnknownToken.
  int32_t GetId(std::string_view token) const;

  /// Token text for an id; aborts on out-of-range.
  const std::string& GetToken(int32_t id) const;

  /// Occurrence count accumulated through AddToken.
  int64_t GetCount(int32_t id) const;

  size_t size() const { return tokens_.size(); }
  int64_t total_count() const { return total_count_; }

 private:
  std::unordered_map<std::string, int32_t> ids_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
};

}  // namespace mira::text

#endif  // MIRA_TEXT_VOCAB_H_
