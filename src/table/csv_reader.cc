#include "table/csv_reader.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mira::table {

namespace {

// Splits CSV text into records of fields, honoring quoting.
Result<std::vector<std::vector<std::string>>> SplitRecords(
    std::string_view text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current_record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;

  auto end_field = [&]() {
    if (options.trim_fields && !field_was_quoted) {
      field = std::string(Trim(field));
    }
    current_record.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_record = [&]() {
    end_field();
    // Skip fully-empty records (e.g. trailing newline).
    if (current_record.size() != 1 || !current_record[0].empty()) {
      records.push_back(std::move(current_record));
    }
    current_record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      field_was_quoted = true;
    } else if (c == options.delimiter) {
      end_field();
    } else if (c == '\r') {
      // Swallow; \r\n handled by the \n branch.
    } else if (c == '\n') {
      end_record();
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) return Status::InvalidArgument("csv: unterminated quote");
  if (!field.empty() || !current_record.empty()) end_record();
  return records;
}

}  // namespace

Result<Relation> ParseCsv(std::string_view text, std::string relation_name,
                          const CsvOptions& options) {
  MIRA_ASSIGN_OR_RETURN(auto records, SplitRecords(text, options));
  Relation relation;
  relation.name = std::move(relation_name);
  if (records.empty()) return relation;

  size_t first_data = 0;
  if (options.has_header) {
    relation.schema = records[0];
    first_data = 1;
  } else {
    relation.schema.reserve(records[0].size());
    for (size_t c = 0; c < records[0].size(); ++c) {
      relation.schema.push_back(StrFormat("col%zu", c));
    }
  }
  for (size_t r = first_data; r < records.size(); ++r) {
    MIRA_RETURN_NOT_OK(relation.AddRow(std::move(records[r])));
  }
  return relation;
}

Result<Relation> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Name the relation after the file stem.
  std::string stem = path;
  if (size_t slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (size_t dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return ParseCsv(buffer.str(), stem, options);
}

}  // namespace mira::table
