#ifndef MIRA_TABLE_RELATION_H_
#define MIRA_TABLE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mira::table {

/// A relation in the paper's data model (§3): a named set of tuples sharing
/// one schema, enriched with the contextual elements WikiTables carries
/// (page/section titles, caption, description) that the multi-field baselines
/// rank on. Cells are strings — embeddings are computed from their text,
/// numeric or not.
struct Relation {
  std::string name;
  /// Attribute names; every row has exactly schema.size() cells.
  std::vector<std::string> schema;
  std::vector<std::vector<std::string>> rows;

  // WikiTables-style context fields.
  std::string page_title;
  std::string section_title;
  std::string caption;
  std::string description;

  size_t num_columns() const { return schema.size(); }
  size_t num_rows() const { return rows.size(); }
  size_t num_cells() const { return rows.size() * schema.size(); }

  /// Appends a row; fails unless it has exactly one cell per schema column.
  [[nodiscard]] Status AddRow(std::vector<std::string> row);

  /// Cell accessor (row-major); aborts out of range.
  const std::string& Cell(size_t row, size_t col) const;

  /// All cell values flattened row-major — the unit the encoder embeds.
  std::vector<std::string> FlattenedCells() const;

  /// Schema + caption + all cells joined with spaces; the "single column per
  /// table" consolidation used for WikiTables (§5 [Datasets]).
  std::string ConsolidatedText() const;

  /// Fraction of cells that look numeric (diagnostic; the paper reports
  /// 26.9% for WikiTables and 55.3% for EDP).
  double NumericCellFraction() const;
};

/// Dense id of a relation inside a federation.
using RelationId = uint32_t;

/// Dense id of a dataset inside a federation.
using DatasetId = uint32_t;

/// Sentinel: relation not assigned to any explicit dataset (it is then its
/// own implicit singleton dataset, the paper's primary setting).
inline constexpr DatasetId kNoDataset = static_cast<DatasetId>(-1);

/// A federation (§3): a finite set of datasets, each a set of relations.
/// The paper primarily treats dataset == single relation; the optional
/// dataset grouping here realizes the multi-relation generalization it
/// mentions ("the framework can be generalized to accommodate multi-relation
/// datasets").
class Federation {
 public:
  RelationId AddRelation(Relation relation);

  /// Registers a named multi-relation dataset.
  DatasetId AddDataset(std::string name);

  /// Assigns a relation to a dataset; fails on invalid ids.
  [[nodiscard]] Status AssignToDataset(RelationId relation, DatasetId dataset);

  /// Dataset of a relation; kNoDataset when unassigned (singleton).
  DatasetId DatasetOf(RelationId relation) const;

  const std::string& DatasetName(DatasetId dataset) const;
  size_t num_datasets() const { return dataset_names_.size(); }

  /// Relations belonging to a dataset, in id order.
  std::vector<RelationId> RelationsOf(DatasetId dataset) const;

  const Relation& relation(RelationId id) const;
  size_t size() const { return relations_.size(); }
  bool empty() const { return relations_.empty(); }

  /// Total cell count across relations.
  size_t TotalCells() const;

  const std::vector<Relation>& relations() const { return relations_; }

  /// Deterministic subset with ~fraction of the relations (the paper's
  /// SD/MD/LD = 10%/50%/100% partitions). Keeps the first ceil(fraction * n)
  /// relations of a seeded shuffle, preserving original relative order, and
  /// returns the kept original RelationIds through `kept` if non-null.
  Federation Subset(double fraction, uint64_t seed,
                    std::vector<RelationId>* kept = nullptr) const;

 private:
  std::vector<Relation> relations_;
  std::vector<std::string> dataset_names_;
  /// Parallel to relations_; kNoDataset for singletons.
  std::vector<DatasetId> relation_dataset_;
};

}  // namespace mira::table

#endif  // MIRA_TABLE_RELATION_H_
