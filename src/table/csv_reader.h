#ifndef MIRA_TABLE_CSV_READER_H_
#define MIRA_TABLE_CSV_READER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "table/relation.h"

namespace mira::table {

/// RFC-4180-ish CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// First record is the schema; otherwise columns are named col0, col1, ...
  bool has_header = true;
  /// Trim ASCII whitespace around unquoted fields.
  bool trim_fields = true;
};

/// Parses CSV text into a Relation. Supports quoted fields with embedded
/// delimiters, doubled quotes ("") and embedded newlines. Rows with a cell
/// count differing from the header are rejected.
[[nodiscard]] Result<Relation> ParseCsv(std::string_view text, std::string relation_name,
                          const CsvOptions& options = {});

/// Reads and parses a CSV file; the relation is named after the file stem.
[[nodiscard]] Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

}  // namespace mira::table

#endif  // MIRA_TABLE_CSV_READER_H_
