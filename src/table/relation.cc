#include "table/relation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace mira::table {

Status Relation::AddRow(std::vector<std::string> row) {
  if (row.size() != schema.size()) {
    return Status::InvalidArgument(
        StrFormat("relation '%s': row with %zu cells, schema has %zu",
                  name.c_str(), row.size(), schema.size()));
  }
  rows.push_back(std::move(row));
  return Status::OK();
}

const std::string& Relation::Cell(size_t row, size_t col) const {
  MIRA_CHECK(row < rows.size() && col < schema.size());
  return rows[row][col];
}

std::vector<std::string> Relation::FlattenedCells() const {
  std::vector<std::string> cells;
  cells.reserve(num_cells());
  for (const auto& row : rows) {
    for (const auto& cell : row) cells.push_back(cell);
  }
  return cells;
}

std::string Relation::ConsolidatedText() const {
  std::string out = caption.empty() ? name : caption;
  for (const auto& column : schema) {
    out.push_back(' ');
    out.append(column);
  }
  for (const auto& row : rows) {
    for (const auto& cell : row) {
      out.push_back(' ');
      out.append(cell);
    }
  }
  return out;
}

double Relation::NumericCellFraction() const {
  size_t numeric = 0;
  size_t total = 0;
  for (const auto& row : rows) {
    for (const auto& cell : row) {
      ++total;
      if (LooksNumeric(cell)) ++numeric;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(numeric) / total;
}

RelationId Federation::AddRelation(Relation relation) {
  relations_.push_back(std::move(relation));
  relation_dataset_.push_back(kNoDataset);
  return static_cast<RelationId>(relations_.size()) - 1;
}

DatasetId Federation::AddDataset(std::string name) {
  dataset_names_.push_back(std::move(name));
  return static_cast<DatasetId>(dataset_names_.size()) - 1;
}

Status Federation::AssignToDataset(RelationId relation, DatasetId dataset) {
  if (relation >= relations_.size()) {
    return Status::InvalidArgument(
        StrFormat("federation: relation %u out of range", relation));
  }
  if (dataset >= dataset_names_.size()) {
    return Status::InvalidArgument(
        StrFormat("federation: dataset %u out of range", dataset));
  }
  relation_dataset_[relation] = dataset;
  return Status::OK();
}

DatasetId Federation::DatasetOf(RelationId relation) const {
  MIRA_CHECK(relation < relation_dataset_.size());
  return relation_dataset_[relation];
}

const std::string& Federation::DatasetName(DatasetId dataset) const {
  MIRA_CHECK(dataset < dataset_names_.size());
  return dataset_names_[dataset];
}

std::vector<RelationId> Federation::RelationsOf(DatasetId dataset) const {
  std::vector<RelationId> out;
  for (RelationId r = 0; r < relation_dataset_.size(); ++r) {
    if (relation_dataset_[r] == dataset) out.push_back(r);
  }
  return out;
}

const Relation& Federation::relation(RelationId id) const {
  MIRA_CHECK(id < relations_.size());
  return relations_[id];
}

size_t Federation::TotalCells() const {
  size_t total = 0;
  for (const auto& r : relations_) total += r.num_cells();
  return total;
}

Federation Federation::Subset(double fraction, uint64_t seed,
                              std::vector<RelationId>* kept) const {
  MIRA_CHECK(fraction > 0.0 && fraction <= 1.0);
  size_t keep = static_cast<size_t>(
      std::max<double>(1.0, fraction * static_cast<double>(relations_.size()) + 0.5));
  keep = std::min(keep, relations_.size());

  Rng rng(seed);
  std::vector<size_t> picked = rng.SampleWithoutReplacement(relations_.size(), keep);
  std::sort(picked.begin(), picked.end());

  Federation subset;
  subset.dataset_names_ = dataset_names_;
  if (kept != nullptr) kept->clear();
  for (size_t index : picked) {
    RelationId id = subset.AddRelation(relations_[index]);
    subset.relation_dataset_[id] = relation_dataset_[index];
    if (kept != nullptr) kept->push_back(static_cast<RelationId>(index));
  }
  return subset;
}

}  // namespace mira::table
