#include "index/ivf_index.h"

#include <algorithm>
#include <cmath>

#include "cluster/kmeans.h"
#include "common/string_util.h"

namespace mira::index {

IvfIndex::IvfIndex(IvfOptions options) : options_(options) {}

Status IvfIndex::Add(uint64_t id, const vecmath::Vec& vector) {
  if (built_) return Status::FailedPrecondition("ivf: index already built");
  if (!vectors_.empty() && vector.size() != vectors_.cols()) {
    return Status::InvalidArgument(
        StrFormat("ivf: dim mismatch (%zu vs %zu)", vector.size(),
                  vectors_.cols()));
  }
  if (options_.metric == vecmath::Metric::kCosine) {
    vectors_.AppendRow(vecmath::Normalized(vector));
  } else {
    vectors_.AppendRow(vector);
  }
  ids_.push_back(id);
  return Status::OK();
}

void IvfIndex::Reserve(size_t expected_rows) {
  vectors_.Reserve(expected_rows);
  ids_.reserve(expected_rows);
}

Status IvfIndex::Build() {
  if (built_) return Status::FailedPrecondition("ivf: Build called twice");
  if (ids_.empty()) return Status::FailedPrecondition("ivf: no vectors added");
  const size_t n = ids_.size();
  size_t nlist = options_.nlist;
  if (nlist == 0) {
    nlist = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(static_cast<double>(n))));
  }
  nlist = std::min(nlist, n);

  cluster::KMeansOptions km;
  km.num_clusters = nlist;
  km.max_iterations = options_.train_iterations;
  km.seed = options_.seed;
  MIRA_ASSIGN_OR_RETURN(auto result, cluster::KMeans(vectors_, km));
  centroids_ = std::move(result.centroids);
  lists_.assign(nlist, {});
  for (size_t i = 0; i < n; ++i) {
    lists_[static_cast<size_t>(result.assignments[i])].push_back(
        static_cast<uint32_t>(i));
  }
  built_ = true;
  return Status::OK();
}

Result<std::vector<vecmath::ScoredId>> IvfIndex::Search(
    const vecmath::Vec& query, const SearchParams& params) const {
  if (!built_) return Status::FailedPrecondition("ivf: Build() not called");
  if (query.size() != vectors_.cols()) {
    return Status::InvalidArgument("ivf: query dim mismatch");
  }
  vecmath::Vec q = options_.metric == vecmath::Metric::kCosine
                       ? vecmath::Normalized(query)
                       : query;
  const size_t d = vectors_.cols();
  size_t nprobe = params.ef != 0 ? params.ef : options_.nprobe;
  nprobe = std::min(nprobe, centroids_.rows());

  // Rank cells by centroid similarity.
  vecmath::TopK cell_top(nprobe);
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    cell_top.Push(c, vecmath::MetricSimilarity(options_.metric, q.data(),
                                               centroids_.Row(c), d));
  }

  // Exact scan of the selected inverted lists. Budget checked once per
  // probed list (~n/nlist rows of work between checks).
  vecmath::TopK top(params.k);
  for (const auto& cell : cell_top.Take()) {
    if (params.control != nullptr) {
      MIRA_RETURN_NOT_OK(params.control->Check("ivf.probe"));
    }
    for (uint32_t row : lists_[cell.id]) {
      float sim;
      if (options_.metric == vecmath::Metric::kCosine) {
        sim = vecmath::Dot(q.data(), vectors_.Row(row), d);
      } else {
        sim = vecmath::MetricSimilarity(options_.metric, q.data(),
                                        vectors_.Row(row), d);
      }
      top.Push(ids_[row], sim);
    }
  }
  return top.Take();
}

std::vector<size_t> IvfIndex::ListSizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(lists_.size());
  for (const auto& list : lists_) sizes.push_back(list.size());
  return sizes;
}

MemoryStats IvfIndex::MemoryUsage() const {
  MemoryStats stats;
  stats.vectors_bytes = vectors_.data().size() * sizeof(float) +
                        centroids_.data().size() * sizeof(float);
  stats.ids_bytes = ids_.size() * sizeof(uint64_t);
  for (const auto& list : lists_) {
    stats.graph_bytes += list.size() * sizeof(uint32_t);
  }
  return stats;
}

}  // namespace mira::index
