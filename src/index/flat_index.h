#ifndef MIRA_INDEX_FLAT_INDEX_H_
#define MIRA_INDEX_FLAT_INDEX_H_

#include <string>
#include <vector>

#include "index/vector_index.h"
#include "vecmath/matrix.h"

namespace mira::index {

/// Exact brute-force index: the storage backend of Exhaustive Search (§4.1)
/// and the ground-truth oracle for ANN recall tests.
class FlatIndex final : public VectorIndex {
 public:
  explicit FlatIndex(vecmath::Metric metric = vecmath::Metric::kCosine);

  [[nodiscard]] Status Add(uint64_t id, const vecmath::Vec& vector) override;
  void Reserve(size_t expected_rows) override;
  [[nodiscard]] Status Build() override;
  [[nodiscard]] Result<std::vector<vecmath::ScoredId>> Search(
      const vecmath::Vec& query, const SearchParams& params) const override;

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return vectors_.cols(); }
  vecmath::Metric metric() const override { return metric_; }
  std::string name() const override { return "flat"; }
  MemoryStats MemoryUsage() const override;

  /// Direct access for callers that stream over all vectors (ExS).
  const vecmath::Matrix& vectors() const { return vectors_; }
  const std::vector<uint64_t>& ids() const { return ids_; }

 private:
  vecmath::Metric metric_;
  vecmath::Matrix vectors_;
  std::vector<uint64_t> ids_;
  bool built_ = false;
};

}  // namespace mira::index

#endif  // MIRA_INDEX_FLAT_INDEX_H_
