#ifndef MIRA_INDEX_HNSW_INDEX_H_
#define MIRA_INDEX_HNSW_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.h"
#include "index/product_quantizer.h"
#include "index/vector_index.h"
#include "vecmath/matrix.h"

namespace mira::index {

/// Hierarchical Navigable Small World graph (Malkov & Yashunin [29]): a
/// multi-layer proximity graph in which each element's maximum layer is drawn
/// from an exponentially decaying distribution; upper layers provide long
/// hops, layer 0 holds everyone. Search greedily descends the hierarchy and
/// finishes with a beam (ef) search on layer 0 — pruning the search space
/// exactly as §4.2 describes.
struct HnswOptions {
  /// Max out-degree per node on layers > 0 (layer 0 allows 2M).
  size_t M = 16;
  /// Beam width during construction.
  size_t ef_construction = 200;
  /// Default beam width during search (override per query via
  /// SearchParams::ef).
  size_t ef_search = 64;
  vecmath::Metric metric = vecmath::Metric::kCosine;
  uint64_t seed = 7;
  /// When set, vectors are additionally Product-Quantization compressed at
  /// Build() time and layer-0 traversal runs on ADC lookups, with the final
  /// beam rescored against the exact vectors (Qdrant-style quantized search
  /// with rescoring). kDot is not supported with quantization.
  std::optional<PqOptions> quantization;
  /// Compute distances with the scalar-reference kernels instead of the
  /// active SIMD tier, making graph construction and traversal
  /// bit-reproducible across CPUs. Set by build-pipeline consumers whose
  /// output feeds clustering (UMAP's kNN graph); leave off for serving
  /// indexes, where tier speed matters and near-tie neighbor flips are
  /// harmless.
  bool deterministic = false;
};

/// Thread-safety: Add() may be called concurrently (appends are serialized
/// internally). Build() must be called exactly once after all Adds have
/// completed — the caller provides that ordering. After Build() returns,
/// Search() and the const accessors may be called concurrently; nothing
/// mutates post-build state.
class HnswIndex final : public VectorIndex {
 public:
  explicit HnswIndex(HnswOptions options = {});

  [[nodiscard]] Status Add(uint64_t id, const vecmath::Vec& vector) override;
  void Reserve(size_t expected_rows) override;
  [[nodiscard]] Status Build() override;
  [[nodiscard]] Result<std::vector<vecmath::ScoredId>> Search(
      const vecmath::Vec& query, const SearchParams& params) const override;

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return vectors_.cols(); }
  vecmath::Metric metric() const override { return options_.metric; }
  std::string name() const override {
    return options_.quantization ? "hnsw+pq" : "hnsw";
  }
  MemoryStats MemoryUsage() const override;

  /// Max layer of the built graph (diagnostic).
  int max_level() const { return max_level_; }
  /// Out-degree of a node on a layer (diagnostic/testing).
  size_t Degree(uint32_t node, int level) const;
  const HnswOptions& options() const { return options_; }

 private:
  struct Candidate {
    float distance;
    uint32_t node;
    bool operator<(const Candidate& other) const {
      return distance < other.distance ||
             (distance == other.distance && node < other.node);
    }
    bool operator>(const Candidate& other) const { return other < *this; }
  };

  /// Reusable per-query search state: epoch-stamped visited marks (reset in
  /// O(1) by bumping the epoch instead of clearing a hash set), raw vectors
  /// driven as heaps for the frontier/result beams, and the ADC table
  /// buffer. After a few queries warm the buffers, Search() allocates
  /// nothing.
  struct SearchScratch {
    std::vector<uint32_t> visited;  // visited[node] == epoch -> seen
    uint32_t epoch = 0;
    std::vector<Candidate> frontier;  // min-heap (std::greater)
    std::vector<Candidate> best;      // max-heap (default less)
    std::vector<Candidate> beam;      // SearchLayer output, ascending
    std::vector<float> table;         // ADC distance table

    /// Per-query effort counters, reset by Search() and reported on its
    /// trace span. Plain integers: bumping them inside the traversal loops
    /// is noise next to the distance computations they count.
    uint64_t stat_dist_comps = 0;   // exact distance evaluations
    uint64_t stat_adc_decoded = 0;  // ADC table lookups (quantized search)
    uint64_t stat_popped = 0;       // beam-search frontier pops

    /// Grows `visited` to cover `num_nodes`, advances the epoch, and clears
    /// the heap buffers. Call once per SearchLayer invocation.
    void BeginQuery(size_t num_nodes);
  };

  /// Internal distance (lower = closer): squared L2 for kCosine (vectors
  /// normalized at Add) and kL2, negative dot for kDot.
  float ExactDistance(const float* query, uint32_t node) const;
  float OutputSimilarity(float internal_distance) const;

  int DrawLevel();
  /// Greedy hill-climb toward the query on one layer; returns the local
  /// minimum node. `cost` (optional) accumulates distance evaluations.
  /// Deliberately not budget-checked: upper-layer descents touch a handful
  /// of nodes (O(log n) hops), far below the amortization stride of the
  /// layer-0 beam where the real work happens.
  uint32_t GreedyClosest(const float* query, uint32_t entry, int level,
                         uint64_t* cost = nullptr) const;
  /// Beam search on one layer; leaves the candidates sorted by distance in
  /// scratch->beam. `control` (nullable) is consulted every
  /// kControlPopStride frontier pops; when it fires the beam is abandoned
  /// and kDeadlineExceeded/kCancelled is returned. With a null control the
  /// call cannot fail.
  [[nodiscard]] Status SearchLayer(const float* query, uint32_t entry,
                                   size_t ef, int level,
                                   const QueryControl* control,
                                   SearchScratch* scratch) const;
  /// ADC variants used for quantized search.
  uint32_t GreedyClosestAdc(const std::vector<float>& table, uint32_t entry,
                            int level, uint64_t* cost = nullptr) const;
  [[nodiscard]] Status SearchLayerAdc(const std::vector<float>& table,
                                      uint32_t entry, size_t ef, int level,
                                      const QueryControl* control,
                                      SearchScratch* scratch) const;

  /// Beam pops between budget checks in SearchLayer/SearchLayerAdc. Each pop
  /// expands up to 2M neighbors, so 64 pops ≈ 2k distance evaluations of
  /// work between checks — amortized to nothing, responsive within
  /// microseconds.
  static constexpr uint64_t kControlPopStride = 64;

  /// Scratch pool so concurrent Search() calls each get warm buffers without
  /// sharing state; returned scratches keep their capacity for the next
  /// query.
  std::unique_ptr<SearchScratch> AcquireScratch() const;
  void ReleaseScratch(std::unique_ptr<SearchScratch> scratch) const;
  /// Diversifying neighbor selection (Algorithm 4 of [29]).
  std::vector<uint32_t> SelectNeighbors(uint32_t base,
                                        const std::vector<Candidate>& candidates,
                                        size_t max_neighbors) const;
  void Connect(uint32_t from, uint32_t to, int level);
  void InsertNode(uint32_t node, SearchScratch* scratch);

  size_t MaxDegree(int level) const {
    return level == 0 ? options_.M * 2 : options_.M;
  }

  HnswOptions options_;
  double level_mult_ = 0.0;
  uint64_t rng_state_ = 0;

  /// Serializes concurrent Add() calls (vectors_/ids_ appends) and the whole
  /// of Build(), so a straggler Add() during Build() blocks and then fails
  /// the built_ precondition instead of racing the phase transition.
  /// MemoryUsage() also takes it: stats collectors may poll mid-add-phase.
  ///
  /// The data fields below follow a *phase protocol* rather than a lifetime
  /// lock (see docs/STATIC_ANALYSIS.md): during the add phase they are
  /// written only under add_mu_; Build() completes the transition; after
  /// Build() they are immutable and Search() reads them lock-free. They are
  /// deliberately not MIRA_GUARDED_BY(add_mu_) — that would force the hot
  /// read-only Search() path to take a lock it does not need.
  // mira-lint-allow(guarded-member) -- phase protocol, see comment above
  mutable Mutex add_mu_;

  vecmath::Matrix vectors_;
  std::vector<uint64_t> ids_;
  std::vector<int> levels_;
  /// links_[node][level] = neighbor list.
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  uint32_t entry_point_ = 0;
  int max_level_ = -1;
  /// Phase flag. Build() release-stores true after the graph is complete;
  /// Search() acquire-loads it, so a Search that observes true also observes
  /// the finished graph even without an external happens-before edge.
  std::atomic<bool> built_{false};

  std::optional<ProductQuantizer> pq_;
  std::vector<uint8_t> codes_;  // size() * code_bytes when quantized

  mutable Mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<SearchScratch>> scratch_pool_
      MIRA_GUARDED_BY(scratch_mu_);
};

}  // namespace mira::index

#endif  // MIRA_INDEX_HNSW_INDEX_H_
