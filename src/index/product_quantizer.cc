#include "index/product_quantizer.h"

#include <algorithm>
#include <limits>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace mira::index {

Result<ProductQuantizer> ProductQuantizer::Train(
    const vecmath::Matrix& training_data, const PqOptions& options) {
  if (options.nbits != 8) {
    return Status::NotImplemented("pq: only nbits=8 is supported");
  }
  const size_t dim = training_data.cols();
  const size_t m = options.num_subquantizers;
  if (m == 0 || dim % m != 0) {
    return Status::InvalidArgument(
        StrFormat("pq: %zu subquantizers do not divide dim %zu", m, dim));
  }
  const size_t ksub = 1u << options.nbits;
  size_t n = training_data.rows();

  // Optional training-row subsample.
  std::vector<size_t> train_rows;
  if (options.max_training_rows > 0 && n > options.max_training_rows) {
    Rng sample_rng(options.seed ^ 0x5A4D91E5ULL);
    train_rows =
        sample_rng.SampleWithoutReplacement(n, options.max_training_rows);
    std::sort(train_rows.begin(), train_rows.end());
    n = train_rows.size();
  } else {
    train_rows.resize(n);
    for (size_t i = 0; i < n; ++i) train_rows[i] = i;
  }
  // k-means needs at least as many points as centroids; cap the codebook at
  // the training size if the corpus is tiny (keeps small tests usable).
  const size_t effective_ksub = std::min(ksub, n);
  if (effective_ksub == 0) {
    return Status::InvalidArgument("pq: empty training data");
  }

  ProductQuantizer pq;
  pq.dim_ = dim;
  pq.m_ = m;
  pq.sub_dim_ = dim / m;
  pq.ksub_ = ksub;
  pq.codebooks_.assign(m * ksub * pq.sub_dim_, 0.f);

  for (size_t s = 0; s < m; ++s) {
    // Slice out subspace s.
    vecmath::Matrix sub(n, pq.sub_dim_);
    for (size_t i = 0; i < n; ++i) {
      const float* row = training_data.Row(train_rows[i]) + s * pq.sub_dim_;
      std::copy(row, row + pq.sub_dim_, sub.Row(i));
    }
    cluster::KMeansOptions km;
    km.num_clusters = effective_ksub;
    km.max_iterations = options.train_iterations;
    km.seed = options.seed + s * 7919;
    MIRA_ASSIGN_OR_RETURN(auto result, cluster::KMeans(sub, km));
    for (size_t c = 0; c < effective_ksub; ++c) {
      float* dst = pq.codebooks_.data() + ((s * ksub) + c) * pq.sub_dim_;
      std::copy(result.centroids.Row(c), result.centroids.Row(c) + pq.sub_dim_,
                dst);
    }
    // Unused codebook slots (tiny training sets) duplicate centroid 0 so any
    // code decodes to something sane.
    for (size_t c = effective_ksub; c < ksub; ++c) {
      float* dst = pq.codebooks_.data() + ((s * ksub) + c) * pq.sub_dim_;
      const float* src = pq.codebooks_.data() + (s * ksub) * pq.sub_dim_;
      std::copy(src, src + pq.sub_dim_, dst);
    }
  }
  return pq;
}

std::vector<uint8_t> ProductQuantizer::Encode(const vecmath::Vec& vector) const {
  std::vector<uint8_t> codes(m_);
  for (size_t s = 0; s < m_; ++s) {
    const float* sub = vector.data() + s * sub_dim_;
    float best = std::numeric_limits<float>::max();
    size_t best_c = 0;
    const float* base = codebooks_.data() + (s * ksub_) * sub_dim_;
    for (size_t c = 0; c < ksub_; ++c) {
      float d = vecmath::SquaredL2(sub, base + c * sub_dim_, sub_dim_);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    codes[s] = static_cast<uint8_t>(best_c);
  }
  return codes;
}

vecmath::Vec ProductQuantizer::Decode(const std::vector<uint8_t>& codes) const {
  vecmath::Vec out(dim_, 0.f);
  for (size_t s = 0; s < m_; ++s) {
    const float* centroid =
        codebooks_.data() + ((s * ksub_) + codes[s]) * sub_dim_;
    std::copy(centroid, centroid + sub_dim_, out.data() + s * sub_dim_);
  }
  return out;
}

std::vector<float> ProductQuantizer::ComputeDistanceTable(
    const vecmath::Vec& query) const {
  std::vector<float> table(m_ * ksub_);
  for (size_t s = 0; s < m_; ++s) {
    const float* sub = query.data() + s * sub_dim_;
    const float* base = codebooks_.data() + (s * ksub_) * sub_dim_;
    for (size_t c = 0; c < ksub_; ++c) {
      table[s * ksub_ + c] = vecmath::SquaredL2(sub, base + c * sub_dim_, sub_dim_);
    }
  }
  return table;
}

float ProductQuantizer::AdcDistance(const std::vector<float>& table,
                                    const uint8_t* codes) const {
  float sum = 0.f;
  for (size_t s = 0; s < m_; ++s) {
    sum += table[s * ksub_ + codes[s]];
  }
  return sum;
}

double ProductQuantizer::ReconstructionError(const vecmath::Matrix& data) const {
  if (data.rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    vecmath::Vec row = data.RowVec(i);
    vecmath::Vec rec = Decode(Encode(row));
    total += vecmath::SquaredL2(row, rec);
  }
  return total / static_cast<double>(data.rows());
}

}  // namespace mira::index
