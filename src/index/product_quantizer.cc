#include "index/product_quantizer.h"

#include <algorithm>
#include <limits>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "vecmath/simd.h"

namespace mira::index {

Result<ProductQuantizer> ProductQuantizer::Train(
    const vecmath::Matrix& training_data, const PqOptions& options) {
  if (options.nbits != 4 && options.nbits != 8) {
    return Status::InvalidArgument(
        StrFormat("pq: nbits must be 4 or 8, got %zu", options.nbits));
  }
  const size_t dim = training_data.cols();
  const size_t m = options.num_subquantizers;
  if (m == 0 || dim % m != 0) {
    return Status::InvalidArgument(
        StrFormat("pq: %zu subquantizers do not divide dim %zu", m, dim));
  }
  if (options.nbits == 4 && m > 257) {
    // The fast-scan kernels accumulate uint8 LUT entries in uint16 lanes;
    // m * 255 must stay below 65536.
    return Status::InvalidArgument(
        StrFormat("pq: nbits=4 supports at most 257 subquantizers, got %zu",
                  m));
  }
  const size_t ksub = 1u << options.nbits;
  size_t n = training_data.rows();

  // Optional training-row subsample.
  std::vector<size_t> train_rows;
  if (options.max_training_rows > 0 && n > options.max_training_rows) {
    Rng sample_rng(options.seed ^ 0x5A4D91E5ULL);
    train_rows =
        sample_rng.SampleWithoutReplacement(n, options.max_training_rows);
    std::sort(train_rows.begin(), train_rows.end());
    n = train_rows.size();
  } else {
    train_rows.resize(n);
    for (size_t i = 0; i < n; ++i) train_rows[i] = i;
  }
  // k-means needs at least as many points as centroids; cap the codebook at
  // the training size if the corpus is tiny (keeps small tests usable).
  const size_t effective_ksub = std::min(ksub, n);
  if (effective_ksub == 0) {
    return Status::InvalidArgument("pq: empty training data");
  }

  ProductQuantizer pq;
  pq.dim_ = dim;
  pq.m_ = m;
  pq.sub_dim_ = dim / m;
  pq.ksub_ = ksub;
  pq.nbits_ = options.nbits;
  pq.codebooks_.assign(m * ksub * pq.sub_dim_, 0.f);

  for (size_t s = 0; s < m; ++s) {
    // Slice out subspace s.
    vecmath::Matrix sub(n, pq.sub_dim_);
    for (size_t i = 0; i < n; ++i) {
      const float* row = training_data.Row(train_rows[i]) + s * pq.sub_dim_;
      std::copy(row, row + pq.sub_dim_, sub.Row(i));
    }
    cluster::KMeansOptions km;
    km.num_clusters = effective_ksub;
    km.max_iterations = options.train_iterations;
    km.seed = options.seed + s * 7919;
    MIRA_ASSIGN_OR_RETURN(auto result, cluster::KMeans(sub, km));
    for (size_t c = 0; c < effective_ksub; ++c) {
      float* dst = pq.codebooks_.data() + ((s * ksub) + c) * pq.sub_dim_;
      std::copy(result.centroids.Row(c), result.centroids.Row(c) + pq.sub_dim_,
                dst);
    }
    // Unused codebook slots (tiny training sets) duplicate centroid 0 so any
    // code decodes to something sane.
    for (size_t c = effective_ksub; c < ksub; ++c) {
      float* dst = pq.codebooks_.data() + ((s * ksub) + c) * pq.sub_dim_;
      const float* src = pq.codebooks_.data() + (s * ksub) * pq.sub_dim_;
      std::copy(src, src + pq.sub_dim_, dst);
    }
  }
  return pq;
}

void ProductQuantizer::EncodeRow(const float* vector, float* dist,
                                 uint8_t* out) const {
  // The ksub_ centroids of each subquantizer are contiguous, so nearest-
  // centroid search is one batched distance sweep per subspace.
  for (size_t s = 0; s < m_; ++s) {
    const float* sub = vector + s * sub_dim_;
    const float* base = codebooks_.data() + (s * ksub_) * sub_dim_;
    // Scalar-reference sweep: stored codes must be machine-independent
    // (see vecmath/simd.h); the query-time distance table stays on the
    // active tier.
    vecmath::ScalarSquaredL2Batch(sub, base, ksub_, sub_dim_, dist);
    float best = std::numeric_limits<float>::max();
    size_t best_c = 0;
    for (size_t c = 0; c < ksub_; ++c) {
      if (dist[c] < best) {
        best = dist[c];
        best_c = c;
      }
    }
    out[s] = static_cast<uint8_t>(best_c);
  }
}

std::vector<uint8_t> ProductQuantizer::Encode(const vecmath::Vec& vector) const {
  std::vector<uint8_t> codes(m_);
  std::vector<float> dist(ksub_);
  EncodeRow(vector.data(), dist.data(), codes.data());
  return codes;
}

void ProductQuantizer::EncodeBatch(const vecmath::Matrix& data,
                                   uint8_t* out) const {
  std::vector<float> dist(ksub_);
  for (size_t i = 0; i < data.rows(); ++i) {
    EncodeRow(data.Row(i), dist.data(), out + i * m_);
  }
}

vecmath::Vec ProductQuantizer::Decode(const std::vector<uint8_t>& codes) const {
  vecmath::Vec out(dim_, 0.f);
  for (size_t s = 0; s < m_; ++s) {
    const float* centroid =
        codebooks_.data() + ((s * ksub_) + codes[s]) * sub_dim_;
    std::copy(centroid, centroid + sub_dim_, out.data() + s * sub_dim_);
  }
  return out;
}

std::vector<float> ProductQuantizer::ComputeDistanceTable(
    const vecmath::Vec& query) const {
  std::vector<float> table;
  ComputeDistanceTable(query, &table);
  return table;
}

void ProductQuantizer::ComputeDistanceTable(const vecmath::Vec& query,
                                            std::vector<float>* table) const {
  table->resize(m_ * ksub_);
  for (size_t s = 0; s < m_; ++s) {
    const float* sub = query.data() + s * sub_dim_;
    const float* base = codebooks_.data() + (s * ksub_) * sub_dim_;
    vecmath::SquaredL2Batch(sub, base, ksub_, sub_dim_,
                            table->data() + s * ksub_);
  }
}

void ProductQuantizer::QuantizeDistanceTable(const std::vector<float>& table,
                                             QuantizedLut* out) const {
  out->lut.resize(m_ * ksub_);
  // Per-subspace minima fold into one additive bias, so each uint8 entry
  // only spends its range on the subspace's residual spread; one shared
  // scale (from the widest subspace) keeps the lookup sums additive.
  float bias = 0.f;
  float max_residual = 0.f;
  for (size_t s = 0; s < m_; ++s) {
    const float* row = table.data() + s * ksub_;
    float lo = row[0];
    float hi = row[0];
    for (size_t c = 1; c < ksub_; ++c) {
      lo = std::min(lo, row[c]);
      hi = std::max(hi, row[c]);
    }
    bias += lo;
    max_residual = std::max(max_residual, hi - lo);
  }
  const float scale = max_residual > 0.f ? max_residual / 255.f : 0.f;
  const float inv_scale = scale > 0.f ? 1.f / scale : 0.f;
  for (size_t s = 0; s < m_; ++s) {
    const float* row = table.data() + s * ksub_;
    float lo = row[0];
    for (size_t c = 1; c < ksub_; ++c) lo = std::min(lo, row[c]);
    uint8_t* qrow = out->lut.data() + s * ksub_;
    for (size_t c = 0; c < ksub_; ++c) {
      const float q = (row[c] - lo) * inv_scale + 0.5f;
      qrow[c] = static_cast<uint8_t>(q < 255.f ? q : 255.f);
    }
  }
  out->scale = scale;
  out->bias = bias;
}

void Pack4BitCodesBlocked(const uint8_t* codes, size_t n, size_t m,
                          std::vector<uint8_t>* packed) {
  const size_t num_blocks = (n + 31) / 32;
  packed->assign(num_blocks * m * 16, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t block = i / 32;
    const size_t j = i % 32;
    const uint8_t* row = codes + i * m;
    for (size_t s = 0; s < m; ++s) {
      uint8_t& slot = (*packed)[(block * m + s) * 16 + (j % 16)];
      if (j < 16) {
        slot = static_cast<uint8_t>(slot | (row[s] & 0x0F));
      } else {
        slot = static_cast<uint8_t>(slot | (row[s] << 4));
      }
    }
  }
}

float ProductQuantizer::AdcDistance(const std::vector<float>& table,
                                    const uint8_t* codes) const {
  float sum = 0.f;
  for (size_t s = 0; s < m_; ++s) {
    sum += table[s * ksub_ + codes[s]];
  }
  return sum;
}

void ProductQuantizer::AdcDistanceBatch(const std::vector<float>& table,
                                        const uint8_t* codes, size_t num_codes,
                                        float* out) const {
  const float* t = table.data();
  size_t i = 0;
  // Eight codes per iteration, one accumulator each: a single code's sum is
  // a serial float-add chain (latency-bound), so only independent chains can
  // saturate the add units — four-wide gains little because out-of-order
  // execution already overlaps adjacent AdcDistance calls that far. Eight
  // chains push the loop to its load-throughput bound (one table load plus
  // one code-byte load per add; wider word loads for the code bytes were
  // measured slower here — the extract arithmetic costs more than the loads
  // it saves). Per-code summation order matches AdcDistance exactly,
  // keeping the batch bitwise identical to the unbatched path.
  for (; i + 8 <= num_codes; i += 8) {
    const uint8_t* c0 = codes + i * m_;
    const uint8_t* c1 = c0 + m_;
    const uint8_t* c2 = c1 + m_;
    const uint8_t* c3 = c2 + m_;
    const uint8_t* c4 = c3 + m_;
    const uint8_t* c5 = c4 + m_;
    const uint8_t* c6 = c5 + m_;
    const uint8_t* c7 = c6 + m_;
    if (i + 16 <= num_codes) {
      __builtin_prefetch(codes + (i + 8) * m_);
      __builtin_prefetch(codes + (i + 12) * m_);
    }
    float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
    float s4 = 0.f, s5 = 0.f, s6 = 0.f, s7 = 0.f;
    const float* ts = t;
    for (size_t s = 0; s < m_; ++s, ts += ksub_) {
      s0 += ts[c0[s]];
      s1 += ts[c1[s]];
      s2 += ts[c2[s]];
      s3 += ts[c3[s]];
      s4 += ts[c4[s]];
      s5 += ts[c5[s]];
      s6 += ts[c6[s]];
      s7 += ts[c7[s]];
    }
    out[i] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
    out[i + 4] = s4;
    out[i + 5] = s5;
    out[i + 6] = s6;
    out[i + 7] = s7;
  }
  for (; i < num_codes; ++i) {
    out[i] = AdcDistance(table, codes + i * m_);
  }
}

double ProductQuantizer::ReconstructionError(const vecmath::Matrix& data) const {
  if (data.rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    vecmath::Vec row = data.RowVec(i);
    vecmath::Vec rec = Decode(Encode(row));
    total += vecmath::SquaredL2(row, rec);
  }
  return total / static_cast<double>(data.rows());
}

}  // namespace mira::index
