#include "index/flat_index.h"

#include "common/string_util.h"

namespace mira::index {

FlatIndex::FlatIndex(vecmath::Metric metric) : metric_(metric) {}

Status FlatIndex::Add(uint64_t id, const vecmath::Vec& vector) {
  if (built_) return Status::FailedPrecondition("flat: index already built");
  if (!vectors_.empty() && vector.size() != vectors_.cols()) {
    return Status::InvalidArgument(
        StrFormat("flat: dim mismatch (%zu vs %zu)", vector.size(),
                  vectors_.cols()));
  }
  if (metric_ == vecmath::Metric::kCosine) {
    vectors_.AppendRow(vecmath::Normalized(vector));
  } else {
    vectors_.AppendRow(vector);
  }
  ids_.push_back(id);
  return Status::OK();
}

Status FlatIndex::Build() {
  if (built_) return Status::FailedPrecondition("flat: Build called twice");
  built_ = true;
  return Status::OK();
}

Result<std::vector<vecmath::ScoredId>> FlatIndex::Search(
    const vecmath::Vec& query, const SearchParams& params) const {
  if (!built_) return Status::FailedPrecondition("flat: Build() not called");
  if (query.size() != vectors_.cols() && !vectors_.empty()) {
    return Status::InvalidArgument("flat: query dim mismatch");
  }
  vecmath::Vec q = metric_ == vecmath::Metric::kCosine
                       ? vecmath::Normalized(query)
                       : query;
  vecmath::TopK top(params.k);
  const size_t n = ids_.size();
  const size_t d = vectors_.cols();
  for (size_t i = 0; i < n; ++i) {
    float sim;
    if (metric_ == vecmath::Metric::kCosine) {
      // Rows and query are pre-normalized; cosine reduces to a dot product.
      sim = vecmath::Dot(q.data(), vectors_.Row(i), d);
    } else {
      sim = vecmath::MetricSimilarity(metric_, q.data(), vectors_.Row(i), d);
    }
    top.Push(ids_[i], sim);
  }
  return top.Take();
}

size_t FlatIndex::MemoryBytes() const {
  return vectors_.data().size() * sizeof(float) +
         ids_.size() * sizeof(uint64_t);
}

}  // namespace mira::index
