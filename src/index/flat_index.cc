#include "index/flat_index.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/trace.h"
#include "vecmath/simd.h"

namespace mira::index {

FlatIndex::FlatIndex(vecmath::Metric metric) : metric_(metric) {}

Status FlatIndex::Add(uint64_t id, const vecmath::Vec& vector) {
  if (built_) return Status::FailedPrecondition("flat: index already built");
  if (!vectors_.empty() && vector.size() != vectors_.cols()) {
    return Status::InvalidArgument(
        StrFormat("flat: dim mismatch (%zu vs %zu)", vector.size(),
                  vectors_.cols()));
  }
  if (metric_ == vecmath::Metric::kCosine) {
    vectors_.AppendRow(vecmath::Normalized(vector));
  } else {
    vectors_.AppendRow(vector);
  }
  ids_.push_back(id);
  return Status::OK();
}

void FlatIndex::Reserve(size_t expected_rows) {
  vectors_.Reserve(expected_rows);
  ids_.reserve(expected_rows);
}

Status FlatIndex::Build() {
  if (built_) return Status::FailedPrecondition("flat: Build called twice");
  built_ = true;
  return Status::OK();
}

Result<std::vector<vecmath::ScoredId>> FlatIndex::Search(
    const vecmath::Vec& query, const SearchParams& params) const {
  if (!built_) return Status::FailedPrecondition("flat: Build() not called");
  if (query.size() != vectors_.cols() && !vectors_.empty()) {
    return Status::InvalidArgument("flat: query dim mismatch");
  }
  vecmath::Vec q = metric_ == vecmath::Metric::kCosine
                       ? vecmath::Normalized(query)
                       : query;
  vecmath::TopK top(params.k);
  const size_t n = ids_.size();
  const size_t d = vectors_.cols();
  obs::TraceSpan span("flat.scan");
  span.AddCounter("rows_scanned", static_cast<int64_t>(n));
  // Blocked batched scan: the kernels stream 4 rows per iteration with
  // prefetch; a stack block keeps the score spill out of the heap. For cosine
  // the rows and query are pre-normalized, so similarity is a plain dot.
  constexpr size_t kBlock = 256;
  // Budget checks are amortized over whole blocks (4096 rows between
  // checks) so an uncontrolled query pays nothing measurable.
  constexpr size_t kControlStride = 16;
  float scores[kBlock];
  size_t block_idx = 0;
  for (size_t start = 0; start < n; start += kBlock, ++block_idx) {
    if (params.control != nullptr && block_idx % kControlStride == 0) {
      Status budget = params.control->Check("flat.scan");
      if (!budget.ok()) return budget;
    }
    const size_t count = std::min(kBlock, n - start);
    if (metric_ == vecmath::Metric::kL2) {
      vecmath::SquaredL2Batch(q.data(), vectors_.Row(start), count, d, scores);
      for (size_t j = 0; j < count; ++j) {
        top.Push(ids_[start + j], -scores[j]);
      }
    } else {
      vecmath::DotBatch(q.data(), vectors_.Row(start), count, d, scores);
      for (size_t j = 0; j < count; ++j) {
        top.Push(ids_[start + j], scores[j]);
      }
    }
  }
  return top.Take();
}

MemoryStats FlatIndex::MemoryUsage() const {
  MemoryStats stats;
  stats.vectors_bytes = vectors_.data().size() * sizeof(float);
  stats.ids_bytes = ids_.size() * sizeof(uint64_t);
  return stats;
}

}  // namespace mira::index
