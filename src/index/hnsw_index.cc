#include "index/hnsw_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "common/rng.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vecmath/simd.h"

namespace mira::index {

HnswIndex::HnswIndex(HnswOptions options) : options_(options) {
  MIRA_CHECK(options_.M >= 2);
  level_mult_ = 1.0 / std::log(static_cast<double>(options_.M));
  rng_state_ = SplitMix64(options_.seed);
}

float HnswIndex::ExactDistance(const float* query, uint32_t node) const {
  const float* v = vectors_.Row(node);
  const size_t d = vectors_.cols();
  switch (options_.metric) {
    case vecmath::Metric::kCosine:
    case vecmath::Metric::kL2:
      return options_.deterministic ? vecmath::ScalarSquaredL2(query, v, d)
                                    : vecmath::SquaredL2(query, v, d);
    case vecmath::Metric::kDot:
      return options_.deterministic ? -vecmath::ScalarDot(query, v, d)
                                    : -vecmath::Dot(query, v, d);
  }
  return 0.f;
}

float HnswIndex::OutputSimilarity(float internal_distance) const {
  switch (options_.metric) {
    case vecmath::Metric::kCosine:
      // Vectors are unit-norm; |a-b|^2 = 2 - 2 cos.
      return 1.0f - internal_distance / 2.0f;
    case vecmath::Metric::kL2:
      return -internal_distance;
    case vecmath::Metric::kDot:
      return -internal_distance;
  }
  return 0.f;
}

Status HnswIndex::Add(uint64_t id, const vecmath::Vec& vector) {
  MutexLock lock(add_mu_);
  if (built_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("hnsw: index already built");
  }
  if (!vectors_.empty() && vector.size() != vectors_.cols()) {
    return Status::InvalidArgument(
        StrFormat("hnsw: dim mismatch (%zu vs %zu)", vector.size(),
                  vectors_.cols()));
  }
  if (options_.metric == vecmath::Metric::kCosine) {
    vectors_.AppendRow(vecmath::Normalized(vector));
  } else {
    vectors_.AppendRow(vector);
  }
  ids_.push_back(id);
  return Status::OK();
}

void HnswIndex::Reserve(size_t expected_rows) {
  MutexLock lock(add_mu_);
  vectors_.Reserve(expected_rows);
  ids_.reserve(expected_rows);
}

void HnswIndex::SearchScratch::BeginQuery(size_t num_nodes) {
  if (visited.size() < num_nodes) visited.resize(num_nodes, 0);
  ++epoch;
  if (epoch == 0) {
    // Epoch wrapped: stamps from 2^32 queries ago would read as visited.
    std::fill(visited.begin(), visited.end(), 0u);
    epoch = 1;
  }
  frontier.clear();
  best.clear();
  beam.clear();
}

std::unique_ptr<HnswIndex::SearchScratch> HnswIndex::AcquireScratch() const {
  MutexLock lock(scratch_mu_);
  if (!scratch_pool_.empty()) {
    std::unique_ptr<SearchScratch> scratch = std::move(scratch_pool_.back());
    scratch_pool_.pop_back();
    return scratch;
  }
  return std::make_unique<SearchScratch>();
}

void HnswIndex::ReleaseScratch(std::unique_ptr<SearchScratch> scratch) const {
  MutexLock lock(scratch_mu_);
  scratch_pool_.push_back(std::move(scratch));
}

int HnswIndex::DrawLevel() {
  rng_state_ = SplitMix64(rng_state_);
  double u = static_cast<double>(rng_state_ >> 11) * 0x1.0p-53;
  if (u <= 0.0) u = 1e-300;
  return static_cast<int>(std::floor(-std::log(u) * level_mult_));
}

uint32_t HnswIndex::GreedyClosest(const float* query, uint32_t entry,
                                  int level, uint64_t* cost) const {
  uint32_t current = entry;
  float current_dist = ExactDistance(query, current);
  if (cost != nullptr) ++*cost;
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t nb : links_[current][level]) {
      float d = ExactDistance(query, nb);
      if (cost != nullptr) ++*cost;
      if (d < current_dist) {
        current = nb;
        current_dist = d;
        improved = true;
      }
    }
  }
  return current;
}

Status HnswIndex::SearchLayer(const float* query, uint32_t entry, size_t ef,
                              int level, const QueryControl* control,
                              SearchScratch* scratch) const {
  // Min-heap of frontier candidates, max-heap of current best ef results,
  // both living in the scratch's reused storage; visited marks are epoch
  // stamps, so resetting them costs one increment instead of a hash-set
  // rebuild.
  scratch->BeginQuery(links_.size());
  std::vector<Candidate>& frontier = scratch->frontier;
  std::vector<Candidate>& best = scratch->best;
  std::vector<uint32_t>& visited = scratch->visited;
  const uint32_t epoch = scratch->epoch;

  float d0 = ExactDistance(query, entry);
  ++scratch->stat_dist_comps;
  frontier.push_back({d0, entry});
  best.push_back({d0, entry});
  visited[entry] = epoch;

  while (!frontier.empty()) {
    Candidate c = frontier.front();
    if (best.size() >= ef && c.distance > best.front().distance) break;
    std::pop_heap(frontier.begin(), frontier.end(), std::greater<>());
    frontier.pop_back();
    ++scratch->stat_popped;
    if (control != nullptr &&
        scratch->stat_popped % kControlPopStride == 0) {
      MIRA_RETURN_NOT_OK(control->Check("hnsw.search_layer"));
    }
    for (uint32_t nb : links_[c.node][level]) {
      if (visited[nb] == epoch) continue;
      visited[nb] = epoch;
      float d = ExactDistance(query, nb);
      ++scratch->stat_dist_comps;
      if (best.size() < ef || d < best.front().distance) {
        frontier.push_back({d, nb});
        std::push_heap(frontier.begin(), frontier.end(), std::greater<>());
        best.push_back({d, nb});
        std::push_heap(best.begin(), best.end());
        if (best.size() > ef) {
          std::pop_heap(best.begin(), best.end());
          best.pop_back();
        }
      }
    }
  }

  scratch->beam.assign(best.begin(), best.end());
  std::sort(scratch->beam.begin(), scratch->beam.end());
  return Status::OK();
}

uint32_t HnswIndex::GreedyClosestAdc(const std::vector<float>& table,
                                     uint32_t entry, int level,
                                     uint64_t* cost) const {
  const size_t bytes = pq_->code_bytes();
  auto dist = [&](uint32_t node) {
    return pq_->AdcDistance(table, codes_.data() + node * bytes);
  };
  uint32_t current = entry;
  float current_dist = dist(current);
  if (cost != nullptr) ++*cost;
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t nb : links_[current][level]) {
      float d = dist(nb);
      if (cost != nullptr) ++*cost;
      if (d < current_dist) {
        current = nb;
        current_dist = d;
        improved = true;
      }
    }
  }
  return current;
}

Status HnswIndex::SearchLayerAdc(const std::vector<float>& table,
                                 uint32_t entry, size_t ef, int level,
                                 const QueryControl* control,
                                 SearchScratch* scratch) const {
  const size_t bytes = pq_->code_bytes();
  auto dist = [&](uint32_t node) {
    return pq_->AdcDistance(table, codes_.data() + node * bytes);
  };
  scratch->BeginQuery(links_.size());
  std::vector<Candidate>& frontier = scratch->frontier;
  std::vector<Candidate>& best = scratch->best;
  std::vector<uint32_t>& visited = scratch->visited;
  const uint32_t epoch = scratch->epoch;

  float d0 = dist(entry);
  ++scratch->stat_adc_decoded;
  frontier.push_back({d0, entry});
  best.push_back({d0, entry});
  visited[entry] = epoch;

  while (!frontier.empty()) {
    Candidate c = frontier.front();
    if (best.size() >= ef && c.distance > best.front().distance) break;
    std::pop_heap(frontier.begin(), frontier.end(), std::greater<>());
    frontier.pop_back();
    ++scratch->stat_popped;
    if (control != nullptr &&
        scratch->stat_popped % kControlPopStride == 0) {
      MIRA_RETURN_NOT_OK(control->Check("hnsw.search_layer_adc"));
    }
    for (uint32_t nb : links_[c.node][level]) {
      if (visited[nb] == epoch) continue;
      visited[nb] = epoch;
      float d = dist(nb);
      ++scratch->stat_adc_decoded;
      if (best.size() < ef || d < best.front().distance) {
        frontier.push_back({d, nb});
        std::push_heap(frontier.begin(), frontier.end(), std::greater<>());
        best.push_back({d, nb});
        std::push_heap(best.begin(), best.end());
        if (best.size() > ef) {
          std::pop_heap(best.begin(), best.end());
          best.pop_back();
        }
      }
    }
  }

  scratch->beam.assign(best.begin(), best.end());
  std::sort(scratch->beam.begin(), scratch->beam.end());
  return Status::OK();
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(
    uint32_t base, const std::vector<Candidate>& candidates,
    size_t max_neighbors) const {
  // Heuristic of [29], Algorithm 4: take a candidate only if it is closer to
  // the base point than to every already-selected neighbor; this keeps the
  // graph navigable by spreading edges across directions. Pruned candidates
  // backfill remaining slots (keepPrunedConnections).
  std::vector<uint32_t> selected;
  std::vector<uint32_t> pruned;
  for (const Candidate& c : candidates) {
    if (c.node == base) continue;
    if (selected.size() >= max_neighbors) break;
    bool diverse = true;
    for (uint32_t s : selected) {
      float d_cs = ExactDistance(vectors_.Row(c.node), s);
      if (d_cs < c.distance) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.push_back(c.node);
    } else {
      pruned.push_back(c.node);
    }
  }
  for (uint32_t p : pruned) {
    if (selected.size() >= max_neighbors) break;
    selected.push_back(p);
  }
  return selected;
}

void HnswIndex::Connect(uint32_t from, uint32_t to, int level) {
  auto& list = links_[from][level];
  if (std::find(list.begin(), list.end(), to) != list.end()) return;
  list.push_back(to);
  size_t cap = MaxDegree(level);
  if (list.size() <= cap) return;
  // Overflow: re-select the best `cap` neighbors with the heuristic.
  std::vector<Candidate> candidates;
  candidates.reserve(list.size());
  const float* base_vec = vectors_.Row(from);
  for (uint32_t nb : list) {
    candidates.push_back({ExactDistance(base_vec, nb), nb});
  }
  std::sort(candidates.begin(), candidates.end());
  list = SelectNeighbors(from, candidates, cap);
}

void HnswIndex::InsertNode(uint32_t node, SearchScratch* scratch) {
  int level = levels_[node];
  if (max_level_ < 0) {
    entry_point_ = node;
    max_level_ = level;
    return;
  }

  const float* query = vectors_.Row(node);
  uint32_t ep = entry_point_;
  for (int l = max_level_; l > level; --l) {
    ep = GreedyClosest(query, ep, l);
  }
  for (int l = std::min(level, max_level_); l >= 0; --l) {
    // Null control: construction beams are never budget-bounded, so this
    // cannot fail.
    Status beam_status =
        SearchLayer(query, ep, options_.ef_construction, l, nullptr, scratch);
    MIRA_CHECK(beam_status.ok());
    std::vector<uint32_t> neighbors =
        SelectNeighbors(node, scratch->beam, options_.M);
    for (uint32_t nb : neighbors) {
      Connect(node, nb, l);
      Connect(nb, node, l);
    }
    if (!scratch->beam.empty()) ep = scratch->beam.front().node;
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
}

Status HnswIndex::Build() {
  // Hold add_mu_ for the whole build: a contract-violating concurrent Add()
  // blocks here and then fails the built_ check instead of appending into a
  // graph mid-construction.
  MutexLock lock(add_mu_);
  if (built_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("hnsw: Build called twice");
  }
  if (ids_.empty()) return Status::FailedPrecondition("hnsw: no vectors added");

  const size_t n = ids_.size();
  levels_.resize(n);
  links_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    levels_[i] = DrawLevel();
    links_[i].resize(levels_[i] + 1);
  }
  // Build is single-threaded; one scratch serves every insertion, so the
  // whole construction reuses the same visited/heap storage.
  SearchScratch scratch;
  for (size_t i = 0; i < n; ++i) {
    InsertNode(static_cast<uint32_t>(i), &scratch);
  }

  if (options_.quantization.has_value()) {
    if (options_.metric == vecmath::Metric::kDot) {
      return Status::NotImplemented("hnsw: quantization requires cosine or l2");
    }
    MIRA_ASSIGN_OR_RETURN(auto pq,
                          ProductQuantizer::Train(vectors_, *options_.quantization));
    pq_ = std::move(pq);
    codes_.resize(n * pq_->code_bytes());
    pq_->EncodeBatch(vectors_, codes_.data());
  }

  // Release store pairs with the acquire load in Search(): observing
  // built_ == true implies observing the completed graph.
  built_.store(true, std::memory_order_release);
  return Status::OK();
}

Result<std::vector<vecmath::ScoredId>> HnswIndex::Search(
    const vecmath::Vec& query, const SearchParams& params) const {
  if (!built_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("hnsw: Build() not called");
  }
  if (query.size() != vectors_.cols()) {
    return Status::InvalidArgument("hnsw: query dim mismatch");
  }
  // One unconditional entry check: the beam's amortized check fires only
  // every kControlPopStride pops, which a small graph may never reach — a
  // pre-expired budget must still surface before any traversal.
  if (params.control != nullptr) {
    MIRA_RETURN_NOT_OK(params.control->Check("hnsw.search"));
  }
  vecmath::Vec q = options_.metric == vecmath::Metric::kCosine
                       ? vecmath::Normalized(query)
                       : query;
  size_t ef = std::max(params.ef == 0 ? options_.ef_search : params.ef, params.k);

  obs::TraceSpan span("hnsw.search");
  std::unique_ptr<SearchScratch> scratch = AcquireScratch();
  scratch->stat_dist_comps = 0;
  scratch->stat_adc_decoded = 0;
  scratch->stat_popped = 0;
  if (pq_.has_value()) {
    // Quantized traversal: greedy descent and the layer-0 beam both run on
    // ADC lookups; only the final beam is rescored exactly.
    obs::TraceSpan adc_span("anns.pq_adc");
    pq_->ComputeDistanceTable(q, &scratch->table);
    uint32_t ep = entry_point_;
    // Greedy upper-layer descent is O(log n) hops — below the amortization
    // stride, so only the layer-0 beam is budget-checked.
    for (int l = max_level_; l >= 1; --l) {
      ep = GreedyClosestAdc(scratch->table, ep, l, &scratch->stat_adc_decoded);
    }
    Status beam_status =
        SearchLayerAdc(scratch->table, ep, ef, 0, params.control, scratch.get());
    if (!beam_status.ok()) {
      ReleaseScratch(std::move(scratch));
      return beam_status;
    }
    adc_span.AddCounter("codes_decoded",
                        static_cast<int64_t>(scratch->stat_adc_decoded));
    adc_span.Finish();
    // Rescore the beam with exact distances.
    for (Candidate& c : scratch->beam) {
      c.distance = ExactDistance(q.data(), c.node);
    }
    scratch->stat_dist_comps += scratch->beam.size();
    std::sort(scratch->beam.begin(), scratch->beam.end());
    span.AddCounter("rescored", static_cast<int64_t>(scratch->beam.size()));
  } else {
    uint32_t ep = entry_point_;
    for (int l = max_level_; l >= 1; --l) {
      ep = GreedyClosest(q.data(), ep, l, &scratch->stat_dist_comps);
    }
    Status beam_status =
        SearchLayer(q.data(), ep, ef, 0, params.control, scratch.get());
    if (!beam_status.ok()) {
      ReleaseScratch(std::move(scratch));
      return beam_status;
    }
  }
  span.AddCounter("ef", static_cast<int64_t>(ef));
  span.AddCounter("dist_comps", static_cast<int64_t>(scratch->stat_dist_comps));
  if (pq_.has_value()) {
    span.AddCounter("adc_decoded",
                    static_cast<int64_t>(scratch->stat_adc_decoded));
  }
  span.AddCounter("popped", static_cast<int64_t>(scratch->stat_popped));
  if constexpr (obs::kObsEnabled) {
    static obs::Counter& searches_metric =
        obs::MetricRegistry::Global().GetCounter("mira.hnsw.searches");
    static obs::Counter& dist_metric =
        obs::MetricRegistry::Global().GetCounter("mira.hnsw.dist_comps");
    searches_metric.Increment();
    dist_metric.Add(scratch->stat_dist_comps + scratch->stat_adc_decoded);
  }

  const std::vector<Candidate>& beam = scratch->beam;
  std::vector<vecmath::ScoredId> out;
  out.reserve(std::min(params.k, beam.size()));
  for (size_t i = 0; i < beam.size() && i < params.k; ++i) {
    out.push_back({ids_[beam[i].node], OutputSimilarity(beam[i].distance)});
  }
  ReleaseScratch(std::move(scratch));
  return out;
}

size_t HnswIndex::Degree(uint32_t node, int level) const {
  MIRA_CHECK(node < links_.size());
  if (level < 0 || static_cast<size_t>(level) >= links_[node].size()) return 0;
  return links_[node][level].size();
}

MemoryStats HnswIndex::MemoryUsage() const {
  // Stats collectors poll this while Add() may still be appending; the lock
  // makes the mid-add-phase read race-free. Post-build it is uncontended.
  MutexLock lock(add_mu_);
  MemoryStats stats;
  stats.vectors_bytes = vectors_.data().size() * sizeof(float);
  stats.ids_bytes = ids_.size() * sizeof(uint64_t);
  stats.codes_bytes = codes_.size();
  for (const auto& node : links_) {
    for (const auto& level : node) {
      stats.graph_bytes += level.size() * sizeof(uint32_t);
    }
  }
  return stats;
}

}  // namespace mira::index
