#ifndef MIRA_INDEX_VECTOR_INDEX_H_
#define MIRA_INDEX_VECTOR_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/status.h"
#include "vecmath/distance.h"
#include "vecmath/top_k.h"
#include "vecmath/vector_ops.h"

namespace mira::index {

/// Per-query knobs.
struct SearchParams {
  /// Number of results requested.
  size_t k = 10;
  /// Beam width for graph indexes (HNSW ef); 0 means the index default.
  size_t ef = 0;
  /// Optional deadline/cancellation budget, not owned; null = unbounded.
  /// Indexes check it cooperatively at amortized intervals (every N scan
  /// blocks / beam pops, never per cell) and return kDeadlineExceeded or
  /// kCancelled from Search() when it fires mid-scan.
  const QueryControl* control = nullptr;
};

/// Byte-level breakdown of an index's resident search structures. Feeds the
/// `mira.mem.*` resource gauges (see docs/OBSERVABILITY.md); total() is what
/// the storage-reduction experiments report as MemoryBytes().
struct MemoryStats {
  size_t vectors_bytes = 0;   ///< Raw float rows (plus centroids for IVF).
  size_t ids_bytes = 0;       ///< External id arrays.
  size_t graph_bytes = 0;     ///< HNSW link lists / IVF posting lists.
  size_t codes_bytes = 0;     ///< Packed PQ codes (payload: grows with n).
  size_t codebook_bytes = 0;  ///< PQ codebook floats (model: fixed per index).
  size_t total() const {
    return vectors_bytes + ids_bytes + graph_bytes + codes_bytes +
           codebook_bytes;
  }
};

/// Common interface of MIRA's vector indexes (flat, PQ-flat, HNSW).
///
/// Lifecycle: Add() all vectors, then Build() exactly once, then Search().
/// Scores returned by Search are *similarities* under the index metric
/// (higher = closer; for cosine the actual cosine value), so callers can
/// compare them against the paper's threshold h directly.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Registers a vector under an external id. Ids must be unique; dimensions
  /// must agree across calls. Fails after Build().
  [[nodiscard]] virtual Status Add(uint64_t id, const vecmath::Vec& vector) = 0;

  /// Capacity hint: the caller expects about this many Add() calls in total.
  /// Lets implementations pre-allocate storage instead of reallocating per
  /// row. Optional — the default is a no-op.
  virtual void Reserve(size_t expected_rows) { (void)expected_rows; }

  /// Finalizes the index (graph construction, quantizer training, ...).
  [[nodiscard]] virtual Status Build() = 0;

  /// k-nearest search. Fails before Build().
  [[nodiscard]] virtual Result<std::vector<vecmath::ScoredId>> Search(
      const vecmath::Vec& query, const SearchParams& params) const = 0;

  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  virtual vecmath::Metric metric() const = 0;
  virtual std::string name() const = 0;

  /// Approximate resident bytes of the search structures, broken down by
  /// what holds them (resource-accounting gauges read this).
  virtual MemoryStats MemoryUsage() const = 0;

  /// Approximate resident bytes of the search structures (used by the
  /// storage-reduction experiments). Sum of the MemoryUsage() breakdown.
  size_t MemoryBytes() const { return MemoryUsage().total(); }
};

}  // namespace mira::index

#endif  // MIRA_INDEX_VECTOR_INDEX_H_
