#ifndef MIRA_INDEX_PRODUCT_QUANTIZER_H_
#define MIRA_INDEX_PRODUCT_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "vecmath/matrix.h"
#include "vecmath/vector_ops.h"

namespace mira::index {

/// Product Quantization (Jégou et al. [19]): splits a D-dim vector into m
/// subvectors of D/m dims each, quantizing every subvector against its own
/// k-means codebook of 2^nbits centroids. A vector compresses to m bytes
/// (nbits = 8), and query-to-code distances are computed by table lookups
/// (Asymmetric Distance Computation) instead of float dot products — the
/// storage/compute reduction the ANNS method relies on (§4.2).
struct PqOptions {
  /// Number of subquantizers m; must divide the vector dimension.
  size_t num_subquantizers = 16;
  /// Bits per code; codebook size is 2^nbits. Only 8 is supported (1 byte).
  size_t nbits = 8;
  /// k-means iterations per codebook.
  size_t train_iterations = 12;
  /// Codebooks are trained on at most this many rows (uniform deterministic
  /// sample); 0 = all rows. 256-centroid codebooks converge long before the
  /// corpus is exhausted, so sampling buys large build-time savings.
  size_t max_training_rows = 4096;
  uint64_t seed = 1234;
};

class ProductQuantizer {
 public:
  /// Trains codebooks on the rows of `training_data` (>= 2^nbits rows).
  [[nodiscard]] static Result<ProductQuantizer> Train(const vecmath::Matrix& training_data,
                                        const PqOptions& options);

  /// Quantizes a vector to m one-byte codes.
  std::vector<uint8_t> Encode(const vecmath::Vec& vector) const;

  /// Reconstructs the centroid approximation of a code sequence.
  vecmath::Vec Decode(const std::vector<uint8_t>& codes) const;

  /// Precomputed query-to-centroid table: entry [s * ksub + c] is the squared
  /// L2 distance between query subvector s and centroid c of subquantizer s.
  std::vector<float> ComputeDistanceTable(const vecmath::Vec& query) const;

  /// Same, writing into a caller-owned buffer (resized to m * ksub). Lets
  /// query loops reuse one allocation across queries.
  void ComputeDistanceTable(const vecmath::Vec& query,
                            std::vector<float>* table) const;

  /// Squared L2 distance between the query (via its distance table) and an
  /// encoded vector: the ADC sum of m table lookups.
  float AdcDistance(const std::vector<float>& table,
                    const uint8_t* codes) const;

  /// Batched ADC over `num_codes` contiguous m-byte codes starting at
  /// `codes`: out[i] = AdcDistance(table, codes + i * code_bytes()). Walks
  /// eight codes per iteration with independent accumulators and prefetches
  /// upcoming code blocks — the hot loop of PqFlatIndex::Search.
  void AdcDistanceBatch(const std::vector<float>& table, const uint8_t* codes,
                        size_t num_codes, float* out) const;

  size_t dim() const { return dim_; }
  size_t num_subquantizers() const { return m_; }
  size_t sub_dim() const { return sub_dim_; }
  size_t codebook_size() const { return ksub_; }
  size_t code_bytes() const { return m_; }

  /// Mean squared reconstruction error over the rows of `data` (diagnostic).
  double ReconstructionError(const vecmath::Matrix& data) const;

 private:
  ProductQuantizer() = default;

  size_t dim_ = 0;
  size_t m_ = 0;
  size_t sub_dim_ = 0;
  size_t ksub_ = 0;
  /// m_ codebooks, each ksub_ x sub_dim_, stored concatenated row-major:
  /// centroid c of subquantizer s starts at ((s * ksub_) + c) * sub_dim_.
  std::vector<float> codebooks_;
};

}  // namespace mira::index

#endif  // MIRA_INDEX_PRODUCT_QUANTIZER_H_
