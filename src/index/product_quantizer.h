#ifndef MIRA_INDEX_PRODUCT_QUANTIZER_H_
#define MIRA_INDEX_PRODUCT_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "vecmath/matrix.h"
#include "vecmath/vector_ops.h"

namespace mira::index {

/// Product Quantization (Jégou et al. [19]): splits a D-dim vector into m
/// subvectors of D/m dims each, quantizing every subvector against its own
/// k-means codebook of 2^nbits centroids. A vector compresses to m bytes
/// (nbits = 8) or m/2 bytes (nbits = 4, two codes per packed byte), and
/// query-to-code distances are computed by table lookups (Asymmetric
/// Distance Computation) instead of float dot products — the
/// storage/compute reduction the ANNS method relies on (§4.2).
struct PqOptions {
  /// Number of subquantizers m; must divide the vector dimension.
  size_t num_subquantizers = 16;
  /// Bits per code; codebook size is 2^nbits. Supported values:
  ///   8 — 256-centroid codebooks, one byte per code, float-table ADC.
  ///   4 — 16-centroid codebooks; codes pack two per byte into the blocked
  ///       fast-scan layout and queries scan them with register-resident
  ///       quantized LUTs (vecmath::Adc4Batch). Requires
  ///       num_subquantizers <= 257 (uint16 accumulator bound).
  size_t nbits = 8;
  /// k-means iterations per codebook.
  size_t train_iterations = 12;
  /// Codebooks are trained on at most this many rows (uniform deterministic
  /// sample); 0 = all rows. 256-centroid codebooks converge long before the
  /// corpus is exhausted, so sampling buys large build-time savings.
  size_t max_training_rows = 4096;
  uint64_t seed = 1234;
};

class ProductQuantizer {
 public:
  /// The per-query float distance table quantized to uint8 for the 4-bit
  /// fast-scan: entry [s * 16 + c] is round((table[s][c] - min_s) / scale),
  /// where min_s is subspace s's minimum and `scale` is one shared step
  /// chosen from the largest per-subspace residual (max/min over the table).
  /// A uint16 lookup sum `q` dequantizes to `bias + scale * q`, which
  /// differs from the float ADC sum by at most m * scale / 2 — the
  /// quantization error the rescoring pass absorbs.
  struct QuantizedLut {
    std::vector<uint8_t> lut;  ///< m * 16 entries, one SIMD register per row.
    float scale = 0.f;
    float bias = 0.f;
  };

  /// Trains codebooks on the rows of `training_data` (>= 2^nbits rows).
  [[nodiscard]] static Result<ProductQuantizer> Train(const vecmath::Matrix& training_data,
                                        const PqOptions& options);

  /// Quantizes a vector to m one-byte codes (each < 2^nbits).
  std::vector<uint8_t> Encode(const vecmath::Vec& vector) const;

  /// Encodes every row of `data` into `out` (row i's m codes start at
  /// out + i * code_bytes()). One scratch allocation for the whole batch
  /// instead of Encode()'s two per call — the index-build hot path.
  void EncodeBatch(const vecmath::Matrix& data, uint8_t* out) const;

  /// Reconstructs the centroid approximation of a code sequence.
  vecmath::Vec Decode(const std::vector<uint8_t>& codes) const;

  /// Precomputed query-to-centroid table: entry [s * ksub + c] is the squared
  /// L2 distance between query subvector s and centroid c of subquantizer s.
  std::vector<float> ComputeDistanceTable(const vecmath::Vec& query) const;

  /// Same, writing into a caller-owned buffer (resized to m * ksub). Lets
  /// query loops reuse one allocation across queries.
  void ComputeDistanceTable(const vecmath::Vec& query,
                            std::vector<float>* table) const;

  /// Quantizes a float distance table (nbits=4 only: m * 16 entries) into
  /// the uint8 form the fast-scan kernels consume. Reuses `out`'s storage.
  void QuantizeDistanceTable(const std::vector<float>& table,
                             QuantizedLut* out) const;

  /// Squared L2 distance between the query (via its distance table) and an
  /// encoded vector: the ADC sum of m table lookups.
  float AdcDistance(const std::vector<float>& table,
                    const uint8_t* codes) const;

  /// Batched ADC over `num_codes` contiguous m-byte codes starting at
  /// `codes`: out[i] = AdcDistance(table, codes + i * code_bytes()). Walks
  /// eight codes per iteration with independent accumulators and prefetches
  /// upcoming code blocks — the hot loop of PqFlatIndex::Search.
  void AdcDistanceBatch(const std::vector<float>& table, const uint8_t* codes,
                        size_t num_codes, float* out) const;

  size_t dim() const { return dim_; }
  size_t num_subquantizers() const { return m_; }
  size_t sub_dim() const { return sub_dim_; }
  size_t codebook_size() const { return ksub_; }
  size_t nbits() const { return nbits_; }
  /// Bytes of one *unpacked* code sequence (one byte per subquantizer, for
  /// both nbits). The 4-bit packed storage format is the index's concern
  /// (Pack4BitCodesBlocked below).
  size_t code_bytes() const { return m_; }
  /// Resident bytes of the codebook floats (the trained model).
  size_t codebook_bytes() const { return codebooks_.size() * sizeof(float); }

  /// Mean squared reconstruction error over the rows of `data` (diagnostic).
  double ReconstructionError(const vecmath::Matrix& data) const;

 private:
  ProductQuantizer() = default;

  /// Nearest-centroid sweep for one vector; `dist` is caller scratch of
  /// ksub_ floats, `out` receives m_ codes.
  void EncodeRow(const float* vector, float* dist, uint8_t* out) const;

  size_t dim_ = 0;
  size_t m_ = 0;
  size_t sub_dim_ = 0;
  size_t ksub_ = 0;
  size_t nbits_ = 8;
  /// m_ codebooks, each ksub_ x sub_dim_, stored concatenated row-major:
  /// centroid c of subquantizer s starts at ((s * ksub_) + c) * sub_dim_.
  std::vector<float> codebooks_;
};

/// Packs unpacked 4-bit codes (n rows of m one-byte codes, each < 16) into
/// the blocked fast-scan layout vecmath::Adc4Batch consumes: blocks of 32
/// vectors, sub-quantizer-major within a block, vector j's code in the low
/// nibble and vector j+16's in the high nibble of byte j of a
/// sub-quantizer's 16-byte group. The tail block is zero-padded (padding
/// lanes are computed by the kernel and discarded by the caller). Output
/// size: ceil(n / 32) * m * 16 bytes — m/2 bytes per stored vector.
void Pack4BitCodesBlocked(const uint8_t* codes, size_t n, size_t m,
                          std::vector<uint8_t>* packed);

/// Reads back the code of vector `idx`, subquantizer `s` from the blocked
/// layout — the rescore path's on-demand unpacking (the packed form is the
/// only copy kept when originals are dropped).
inline uint8_t Packed4Code(const uint8_t* packed, size_t m, size_t idx,
                           size_t s) {
  const size_t block = idx / 32;
  const size_t j = idx % 32;
  const uint8_t byte = packed[(block * m + s) * 16 + (j % 16)];
  return j < 16 ? byte & 0x0F : byte >> 4;
}

}  // namespace mira::index

#endif  // MIRA_INDEX_PRODUCT_QUANTIZER_H_
