#ifndef MIRA_INDEX_PQ_FLAT_INDEX_H_
#define MIRA_INDEX_PQ_FLAT_INDEX_H_

#include <optional>
#include <string>
#include <vector>

#include "index/product_quantizer.h"
#include "index/vector_index.h"
#include "vecmath/matrix.h"

namespace mira::index {

/// PQ-compressed linear-scan index: every vector is stored only as its PQ
/// code; queries scan all codes with ADC lookups, optionally rescoring the
/// best `rescore_factor * k` candidates against the exact vectors. Sits
/// between FlatIndex (exact, large) and HnswIndex (graph) in the ablation
/// space; demonstrates PQ's storage reduction in isolation.
///
/// With `pq.nbits == 4` the index switches to the fast-scan path: codes are
/// packed two per byte into the blocked layout of vecmath::Adc4Batch, the
/// per-query distance table is quantized to uint8 LUTs that live in SIMD
/// registers, and the scan produces a shortlist that is always rescored —
/// against the exact vectors when `rescore_factor > 0`, otherwise with the
/// float ADC table over on-demand-unpacked codes — to absorb the LUT
/// quantization error.
struct PqFlatOptions {
  PqOptions pq;
  vecmath::Metric metric = vecmath::Metric::kCosine;
  /// 0 disables exact-vector rescoring (ADC-only ranking, originals are
  /// dropped after Build); otherwise the top rescore_factor*k ADC candidates
  /// are re-ranked exactly.
  size_t rescore_factor = 4;
};

class PqFlatIndex final : public VectorIndex {
 public:
  explicit PqFlatIndex(PqFlatOptions options = {});

  [[nodiscard]] Status Add(uint64_t id, const vecmath::Vec& vector) override;
  void Reserve(size_t expected_rows) override;
  [[nodiscard]] Status Build() override;
  [[nodiscard]] Result<std::vector<vecmath::ScoredId>> Search(
      const vecmath::Vec& query, const SearchParams& params) const override;

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return dim_; }
  vecmath::Metric metric() const override { return options_.metric; }
  std::string name() const override { return "pq-flat"; }
  MemoryStats MemoryUsage() const override;

  const ProductQuantizer* quantizer() const {
    return pq_.has_value() ? &*pq_ : nullptr;
  }

 private:
  /// The nbits=4 fast-scan: quantized-LUT blocked scan over packed_codes_,
  /// then rescoring of the shortlist (exact vectors or float ADC).
  [[nodiscard]] Result<std::vector<vecmath::ScoredId>> SearchFastScan(
      const vecmath::Vec& query, const std::vector<float>& table,
      const SearchParams& params) const;

  PqFlatOptions options_;
  size_t dim_ = 0;
  std::vector<uint64_t> ids_;
  vecmath::Matrix originals_;  // kept only when rescoring is enabled
  std::optional<ProductQuantizer> pq_;
  std::vector<uint8_t> codes_;         // nbits=8: n contiguous m-byte codes
  std::vector<uint8_t> packed_codes_;  // nbits=4: blocked fast-scan layout
  bool built_ = false;
};

}  // namespace mira::index

#endif  // MIRA_INDEX_PQ_FLAT_INDEX_H_
