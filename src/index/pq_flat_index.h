#ifndef MIRA_INDEX_PQ_FLAT_INDEX_H_
#define MIRA_INDEX_PQ_FLAT_INDEX_H_

#include <optional>
#include <string>
#include <vector>

#include "index/product_quantizer.h"
#include "index/vector_index.h"
#include "vecmath/matrix.h"

namespace mira::index {

/// PQ-compressed linear-scan index: every vector is stored only as its m-byte
/// PQ code; queries scan all codes with ADC lookups, optionally rescoring the
/// best `rescore_factor * k` candidates against the exact vectors. Sits
/// between FlatIndex (exact, large) and HnswIndex (graph) in the ablation
/// space; demonstrates PQ's storage reduction in isolation.
struct PqFlatOptions {
  PqOptions pq;
  vecmath::Metric metric = vecmath::Metric::kCosine;
  /// 0 disables rescoring (pure ADC ranking); otherwise the top
  /// rescore_factor*k ADC candidates are re-ranked exactly.
  size_t rescore_factor = 4;
};

class PqFlatIndex final : public VectorIndex {
 public:
  explicit PqFlatIndex(PqFlatOptions options = {});

  [[nodiscard]] Status Add(uint64_t id, const vecmath::Vec& vector) override;
  void Reserve(size_t expected_rows) override;
  [[nodiscard]] Status Build() override;
  [[nodiscard]] Result<std::vector<vecmath::ScoredId>> Search(
      const vecmath::Vec& query, const SearchParams& params) const override;

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return dim_; }
  vecmath::Metric metric() const override { return options_.metric; }
  std::string name() const override { return "pq-flat"; }
  MemoryStats MemoryUsage() const override;

  const ProductQuantizer* quantizer() const {
    return pq_.has_value() ? &*pq_ : nullptr;
  }

 private:
  PqFlatOptions options_;
  size_t dim_ = 0;
  std::vector<uint64_t> ids_;
  vecmath::Matrix originals_;  // kept only when rescoring is enabled
  std::optional<ProductQuantizer> pq_;
  std::vector<uint8_t> codes_;
  bool built_ = false;
};

}  // namespace mira::index

#endif  // MIRA_INDEX_PQ_FLAT_INDEX_H_
