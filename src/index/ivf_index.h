#ifndef MIRA_INDEX_IVF_INDEX_H_
#define MIRA_INDEX_IVF_INDEX_H_

#include <string>
#include <vector>

#include "index/vector_index.h"
#include "vecmath/matrix.h"

namespace mira::index {

/// Inverted-file index (IVF-Flat): vectors are partitioned into `nlist`
/// k-means cells; a query scans only the `nprobe` nearest cells. The classic
/// FAISS-style alternative to HNSW — included as an ablation point between
/// brute force and graph search, and as a structural cousin of CTS (whose
/// HDBSCAN clusters play the role of learned, density-based cells).
struct IvfOptions {
  /// Number of coarse cells. 0 = ~sqrt(n) at Build time.
  size_t nlist = 0;
  /// Cells probed per query (overridable per query via SearchParams::ef).
  size_t nprobe = 8;
  size_t train_iterations = 15;
  vecmath::Metric metric = vecmath::Metric::kCosine;
  uint64_t seed = 17;
};

class IvfIndex final : public VectorIndex {
 public:
  explicit IvfIndex(IvfOptions options = {});

  [[nodiscard]] Status Add(uint64_t id, const vecmath::Vec& vector) override;
  void Reserve(size_t expected_rows) override;
  [[nodiscard]] Status Build() override;
  /// SearchParams::ef, when non-zero, overrides nprobe.
  [[nodiscard]] Result<std::vector<vecmath::ScoredId>> Search(
      const vecmath::Vec& query, const SearchParams& params) const override;

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return vectors_.cols(); }
  vecmath::Metric metric() const override { return options_.metric; }
  std::string name() const override { return "ivf-flat"; }
  MemoryStats MemoryUsage() const override;

  size_t num_lists() const { return centroids_.rows(); }
  /// Size of each inverted list (diagnostic).
  std::vector<size_t> ListSizes() const;

 private:
  IvfOptions options_;
  vecmath::Matrix vectors_;
  std::vector<uint64_t> ids_;
  vecmath::Matrix centroids_;
  /// lists_[cell] = row indices assigned to that cell.
  std::vector<std::vector<uint32_t>> lists_;
  bool built_ = false;
};

}  // namespace mira::index

#endif  // MIRA_INDEX_IVF_INDEX_H_
