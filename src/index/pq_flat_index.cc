#include "index/pq_flat_index.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/trace.h"
#include "vecmath/simd.h"

namespace mira::index {

namespace {

/// Shortlist oversampling for the nbits=4 ADC-only mode (rescore_factor == 0):
/// the quantized-LUT scan still needs a float-ADC re-rank to absorb LUT
/// quantization error, so the scan keeps this many times k candidates.
constexpr size_t kLutRescoreFactor = 4;

}  // namespace

PqFlatIndex::PqFlatIndex(PqFlatOptions options) : options_(options) {}

Status PqFlatIndex::Add(uint64_t id, const vecmath::Vec& vector) {
  if (built_) return Status::FailedPrecondition("pq-flat: index already built");
  if (options_.metric == vecmath::Metric::kDot) {
    return Status::NotImplemented("pq-flat: requires cosine or l2 metric");
  }
  if (dim_ == 0) {
    dim_ = vector.size();
  } else if (vector.size() != dim_) {
    return Status::InvalidArgument(
        StrFormat("pq-flat: dim mismatch (%zu vs %zu)", vector.size(), dim_));
  }
  if (options_.metric == vecmath::Metric::kCosine) {
    originals_.AppendRow(vecmath::Normalized(vector));
  } else {
    originals_.AppendRow(vector);
  }
  ids_.push_back(id);
  return Status::OK();
}

void PqFlatIndex::Reserve(size_t expected_rows) {
  originals_.Reserve(expected_rows);
  ids_.reserve(expected_rows);
}

Status PqFlatIndex::Build() {
  if (built_) return Status::FailedPrecondition("pq-flat: Build called twice");
  if (ids_.empty()) return Status::FailedPrecondition("pq-flat: no vectors");
  MIRA_ASSIGN_OR_RETURN(auto pq, ProductQuantizer::Train(originals_, options_.pq));
  pq_ = std::move(pq);
  codes_.resize(ids_.size() * pq_->code_bytes());
  pq_->EncodeBatch(originals_, codes_.data());
  if (pq_->nbits() == 4) {
    // Fast-scan storage: repack into the blocked two-codes-per-byte layout
    // and drop the unpacked form — the packed codes are the only copy
    // (rescoring unpacks nibbles on demand via Packed4Code).
    Pack4BitCodesBlocked(codes_.data(), ids_.size(),
                         pq_->num_subquantizers(), &packed_codes_);
    codes_ = std::vector<uint8_t>();
  }
  if (options_.rescore_factor == 0) {
    // Pure-ADC mode: exact vectors are no longer needed, drop them — this is
    // the storage saving PQ exists for.
    originals_ = vecmath::Matrix();
  }
  built_ = true;
  return Status::OK();
}

Result<std::vector<vecmath::ScoredId>> PqFlatIndex::Search(
    const vecmath::Vec& query, const SearchParams& params) const {
  if (!built_) return Status::FailedPrecondition("pq-flat: Build() not called");
  if (query.size() != dim_) {
    return Status::InvalidArgument("pq-flat: query dim mismatch");
  }
  vecmath::Vec q = options_.metric == vecmath::Metric::kCosine
                       ? vecmath::Normalized(query)
                       : query;
  std::vector<float> table = pq_->ComputeDistanceTable(q);
  if (pq_->nbits() == 4) {
    return SearchFastScan(q, table, params);
  }
  const size_t bytes = pq_->code_bytes();
  const size_t n = ids_.size();

  size_t shortlist =
      options_.rescore_factor == 0
          ? params.k
          : std::min(n, params.k * options_.rescore_factor);

  // ADC scan keeping the `shortlist` nearest codes. TopK keeps the *highest*
  // scores, so negate distances. The scan runs through the batched ADC
  // kernel in blocks so the codes stream through cache once.
  obs::TraceSpan span("pq.adc_scan");
  span.AddCounter("codes_decoded", static_cast<int64_t>(n));
  span.AddCounter("rescored", static_cast<int64_t>(
                                  options_.rescore_factor == 0 ? 0 : shortlist));
  vecmath::TopK adc_top(shortlist);
  constexpr size_t kBlock = 1024;
  // Amortized budget check: every 16 blocks = 16k codes between checks.
  constexpr size_t kControlStride = 16;
  std::vector<float> dist(std::min(kBlock, n));
  size_t block_idx = 0;
  for (size_t start = 0; start < n; start += kBlock, ++block_idx) {
    if (params.control != nullptr && block_idx % kControlStride == 0) {
      Status budget = params.control->Check("pq.adc_scan");
      if (!budget.ok()) return budget;
    }
    const size_t count = std::min(kBlock, n - start);
    pq_->AdcDistanceBatch(table, codes_.data() + start * bytes, count,
                          dist.data());
    for (size_t j = 0; j < count; ++j) {
      adc_top.Push(start + j, -dist[j]);  // id slot reused as internal row
    }
  }
  std::vector<vecmath::ScoredId> shortlist_rows = adc_top.Take();

  auto to_similarity = [this](float sq_l2) {
    return options_.metric == vecmath::Metric::kCosine ? 1.0f - sq_l2 / 2.0f
                                                       : -sq_l2;
  };

  std::vector<vecmath::ScoredId> out;
  if (options_.rescore_factor == 0) {
    out.reserve(shortlist_rows.size());
    for (const auto& row : shortlist_rows) {
      out.push_back({ids_[row.id], to_similarity(-row.score)});
    }
    return out;
  }

  vecmath::TopK exact_top(params.k);
  for (const auto& row : shortlist_rows) {
    float d = vecmath::SquaredL2(q.data(), originals_.Row(row.id), dim_);
    exact_top.Push(row.id, -d);
  }
  std::vector<vecmath::ScoredId> best = exact_top.Take();
  out.reserve(best.size());
  for (const auto& row : best) {
    out.push_back({ids_[row.id], to_similarity(-row.score)});
  }
  return out;
}

Result<std::vector<vecmath::ScoredId>> PqFlatIndex::SearchFastScan(
    const vecmath::Vec& q, const std::vector<float>& table,
    const SearchParams& params) const {
  const size_t n = ids_.size();
  const size_t m = pq_->num_subquantizers();
  ProductQuantizer::QuantizedLut qlut;
  pq_->QuantizeDistanceTable(table, &qlut);

  // The quantized scan always feeds a rescoring pass (LUT quantization error
  // makes its ranking a shortlist, not an answer): exact vectors when they
  // were kept, the float ADC table otherwise.
  const size_t factor = options_.rescore_factor == 0 ? kLutRescoreFactor
                                                     : options_.rescore_factor;
  const size_t shortlist = std::min(n, std::max(params.k, params.k * factor));

  obs::TraceSpan span("pq.adc_scan");
  span.AddCounter("codes_decoded", static_cast<int64_t>(n));
  span.AddCounter("rescored", static_cast<int64_t>(shortlist));

  // Blocked quantized-LUT scan: the kernel consumes whole 32-code blocks
  // (tail padding lanes are simply never read back), chunked so the uint16
  // buffer stays cache-resident and the budget check keeps the existing
  // ~16k-codes-between-checks cadence of the 8-bit path.
  vecmath::TopK adc_top(shortlist);
  const size_t num_blocks = (n + 31) / 32;
  constexpr size_t kChunkBlocks = 32;    // 1024 codes per kernel call
  constexpr size_t kControlStride = 16;  // every 16 chunks = 16k codes
  std::vector<uint16_t> qdist(kChunkBlocks * 32);
  size_t chunk_idx = 0;
  for (size_t block = 0; block < num_blocks;
       block += kChunkBlocks, ++chunk_idx) {
    if (params.control != nullptr && chunk_idx % kControlStride == 0) {
      Status budget = params.control->Check("pq.adc_scan");
      if (!budget.ok()) return budget;
    }
    const size_t blocks_now = std::min(kChunkBlocks, num_blocks - block);
    vecmath::Adc4Batch(qlut.lut.data(), packed_codes_.data() + block * m * 16,
                       blocks_now, m, qdist.data());
    const size_t base = block * 32;
    const size_t count = std::min(blocks_now * 32, n - base);
    for (size_t j = 0; j < count; ++j) {
      const float d = qlut.bias + qlut.scale * static_cast<float>(qdist[j]);
      adc_top.Push(base + j, -d);
    }
  }
  std::vector<vecmath::ScoredId> shortlist_rows = adc_top.Take();

  auto to_similarity = [this](float sq_l2) {
    return options_.metric == vecmath::Metric::kCosine ? 1.0f - sq_l2 / 2.0f
                                                       : -sq_l2;
  };

  vecmath::TopK exact_top(params.k);
  if (options_.rescore_factor > 0) {
    for (const auto& row : shortlist_rows) {
      float d = vecmath::SquaredL2(q.data(), originals_.Row(row.id), dim_);
      exact_top.Push(row.id, -d);
    }
  } else {
    // Float-ADC re-rank over on-demand-unpacked codes: exact on the float
    // table's domain, so only the PQ approximation itself remains.
    const uint8_t* packed = packed_codes_.data();
    for (const auto& row : shortlist_rows) {
      float d = 0.f;
      for (size_t s = 0; s < m; ++s) {
        d += table[s * 16 + Packed4Code(packed, m, row.id, s)];
      }
      exact_top.Push(row.id, -d);
    }
  }
  std::vector<vecmath::ScoredId> best = exact_top.Take();
  std::vector<vecmath::ScoredId> out;
  out.reserve(best.size());
  for (const auto& row : best) {
    out.push_back({ids_[row.id], to_similarity(-row.score)});
  }
  return out;
}

MemoryStats PqFlatIndex::MemoryUsage() const {
  MemoryStats stats;
  stats.vectors_bytes = originals_.data().size() * sizeof(float);
  stats.ids_bytes = ids_.size() * sizeof(uint64_t);
  // Payload (grows with n) and model (fixed) reported separately so the
  // mira.mem.* gauges can tell them apart.
  stats.codes_bytes = codes_.size() + packed_codes_.size();
  stats.codebook_bytes = pq_ ? pq_->codebook_bytes() : 0;
  return stats;
}

}  // namespace mira::index
