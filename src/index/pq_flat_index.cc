#include "index/pq_flat_index.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/trace.h"

namespace mira::index {

PqFlatIndex::PqFlatIndex(PqFlatOptions options) : options_(options) {}

Status PqFlatIndex::Add(uint64_t id, const vecmath::Vec& vector) {
  if (built_) return Status::FailedPrecondition("pq-flat: index already built");
  if (options_.metric == vecmath::Metric::kDot) {
    return Status::NotImplemented("pq-flat: requires cosine or l2 metric");
  }
  if (dim_ == 0) {
    dim_ = vector.size();
  } else if (vector.size() != dim_) {
    return Status::InvalidArgument(
        StrFormat("pq-flat: dim mismatch (%zu vs %zu)", vector.size(), dim_));
  }
  if (options_.metric == vecmath::Metric::kCosine) {
    originals_.AppendRow(vecmath::Normalized(vector));
  } else {
    originals_.AppendRow(vector);
  }
  ids_.push_back(id);
  return Status::OK();
}

void PqFlatIndex::Reserve(size_t expected_rows) {
  originals_.Reserve(expected_rows);
  ids_.reserve(expected_rows);
}

Status PqFlatIndex::Build() {
  if (built_) return Status::FailedPrecondition("pq-flat: Build called twice");
  if (ids_.empty()) return Status::FailedPrecondition("pq-flat: no vectors");
  MIRA_ASSIGN_OR_RETURN(auto pq, ProductQuantizer::Train(originals_, options_.pq));
  pq_ = std::move(pq);
  codes_.resize(ids_.size() * pq_->code_bytes());
  for (size_t i = 0; i < ids_.size(); ++i) {
    std::vector<uint8_t> code = pq_->Encode(originals_.RowVec(i));
    std::copy(code.begin(), code.end(), codes_.begin() + i * pq_->code_bytes());
  }
  if (options_.rescore_factor == 0) {
    // Pure-ADC mode: exact vectors are no longer needed, drop them — this is
    // the storage saving PQ exists for.
    originals_ = vecmath::Matrix();
  }
  built_ = true;
  return Status::OK();
}

Result<std::vector<vecmath::ScoredId>> PqFlatIndex::Search(
    const vecmath::Vec& query, const SearchParams& params) const {
  if (!built_) return Status::FailedPrecondition("pq-flat: Build() not called");
  if (query.size() != dim_) {
    return Status::InvalidArgument("pq-flat: query dim mismatch");
  }
  vecmath::Vec q = options_.metric == vecmath::Metric::kCosine
                       ? vecmath::Normalized(query)
                       : query;
  std::vector<float> table = pq_->ComputeDistanceTable(q);
  const size_t bytes = pq_->code_bytes();
  const size_t n = ids_.size();

  size_t shortlist =
      options_.rescore_factor == 0
          ? params.k
          : std::min(n, params.k * options_.rescore_factor);

  // ADC scan keeping the `shortlist` nearest codes. TopK keeps the *highest*
  // scores, so negate distances. The scan runs through the batched ADC
  // kernel in blocks so the codes stream through cache once.
  obs::TraceSpan span("pq.adc_scan");
  span.AddCounter("codes_decoded", static_cast<int64_t>(n));
  span.AddCounter("rescored", static_cast<int64_t>(
                                  options_.rescore_factor == 0 ? 0 : shortlist));
  vecmath::TopK adc_top(shortlist);
  constexpr size_t kBlock = 1024;
  // Amortized budget check: every 16 blocks = 16k codes between checks.
  constexpr size_t kControlStride = 16;
  std::vector<float> dist(std::min(kBlock, n));
  size_t block_idx = 0;
  for (size_t start = 0; start < n; start += kBlock, ++block_idx) {
    if (params.control != nullptr && block_idx % kControlStride == 0) {
      Status budget = params.control->Check("pq.adc_scan");
      if (!budget.ok()) return budget;
    }
    const size_t count = std::min(kBlock, n - start);
    pq_->AdcDistanceBatch(table, codes_.data() + start * bytes, count,
                          dist.data());
    for (size_t j = 0; j < count; ++j) {
      adc_top.Push(start + j, -dist[j]);  // id slot reused as internal row
    }
  }
  std::vector<vecmath::ScoredId> shortlist_rows = adc_top.Take();

  auto to_similarity = [this](float sq_l2) {
    return options_.metric == vecmath::Metric::kCosine ? 1.0f - sq_l2 / 2.0f
                                                       : -sq_l2;
  };

  std::vector<vecmath::ScoredId> out;
  if (options_.rescore_factor == 0) {
    out.reserve(shortlist_rows.size());
    for (const auto& row : shortlist_rows) {
      out.push_back({ids_[row.id], to_similarity(-row.score)});
    }
    return out;
  }

  vecmath::TopK exact_top(params.k);
  for (const auto& row : shortlist_rows) {
    float d = vecmath::SquaredL2(q.data(), originals_.Row(row.id), dim_);
    exact_top.Push(row.id, -d);
  }
  std::vector<vecmath::ScoredId> best = exact_top.Take();
  out.reserve(best.size());
  for (const auto& row : best) {
    out.push_back({ids_[row.id], to_similarity(-row.score)});
  }
  return out;
}

MemoryStats PqFlatIndex::MemoryUsage() const {
  MemoryStats stats;
  stats.vectors_bytes = originals_.data().size() * sizeof(float);
  stats.ids_bytes = ids_.size() * sizeof(uint64_t);
  stats.codes_bytes = codes_.size() +
                      (pq_ ? pq_->num_subquantizers() * pq_->codebook_size() *
                                 pq_->sub_dim() * sizeof(float)
                           : 0);
  return stats;
}

}  // namespace mira::index
