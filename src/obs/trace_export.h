#ifndef MIRA_OBS_TRACE_EXPORT_H_
#define MIRA_OBS_TRACE_EXPORT_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "obs/trace.h"

namespace mira::obs {

/// Per-query annotations carried into the exported trace as args on the root
/// span (mirrors Ranking::degraded/partial and the deadline bookkeeping that
/// docs/ROBUSTNESS.md specifies).
struct TraceAnnotations {
  std::string method;           ///< "ExS" / "ANNS" / "CTS" (may be empty).
  bool degraded = false;        ///< Reduced-effort answer under a deadline.
  bool partial = false;         ///< Corpus not fully scanned.
  bool cancelled = false;       ///< Query was cancelled mid-flight.
  double budget_consumed = -1;  ///< Deadline fraction spent, <0 = unbounded.
};

/// Serializes QueryTraces into the Chrome/Perfetto `trace_event` JSON format
/// (the "JSON Array Format"): load the written file in chrome://tracing or
/// ui.perfetto.dev. Each AddQuery call becomes one process row (pid = query
/// ordinal); inside it, tid 0 is the query thread and every worker thread
/// that contributed spans through a traced ParallelFor gets its own lane.
/// Span counters and labels become event args; TraceAnnotations become args
/// on the query's root span.
///
/// Not thread-safe; build on one thread, then write.
class ChromeTraceWriter {
 public:
  /// Appends one query's span tree. Empty traces are skipped (returns the
  /// pid that was or would have been assigned).
  int AddQuery(const QueryTrace& trace, const TraceAnnotations& annotations);
  int AddQuery(const QueryTrace& trace) { return AddQuery(trace, {}); }

  /// The accumulated JSON document (a well-formed trace_event array, valid
  /// even when empty).
  std::string ToJson() const;
  [[nodiscard]] Status WriteFile(const std::string& path) const;

  size_t num_queries() const { return static_cast<size_t>(next_pid_); }
  size_t num_events() const { return num_events_; }

 private:
  void AppendEvent(const std::string& event);

  std::string events_;  ///< Comma-joined serialized events.
  int next_pid_ = 0;
  size_t num_events_ = 0;
};

/// One-shot convenience: a single trace as a complete Chrome trace document.
std::string ChromeTraceJson(const QueryTrace& trace,
                            const TraceAnnotations& annotations = {});

}  // namespace mira::obs

#endif  // MIRA_OBS_TRACE_EXPORT_H_
