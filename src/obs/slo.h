#ifndef MIRA_OBS_SLO_H_
#define MIRA_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/windowed.h"

namespace mira::obs {

/// Objective health, worst first when sorting.
enum class SloState { kOk = 0, kWarning = 1, kBreach = 2 };

std::string_view SloStateToString(SloState state);

/// One declarative service-level objective over registered metrics.
///
/// Two kinds share the burn-rate math ("what fraction of the error budget is
/// the current window consuming, relative to steady-state"):
///  - kRatio: bad events / total events (e.g. shed fraction ≤ 1%). `bad` and
///    `total` are counter-name lists whose windowed deltas are summed.
///  - kLatency: observations above `threshold_ms` in `histogram` count as
///    bad; total is the window's observation count. target_fraction = 1 - q
///    expresses "p<q> ≤ threshold" (e.g. 0.01 for a p99 bound).
///
/// burn = bad_fraction / target_fraction — a burn of 1 means the budget is
/// being consumed exactly at the sustainable rate; 10 means ten times too
/// fast (the Google-SRE multiwindow alerting convention).
struct SloObjective {
  enum class Kind { kRatio = 0, kLatency = 1 };

  std::string name;
  Kind kind = Kind::kRatio;

  /// kRatio inputs.
  std::vector<std::string> bad_counters;
  std::vector<std::string> total_counters;

  /// kLatency inputs.
  std::string histogram;
  double threshold_ms = 5.0;

  /// Allowed bad fraction (the error budget), in (0, 1].
  double target_fraction = 0.01;

  /// Multiwindow burn-rate alerting: the fast window reacts, the slow window
  /// confirms (and provides hysteresis on recovery).
  double fast_window_s = 60.0;
  double slow_window_s = 300.0;
  /// Burn thresholds: warning when either window burns >= warn_burn, breach
  /// when the fast window burns >= breach_burn while the slow window also
  /// burns >= warn_burn.
  double warn_burn = 1.0;
  double breach_burn = 10.0;
};

/// Point-in-time evaluation of one objective.
struct SloStatus {
  std::string name;
  SloState state = SloState::kOk;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  double bad_fraction_fast = 0.0;  ///< Raw bad fraction in the fast window.
  uint64_t total_fast = 0;         ///< Events seen in the fast window.
  double target_fraction = 0.0;
  bool measurable = false;  ///< False until the windows hold >= 2 samples.
};

/// One state-machine transition, kept in a bounded history for /slozz and
/// offline analysis.
struct SloTransition {
  double time_s = 0.0;
  std::string objective;
  SloState from = SloState::kOk;
  SloState to = SloState::kOk;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
};

/// Background evaluator of declarative SLOs over a WindowedMetrics engine.
///
/// Each evaluation ticks the windows (capturing one cumulative sample of
/// every metric the objectives reference) and recomputes per-objective
/// multi-window burn rates. State transitions are logged, appended to a
/// bounded history, recorded in the global QueryLog (method "slo", the
/// objective's name in the tenant field), and exported as gauges:
///
///   mira.slo.<name>.state       0 ok / 1 warning / 2 breach
///   mira.slo.<name>.burn_fast   fast-window burn rate
///   mira.slo.<name>.burn_slow   slow-window burn rate
///
/// Lifecycle: construct → AddObjective()* → Start() → ... → Stop(). Tests
/// drive the state machine deterministically with Step(now_s) instead of
/// Start(), feeding a fake clock.
class SloEngine {
 public:
  struct Options {
    /// Evaluation (and window-tick) cadence of the background thread.
    double eval_interval_s = 1.0;
    /// Bounded transition history length.
    size_t max_history = 64;
    /// Record transitions in the global QueryLog.
    bool record_query_log = true;
    MetricRegistry* registry = nullptr;  ///< Default: the process-global.
  };

  /// `windows` must outlive the engine; the engine ticks it (callers must
  /// not also tick concurrently — Step/the background thread own cadence).
  SloEngine(WindowedMetrics* windows, Options options);
  ~SloEngine();

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Registers an objective and tracks its metrics in the windows. Call
  /// before Start().
  void AddObjective(SloObjective objective);

  /// Spawns the background evaluation thread. No-op if already running.
  void Start();
  /// Stops and joins. Idempotent; the destructor calls it.
  void Stop();
  bool running() const;

  /// One synchronous tick + evaluation at `now_s` (monotonic seconds) — the
  /// deterministic seam the background loop also goes through.
  void Step(double now_s);

  /// Latest evaluation results, one per objective (objective order).
  std::vector<SloStatus> Statuses() const;
  /// Bounded transition history, oldest first.
  std::vector<SloTransition> History() const;
  uint64_t evaluations() const;

  const Options& options() const { return options_; }

 private:
  struct Tracked {
    SloObjective objective;
    SloState state = SloState::kOk;
    SloStatus last;
    Gauge* state_gauge = nullptr;
    Gauge* burn_fast_gauge = nullptr;
    Gauge* burn_slow_gauge = nullptr;
  };

  void Loop();
  /// Burn rate of `objective` over one window; false when unmeasurable.
  bool WindowBurn(const SloObjective& objective, double window_s,
                  double* burn, double* bad_fraction, uint64_t* total) const;
  void Evaluate(double now_s) MIRA_REQUIRES(eval_mu_);

  WindowedMetrics* windows_;
  Options options_;

  /// Serializes Step/Evaluate (ticking + state transitions) against
  /// concurrent Step callers; Statuses/History take only state_mu_.
  Mutex eval_mu_;
  std::vector<Tracked> tracked_ MIRA_GUARDED_BY(eval_mu_);

  mutable Mutex state_mu_;
  std::vector<SloStatus> statuses_ MIRA_GUARDED_BY(state_mu_);
  std::deque<SloTransition> history_ MIRA_GUARDED_BY(state_mu_);
  uint64_t evaluations_ MIRA_GUARDED_BY(state_mu_) = 0;

  mutable Mutex thread_mu_;
  CondVar wake_;
  std::thread thread_ MIRA_GUARDED_BY(thread_mu_);
  bool running_ MIRA_GUARDED_BY(thread_mu_) = false;
  bool stop_requested_ MIRA_GUARDED_BY(thread_mu_) = false;
};

}  // namespace mira::obs

#endif  // MIRA_OBS_SLO_H_
