#ifndef MIRA_OBS_CPU_PROFILER_H_
#define MIRA_OBS_CPU_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "obs/trace.h"  // for the MIRA_OBS_ENABLED toggle

namespace mira::obs {

/// Knobs for one profiling run. The defaults (99 Hz for ~1 s) are the
/// classic flamegraph recipe: a prime frequency avoids lockstep with
/// millisecond-periodic work, and ~100 samples resolve any hot path that is
/// worth looking at.
struct CpuProfileOptions {
  /// SIGPROF delivery rate. ITIMER_PROF ticks in *process CPU time*, so an
  /// idle process produces no samples — drive load while profiling.
  int frequency_hz = 99;
  /// Wall-clock capture window. Clamped to [0.1, 60] by Collect.
  double duration_seconds = 1.0;
  /// Ring capacity; samples past this are counted as dropped, not captured.
  /// 0 means "size for frequency * duration with generous headroom".
  uint32_t max_samples = 0;
};

/// Result of one profiling run, fully symbolized (no live pointers).
struct CpuProfile {
  /// Collapsed/folded stacks, one line per distinct stack:
  ///   "root;caller;leaf <count>\n"
  /// — the exact input format of Brendan Gregg's flamegraph.pl and of
  /// speedscope's "folded" importer. Lines are sorted by stack string, so
  /// identical profiles serialize identically.
  std::string folded;
  uint64_t samples_captured = 0;
  /// Samples lost because the ring filled (raise max_samples if non-zero).
  uint64_t samples_dropped = 0;
  /// Samples whose interrupted thread had a ScopedTrace armed, keyed by its
  /// query tag (internal::CurrentQueryTag); samples on untraced threads land
  /// under tag 0. Lets a profile be sliced per query.
  std::map<uint64_t, uint64_t> samples_by_query_tag;
  double duration_seconds = 0.0;
  int frequency_hz = 0;
};

#if MIRA_OBS_ENABLED

/// Runs one SIGPROF sampling profile over the whole process and blocks until
/// the capture window closes, then symbolizes off the hot path and fills
/// `*out`.
///
/// How it works: a process-wide SIGPROF handler captures `backtrace()` frames
/// plus the interrupted thread's query tag into a pre-allocated lock-free
/// slot ring (one fetch_add per sample, drop-on-full — the handler never
/// allocates, locks, or touches errno-visible state). When the window closes
/// the handler is torn down with an in-handler refcount handshake, and
/// symbolization (`dladdr` + demangling) runs on the calling thread.
///
/// Exactly one profile may be active at a time; a second concurrent call
/// returns Unavailable without touching the running capture. The calling
/// thread only sleeps, so the profile measures the workload, not the
/// profiler. Binaries that want kernel-level symbols resolved must export
/// their symbols (CMake `ENABLE_EXPORTS`, i.e. `-rdynamic`); unresolvable
/// frames degrade to "<binary>+0x<offset>" rather than failing.
[[nodiscard]] Status CollectCpuProfile(const CpuProfileOptions& options,
                                       CpuProfile* out);

/// True while some thread is inside CollectCpuProfile — the single-active
/// guard observable, e.g. for /statusz.
bool CpuProfileActive();

#else  // !MIRA_OBS_ENABLED

[[nodiscard]] inline Status CollectCpuProfile(const CpuProfileOptions& /*options*/,
                                              CpuProfile* /*out*/) {
  return Status::NotImplemented("cpu profiler compiled out (MIRA_OBS=OFF)");
}

inline bool CpuProfileActive() { return false; }

#endif  // MIRA_OBS_ENABLED

}  // namespace mira::obs

#endif  // MIRA_OBS_CPU_PROFILER_H_
