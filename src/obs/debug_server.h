#ifndef MIRA_OBS_DEBUG_SERVER_H_
#define MIRA_OBS_DEBUG_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/trace.h"  // for the MIRA_OBS_ENABLED toggle

namespace mira::obs {

struct DebugServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port() after Start).
  uint16_t port = 0;
  /// Loopback by default: debugz pages expose internals and must not be
  /// reachable off-host unless a deployment explicitly opts in.
  std::string bind_address = "127.0.0.1";
  /// Handler threads. Each thread serves one connection at a time
  /// (accept -> respond -> close), so this bounds concurrent connections
  /// with no queueing machinery.
  int num_threads = 2;
};

#if MIRA_OBS_ENABLED

/// Dependency-free embedded HTTP/1.1 debug server ("debugz"): plain POSIX
/// sockets, GET only, one response per connection. Endpoints:
///
///   /          index page linking everything below
///   /healthz   liveness + degradation summary (text)
///   /statusz   build info, uptime, registered status sections (html)
///   /metricsz  Prometheus text exposition (MetricRegistry::ExportText)
///   /varz      metrics as JSON (MetricRegistry::ExportJson)
///   /querylogz recent QueryLog entries (html table; ?format=jsonl raw)
///   /tracez    promoted slow-query traces (?id=N&format=chrome downloads
///              a Chrome-trace JSON document)
///   /memz      mira.mem.* resource-gauge breakdown (text)
///   /profilez  on-demand CPU profile, folded stacks (?seconds=N&hz=F)
///
/// Everything renders from snapshots the observability layer already
/// maintains lock-free (metrics atomics, the QueryLog seqlock ring), so
/// serving a page never takes a lock a query path can block on.
///
/// Thread-safety: Start/Stop are for the owning thread (construction /
/// shutdown); AddCollector/AddStatusSection may race with serving threads
/// and are guarded. The destructor calls Stop().
class DebugServer {
 public:
  DebugServer() = default;
  ~DebugServer();

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Binds, listens, and spawns the handler threads. Fails (without leaking
  /// a socket) if the port is taken or the server is already running.
  [[nodiscard]] Status Start(const DebugServerOptions& options);

  /// Unblocks the handler threads (via shutdown(2) on the listening socket)
  /// and joins them. Idempotent; safe on a never-started server.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolved when options.port was 0); 0 if not running.
  uint16_t port() const { return port_; }
  /// Total HTTP requests served since Start.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Registers a refresh hook that runs before /metricsz, /varz, /memz,
  /// /statusz, or /healthz render — the place to re-publish point-in-time
  /// gauges (e.g. DiscoveryEngine::PublishResourceMetrics). Hooks must be
  /// thread-safe: serving threads invoke them concurrently.
  void AddCollector(std::function<void()> collector);

  /// Adds a named plain-text block to /statusz (SIMD dispatch tier, pool
  /// load, ...). Keeps the obs layer dependency-free: layers that know about
  /// vecmath or engines register sections instead of being linked in.
  void AddStatusSection(std::string title, std::function<std::string()> render);

  /// Registers a whole extra plain-text page (e.g. the service layer's
  /// /servicez). `path` must start with '/'; the page is listed on the index
  /// and wins over the 404 handler. Renderers must be thread-safe: serving
  /// threads invoke them concurrently. Re-registering a path replaces the
  /// renderer.
  void AddPage(std::string path, std::string description,
               std::function<std::string()> render);

 private:
  void ServeLoop();

  int listen_fd_ = -1;  ///< Written by Start before threads spawn.
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::vector<std::thread> threads_;

  mutable Mutex mu_;
  std::vector<std::function<void()>> collectors_ MIRA_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::function<std::string()>>>
      sections_ MIRA_GUARDED_BY(mu_);
  struct Page {
    std::string path;
    std::string description;
    std::function<std::string()> render;
  };
  std::vector<Page> pages_ MIRA_GUARDED_BY(mu_);
};

#else  // !MIRA_OBS_ENABLED

/// MIRA_OBS=OFF stub: same surface, Start reports the feature is compiled
/// out, every accessor reads as "not running".
class DebugServer {
 public:
  [[nodiscard]] Status Start(const DebugServerOptions& /*options*/) {
    return Status::NotImplemented("debug server compiled out (MIRA_OBS=OFF)");
  }
  void Stop() {}
  bool running() const { return false; }
  uint16_t port() const { return 0; }
  uint64_t requests_served() const { return 0; }
  void AddCollector(std::function<void()> /*collector*/) {}
  void AddStatusSection(std::string /*title*/,
                        std::function<std::string()> /*render*/) {}
  void AddPage(std::string /*path*/, std::string /*description*/,
               std::function<std::string()> /*render*/) {}
};

#endif  // MIRA_OBS_ENABLED

}  // namespace mira::obs

#endif  // MIRA_OBS_DEBUG_SERVER_H_
