#include "obs/cpu_profiler.h"

#if MIRA_OBS_ENABLED

#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sched.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace mira::obs {

namespace {

/// One raw sample as written by the signal handler: frames only, no strings.
/// Plain (non-atomic) fields are safe because each slot has exactly one
/// writer (the handler invocation that claimed it via fetch_add) and readers
/// only run after teardown proves no handler is still in flight.
struct SampleSlot {
  static constexpr int kMaxDepth = 64;
  int depth = 0;
  uint64_t query_tag = 0;
  void* frames[kMaxDepth];
};

/// Everything the SIGPROF handler touches. Allocated and published by
/// Collect; the handler reaches it through one acquire load of g_state.
struct ProfilerState {
  explicit ProfilerState(uint32_t cap) : capacity(cap), slots(cap) {}

  const uint32_t capacity;
  std::atomic<uint32_t> next_slot{0};
  std::atomic<uint64_t> dropped{0};
  std::vector<SampleSlot> slots;
};

/// nullptr while no profile is running. The handler stays installed only for
/// the capture window, but the pointer (not the handler) is the on/off
/// switch, so teardown can stop sampling before uninstalling anything.
std::atomic<ProfilerState*> g_state{nullptr};

/// Count of SIGPROF handlers currently executing, anywhere in the process.
/// Teardown clears g_state, then spins until this drops to zero — after
/// that, no handler can still hold the state pointer and the slots are
/// plain memory again.
std::atomic<int> g_in_handler{0};

/// Single-active-profile guard.
std::atomic<bool> g_profiling{false};

/// Async-signal-safe by construction: one acquire load, one fetch_add, one
/// backtrace() into preallocated storage, one TLS read. backtrace() is
/// handler-safe once libgcc is resident — Collect pre-warms it before
/// arming the timer.
void SigprofHandler(int /*signum*/) {
  g_in_handler.fetch_add(1, std::memory_order_acq_rel);
  ProfilerState* state = g_state.load(std::memory_order_acquire);
  if (state != nullptr) {
    const int saved_errno = errno;
    const uint32_t slot =
        state->next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot < state->capacity) {
      SampleSlot& sample = state->slots[slot];
      sample.depth = backtrace(sample.frames, SampleSlot::kMaxDepth);
      sample.query_tag = internal::CurrentQueryTag();
    } else {
      state->dropped.fetch_add(1, std::memory_order_relaxed);
    }
    errno = saved_errno;
  }
  g_in_handler.fetch_sub(1, std::memory_order_release);
}

/// Frames at the top of every sample that belong to the sampling machinery,
/// not the workload: the handler itself and the kernel signal trampoline.
bool IsProfilerFrame(std::string_view name) {
  return name.find("SigprofHandler") != std::string_view::npos ||
         name.find("__restore_rt") != std::string_view::npos ||
         name.find("killpg") != std::string_view::npos;
}

/// Resolves one return address to a human-readable frame name. Runs off the
/// hot path (after capture), so dladdr + __cxa_demangle are fine here.
std::string SymbolizeFrame(void* address) {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (dladdr(address, &info) != 0 && info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);  // __cxa_demangle hands out malloc'd storage
      return name;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
  // No symbol: fall back to "<object>+0x<offset>" so the frame still groups
  // stably across samples.
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    const uintptr_t offset =
        reinterpret_cast<uintptr_t>(address) -
        reinterpret_cast<uintptr_t>(info.dli_fbase);
    return StrFormat("%s+0x%zx", base != nullptr ? base + 1 : info.dli_fname,
                     static_cast<size_t>(offset));
  }
  return StrFormat("0x%zx", reinterpret_cast<size_t>(address));
}

/// Semicolons and newlines are structural in the folded format; scrub them
/// out of frame names (templated symbols never contain either, but fallback
/// paths could).
void SanitizeFrameName(std::string* name) {
  for (char& c : *name) {
    if (c == ';' || c == '\n' || c == '\r') c = '_';
  }
}

}  // namespace

bool CpuProfileActive() {
  return g_profiling.load(std::memory_order_relaxed);
}

Status CollectCpuProfile(const CpuProfileOptions& options, CpuProfile* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("cpu profiler: out must be non-null");
  }
  if (options.frequency_hz < 1 || options.frequency_hz > 1000) {
    return Status::InvalidArgument(
        "cpu profiler: frequency_hz must be in [1, 1000]");
  }
  const double duration =
      std::clamp(options.duration_seconds, 0.1, 60.0);

  bool expected = false;
  if (!g_profiling.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    return Status::Unavailable("cpu profiler: a profile is already running");
  }
  // From here on every exit path must release the guard.
  struct GuardRelease {
    ~GuardRelease() { g_profiling.store(false, std::memory_order_release); }
  } guard_release;

  // Pre-warm backtrace: its first call lazily loads libgcc with a non-
  // signal-safe dlopen. One throwaway capture here moves that work out of
  // the handler.
  {
    void* warm[4];
    (void)backtrace(warm, 4);
  }

  const uint32_t expected_samples = static_cast<uint32_t>(
      static_cast<double>(options.frequency_hz) * duration);
  const uint32_t capacity =
      options.max_samples != 0
          ? options.max_samples
          : std::max<uint32_t>(4096, expected_samples * 8);
  auto state = std::make_unique<ProfilerState>(capacity);

  // Install the handler, then arm the timer, then publish the state. SIGPROF
  // delivered between the first two steps hits a handler that sees a null
  // state and does nothing.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &SigprofHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  struct sigaction previous_action;
  if (sigaction(SIGPROF, &action, &previous_action) != 0) {
    return Status::Internal("cpu profiler: sigaction(SIGPROF) failed");
  }
  g_state.store(state.get(), std::memory_order_release);

  const long interval_usec =
      std::max<long>(1, 1000000L / options.frequency_hz);
  struct itimerval timer;
  timer.it_interval.tv_sec = interval_usec / 1000000L;
  timer.it_interval.tv_usec = interval_usec % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_state.store(nullptr, std::memory_order_release);
    sigaction(SIGPROF, &previous_action, nullptr);
    return Status::Internal("cpu profiler: setitimer(ITIMER_PROF) failed");
  }

  // The capture window is wall time; ITIMER_PROF itself only ticks while the
  // process burns CPU, so this thread sleeping costs nothing. nanosleep is
  // never restarted by SA_RESTART, hence the deadline loop.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration);
  while (std::chrono::steady_clock::now() < deadline) {
    struct timespec nap{0, 10 * 1000 * 1000};  // 10 ms
    nanosleep(&nap, nullptr);
  }

  // Teardown handshake: disarm the timer, unpublish the state, then wait for
  // every in-flight handler to drain before touching the slots or restoring
  // the previous disposition.
  struct itimerval disarm;
  std::memset(&disarm, 0, sizeof(disarm));
  setitimer(ITIMER_PROF, &disarm, nullptr);
  g_state.store(nullptr, std::memory_order_release);
  while (g_in_handler.load(std::memory_order_acquire) != 0) sched_yield();
  sigaction(SIGPROF, &previous_action, nullptr);

  // Symbolize. Distinct return addresses number in the hundreds even for
  // tens of thousands of samples, so cache per address.
  const uint32_t claimed = state->next_slot.load(std::memory_order_relaxed);
  const uint32_t captured = std::min(claimed, state->capacity);
  std::unordered_map<void*, std::string> symbol_cache;
  symbol_cache.reserve(256);
  const auto frame_name = [&symbol_cache](void* address) -> const std::string& {
    auto it = symbol_cache.find(address);
    if (it == symbol_cache.end()) {
      std::string name = SymbolizeFrame(address);
      SanitizeFrameName(&name);
      it = symbol_cache.emplace(address, std::move(name)).first;
    }
    return it->second;
  };

  std::map<std::string, uint64_t> folded_counts;
  out->samples_by_query_tag.clear();
  for (uint32_t s = 0; s < captured; ++s) {
    const SampleSlot& sample = state->slots[s];
    // backtrace() records leaf-first and its first frames are the handler
    // plus the signal trampoline; skip that prefix, then emit root-first.
    int first_real = 0;
    while (first_real < sample.depth &&
           IsProfilerFrame(frame_name(sample.frames[first_real]))) {
      ++first_real;
    }
    if (first_real >= sample.depth) continue;  // nothing but machinery
    std::string stack;
    for (int f = sample.depth - 1; f >= first_real; --f) {
      if (!stack.empty()) stack.push_back(';');
      stack.append(frame_name(sample.frames[f]));
    }
    ++folded_counts[stack];
    ++out->samples_by_query_tag[sample.query_tag];
  }

  out->folded.clear();
  for (const auto& [stack, count] : folded_counts) {
    out->folded.append(stack);
    out->folded.append(StrFormat(" %llu\n",
                                 static_cast<unsigned long long>(count)));
  }
  out->samples_captured = captured;
  out->samples_dropped = state->dropped.load(std::memory_order_relaxed);
  out->duration_seconds = duration;
  out->frequency_hz = options.frequency_hz;

  MetricRegistry::Global()
      .GetCounter("mira.obs.profiles_collected")
      .Increment();
  MetricRegistry::Global()
      .GetCounter("mira.obs.profile_samples")
      .Add(out->samples_captured);
  return Status::OK();
}

}  // namespace mira::obs

#endif  // MIRA_OBS_ENABLED
