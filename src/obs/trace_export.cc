#include "obs/trace_export.h"

#include <fstream>
#include <set>

#include "common/string_util.h"

namespace mira::obs {

namespace {

// Minimal JSON string escaping: labels are collection/method names, but a
// malformed byte must never produce an unloadable trace file.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out.append(StrFormat("\\u%04x", c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string MetadataEvent(const char* what, int pid, int32_t tid,
                          const std::string& name) {
  return StrFormat(
      "{\"name\": \"%s\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
      "\"args\": {\"name\": \"%s\"}}",
      what, pid, tid, JsonEscape(name).c_str());
}

}  // namespace

int ChromeTraceWriter::AddQuery(const QueryTrace& trace,
                                const TraceAnnotations& annotations) {
  const int pid = next_pid_;
  if (trace.empty()) return pid;
  ++next_pid_;

  // Process + thread lanes. tid 0 is the query thread; every worker thread
  // that contributed spans (through a traced ParallelFor) gets a named lane.
  std::string process_name = StrFormat("query %d", pid);
  if (!annotations.method.empty()) process_name += " " + annotations.method;
  AppendEvent(MetadataEvent("process_name", pid, 0, process_name));
  std::set<int32_t> tids;
  for (const SpanRecord& span : trace.spans()) tids.insert(span.tid);
  for (const int32_t tid : tids) {
    AppendEvent(MetadataEvent(
        "thread_name", pid, tid,
        tid == 0 ? "query thread" : StrFormat("pool worker t%02d", tid)));
  }

  // One complete ("X") event per span. The span vector is per-thread
  // chronological (query-thread spans in start order; worker buffers are
  // spliced in per-thread collection order), which keeps timestamps
  // monotonic within each (pid, tid) lane — tools/check_trace_json.py
  // asserts exactly that.
  bool root_annotated = false;
  for (const SpanRecord& span : trace.spans()) {
    std::string args = StrFormat("\"depth\": %d", span.depth);
    if (!span.label.empty()) {
      args += StrFormat(", \"label\": \"%s\"", JsonEscape(span.label).c_str());
    }
    for (const SpanCounter& counter : span.counters) {
      args += StrFormat(", \"%s\": %lld", counter.key,
                        static_cast<long long>(counter.value));
    }
    if (!root_annotated && span.parent < 0 && span.tid == 0) {
      root_annotated = true;
      if (!annotations.method.empty()) {
        args += StrFormat(", \"method\": \"%s\"",
                          JsonEscape(annotations.method).c_str());
      }
      args += StrFormat(
          ", \"degraded\": %s, \"partial\": %s, \"cancelled\": %s",
          annotations.degraded ? "true" : "false",
          annotations.partial ? "true" : "false",
          annotations.cancelled ? "true" : "false");
      if (annotations.budget_consumed >= 0) {
        args += StrFormat(", \"budget_consumed\": %.4f",
                          annotations.budget_consumed);
      }
    }
    AppendEvent(StrFormat(
        "{\"name\": \"%s\", \"cat\": \"mira\", \"ph\": \"X\", \"pid\": %d, "
        "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {%s}}",
        span.name, pid, span.tid, span.start_ms * 1000.0,
        span.duration_ms * 1000.0, args.c_str()));
  }
  return pid;
}

void ChromeTraceWriter::AppendEvent(const std::string& event) {
  events_.append(num_events_ == 0 ? "\n" : ",\n");
  events_.append(event);
  ++num_events_;
}

std::string ChromeTraceWriter::ToJson() const {
  std::string out = "[";
  out.append(events_);
  out.append(num_events_ == 0 ? "]\n" : "\n]\n");
  return out;
}

Status ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("trace export: cannot open " + path);
  out << ToJson();
  out.flush();
  if (!out) return Status::IoError("trace export: failed writing " + path);
  return Status::OK();
}

std::string ChromeTraceJson(const QueryTrace& trace,
                            const TraceAnnotations& annotations) {
  ChromeTraceWriter writer;
  writer.AddQuery(trace, annotations);
  return writer.ToJson();
}

}  // namespace mira::obs
