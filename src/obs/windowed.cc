#include "obs/windowed.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace mira::obs {

WindowedMetrics::WindowedMetrics(Options options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricRegistry::Global();
  }
  if (options_.bucket_seconds <= 0.0) options_.bucket_seconds = 1.0;
  if (options_.ring_buckets < 2) options_.ring_buckets = 2;
}

void WindowedMetrics::TrackCounter(const std::string& name) {
  // Resolve outside mu_: GetCounter takes the registry lock, and nothing
  // orders registry mu before directory mu elsewhere — keep it that way.
  const Counter* source = &options_.registry->GetCounter(name);
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<CounterSeries>(
        CounterSeries{source, internal::SeqRing<CounterSample>(
                                  options_.ring_buckets)});
  }
}

void WindowedMetrics::TrackHistogram(const std::string& name) {
  const Histogram* source = &options_.registry->GetHistogram(name);
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramSeries>(
        HistogramSeries{source, internal::SeqRing<HistogramSample>(
                                    options_.ring_buckets)});
  }
}

void WindowedMetrics::Tick(double now_s) {
  // Collect stable series pointers under the directory lock, then publish
  // without it: publishing a histogram sample snapshots 8 shards and should
  // not hold up a concurrent Track* or window reader lookup.
  std::vector<CounterSeries*> counter_series;
  std::vector<HistogramSeries*> histogram_series;
  {
    MutexLock lock(mu_);
    counter_series.reserve(counters_.size());
    for (auto& [name, series] : counters_) {
      counter_series.push_back(series.get());
    }
    histogram_series.reserve(histograms_.size());
    for (auto& [name, series] : histograms_) {
      histogram_series.push_back(series.get());
    }
  }
  const uint64_t tick = ticks_.load(std::memory_order_relaxed);
  for (CounterSeries* series : counter_series) {
    CounterSample sample;
    sample.time_s = now_s;
    sample.value = series->source->value();
    series->ring.Publish(tick, sample);
  }
  for (HistogramSeries* series : histogram_series) {
    HistogramSample sample;
    sample.time_s = now_s;
    sample.snap = series->source->TakeSnapshot();
    series->ring.Publish(tick, sample);
  }
  ticks_.store(tick + 1, std::memory_order_release);
}

template <typename Sample>
bool WindowedMetrics::FindWindow(const internal::SeqRing<Sample>& ring,
                                 double window_s, Sample* newest,
                                 Sample* baseline) const {
  const uint64_t head = ticks_.load(std::memory_order_acquire);
  if (head < 2) return false;
  if (!ring.Read(head - 1, newest)) return false;
  const double boundary = newest->time_s - window_s;
  const uint64_t oldest =
      head > ring.capacity() ? head - ring.capacity() : 0;
  bool have_baseline = false;
  for (uint64_t tick = head - 1; tick > oldest;) {
    --tick;
    Sample candidate;
    // A failed read means this tick was recycled by a newer lap (the ticker
    // overtook us); everything older is gone too, so settle for what we have.
    if (!ring.Read(tick, &candidate)) break;
    *baseline = candidate;
    have_baseline = true;
    if (candidate.time_s <= boundary) break;  // youngest at-or-before boundary
  }
  return have_baseline && baseline->time_s < newest->time_s;
}

WindowedMetrics::WindowRate WindowedMetrics::CounterRate(
    const std::string& name, double window_s) const {
  WindowRate out;
  const CounterSeries* series = nullptr;
  {
    MutexLock lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) return out;
    series = it->second.get();
  }
  CounterSample newest;
  CounterSample baseline;
  if (!FindWindow(series->ring, window_s, &newest, &baseline)) return out;
  out.ok = true;
  out.covered_s = newest.time_s - baseline.time_s;
  out.delta = newest.value >= baseline.value ? newest.value - baseline.value
                                             : 0;  // counter was Reset
  out.rate_per_s = static_cast<double>(out.delta) / out.covered_s;
  return out;
}

WindowedMetrics::WindowHistogram WindowedMetrics::HistogramWindow(
    const std::string& name, double window_s) const {
  WindowHistogram out;
  const HistogramSeries* series = nullptr;
  {
    MutexLock lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) return out;
    series = it->second.get();
  }
  HistogramSample newest;
  HistogramSample baseline;
  if (!FindWindow(series->ring, window_s, &newest, &baseline)) return out;
  out.ok = true;
  out.covered_s = newest.time_s - baseline.time_s;
  Histogram::Snapshot& delta = out.delta;
  delta.count = newest.snap.count >= baseline.snap.count
                    ? newest.snap.count - baseline.snap.count
                    : 0;  // histogram was Reset between samples
  delta.sum = std::max(0.0, newest.snap.sum - baseline.snap.sum);
  size_t first_bucket = Histogram::kNumBuckets;
  size_t last_bucket = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t hi = newest.snap.buckets[b];
    const uint64_t lo = baseline.snap.buckets[b];
    delta.buckets[b] = hi >= lo ? hi - lo : 0;
    if (delta.buckets[b] != 0) {
      first_bucket = std::min(first_bucket, b);
      last_bucket = std::max(last_bucket, b);
    }
  }
  if (first_bucket < Histogram::kNumBuckets) {
    // Exact extremes are unrecoverable from a cumulative difference; the
    // covering bucket bounds keep interpolated quantiles inside the window.
    delta.min = Histogram::BucketLowerBound(first_bucket);
    delta.max = Histogram::BucketUpperBound(last_bucket);
  } else {
    delta.min = 0.0;
    delta.max = 0.0;
  }
  return out;
}

std::vector<std::string> WindowedMetrics::TrackedCounters() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, series] : counters_) out.push_back(name);
  return out;
}

std::vector<std::string> WindowedMetrics::TrackedHistograms() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, series] : histograms_) out.push_back(name);
  return out;
}

}  // namespace mira::obs
