#include "obs/query_log.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "obs/trace_export.h"

namespace mira::obs {

void QueryLogEntry::SetMethod(std::string_view name) {
  const size_t n = std::min(name.size(), sizeof(method) - 1);
  std::memcpy(method, name.data(), n);
  method[n] = '\0';
}

void QueryLogEntry::SetTenant(std::string_view name) {
  const size_t n = std::min(name.size(), sizeof(tenant) - 1);
  std::memcpy(tenant, name.data(), n);
  tenant[n] = '\0';
}

void QueryLogEntry::SetTopSpans(const QueryTrace& trace) {
  top_spans = {};
  const std::vector<SpanRecord>& spans = trace.spans();
  // Partial insertion sort into the three slots: the span inventory is a
  // couple dozen records, no need for a real sort.
  for (size_t i = 1; i < spans.size(); ++i) {  // skip the root span
    QueryLogTopSpan candidate{spans[i].name, spans[i].duration_ms};
    for (QueryLogTopSpan& slot : top_spans) {
      if (slot.name == nullptr || candidate.duration_ms > slot.duration_ms) {
        std::swap(slot, candidate);
      }
    }
  }
}

QueryLog::QueryLog(size_t capacity) {
  size_t rounded = 2;
  while (rounded < capacity) rounded *= 2;
  capacity_ = rounded;
  mask_ = rounded - 1;
  slots_ = std::make_unique<Slot[]>(rounded);
}

QueryLog& QueryLog::Global() {
  static QueryLog log;
  return log;
}

uint64_t QueryLog::Record(QueryLogEntry entry) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  entry.id = ticket + 1;
  Slot& slot = slots_[ticket & mask_];

  // Claim the slot: its generation must advance to 2*ticket+1 (writing) and
  // then 2*ticket+2 (complete). A slot still odd, or already carrying a
  // *newer* generation, means a writer stalled for (at least) a full ring
  // lap — drop this entry instead of blocking or corrupting the newer one.
  const uint64_t claim = 2 * ticket + 1;
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1) != 0 || seq > claim) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return entry.id;
    }
    if (slot.seq.compare_exchange_weak(seq, claim,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      break;
    }
  }

  // Store the payload as relaxed atomic words (raceless even against a
  // concurrent reader; the seqlock check makes torn snapshots detectable).
  uint64_t words[Slot::kWords] = {};
  std::memcpy(words, &entry, sizeof(entry));
  for (size_t w = 0; w < Slot::kWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(claim + 1, std::memory_order_release);
  return entry.id;
}

void QueryLog::SetSlowThresholdMs(double ms) {
  slow_threshold_ms_.store(ms, std::memory_order_relaxed);
}

double QueryLog::slow_threshold_ms() const {
  return slow_threshold_ms_.load(std::memory_order_relaxed);
}

bool QueryLog::IsSlow(double duration_ms) const {
  const double threshold = slow_threshold_ms();
  return threshold > 0.0 && duration_ms >= threshold;
}

void QueryLog::PromoteSlowTrace(uint64_t id, double duration_ms,
                                const QueryTrace& trace) {
  // Both renderings happen before taking the lock: promotion is already off
  // the per-query hot path, but the lock shouldn't serialize string building.
  std::string json = trace.ToJson();
  std::string chrome = ChromeTraceJson(trace);
  MutexLock lock(slow_mu_);
  slow_traces_.push_back({id, duration_ms, std::move(json), std::move(chrome)});
  // Keep the slowest kMaxSlowTraces: evicting the *fastest* resident outlier
  // (ties: the older one) means the worst queries survive any later flood of
  // merely-threshold-slow promotions.
  while (slow_traces_.size() > kMaxSlowTraces) {
    auto fastest = slow_traces_.begin();
    for (auto it = slow_traces_.begin(); it != slow_traces_.end(); ++it) {
      if (it->duration_ms < fastest->duration_ms) fastest = it;
    }
    slow_traces_.erase(fastest);
  }
}

std::vector<QueryLog::SlowTrace> QueryLog::SlowTraces() const {
  MutexLock lock(slow_mu_);
  return {slow_traces_.begin(), slow_traces_.end()};
}

std::vector<QueryLogEntry> QueryLog::Snapshot() const {
  const uint64_t next = next_.load(std::memory_order_acquire);
  const uint64_t begin = next > capacity_ ? next - capacity_ : 0;
  std::vector<QueryLogEntry> out;
  out.reserve(static_cast<size_t>(next - begin));
  for (uint64_t ticket = begin; ticket < next; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t want = 2 * ticket + 2;
    if (slot.seq.load(std::memory_order_acquire) != want) continue;
    uint64_t words[Slot::kWords];
    for (size_t w = 0; w < Slot::kWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    // Seqlock validation: if the generation moved while we copied, the words
    // may mix two entries — discard them.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) continue;
    QueryLogEntry entry;
    std::memcpy(&entry, words, sizeof(entry));
    out.push_back(entry);
  }
  return out;
}

std::string QueryLog::ExportJsonLines() const {
  std::string out;
  for (const QueryLogEntry& entry : Snapshot()) {
    out.append(StrFormat(
        "{\"id\": %llu, \"method\": \"%s\", \"tenant\": \"%s\", "
        "\"priority\": %d, \"ok\": %s, \"k\": %u, "
        "\"results\": %u, \"duration_ms\": %.4f, \"degraded\": %s, "
        "\"partial\": %s, \"traced\": %s, \"shed\": %s, \"evicted\": %s, "
        "\"preemptive\": %s",
        static_cast<unsigned long long>(entry.id), entry.method, entry.tenant,
        static_cast<int>(entry.priority), entry.ok ? "true" : "false",
        entry.k, entry.result_count,
        entry.duration_ms, entry.degraded ? "true" : "false",
        entry.partial ? "true" : "false", entry.traced ? "true" : "false",
        entry.shed ? "true" : "false", entry.evicted ? "true" : "false",
        entry.preemptive ? "true" : "false"));
    if (entry.budget_consumed >= 0) {
      out.append(StrFormat(", \"budget_consumed\": %.4f",
                           entry.budget_consumed));
    }
    out.append(", \"top_spans\": [");
    bool first = true;
    for (const QueryLogTopSpan& span : entry.top_spans) {
      if (span.name == nullptr) continue;
      if (!first) out.append(", ");
      first = false;
      out.append(StrFormat("{\"name\": \"%s\", \"ms\": %.4f}", span.name,
                           span.duration_ms));
    }
    out.append("]}\n");
  }
  return out;
}

Status QueryLog::WriteJsonLines(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("query log: cannot open " + path);
  out << ExportJsonLines();
  out.flush();
  if (!out) return Status::IoError("query log: failed writing " + path);
  return Status::OK();
}

void QueryLog::Clear() {
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (size_t s = 0; s < capacity_; ++s) {
    slots_[s].seq.store(0, std::memory_order_relaxed);
  }
  MutexLock lock(slow_mu_);
  slow_traces_.clear();
}

}  // namespace mira::obs
