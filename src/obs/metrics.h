#ifndef MIRA_OBS_METRICS_H_
#define MIRA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/sync.h"

namespace mira::obs {

/// Monotonically increasing event count. All mutators are lock-free relaxed
/// atomics — safe to hammer from any number of threads.
class Counter {
 public:
  void Increment() noexcept { Add(1); }
  void Add(uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (index sizes, cluster counts, ...).
class Gauge {
 public:
  void Set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed latency/value histogram with a lock-free, sharded fast path.
///
/// Buckets are geometric: each power-of-two octave is split into
/// kSubBucketsPerOctave linear sub-buckets, so the relative width of any
/// bucket is at most 25% and bucket-interpolated quantiles land within ~12%
/// of the exact value. Record() touches only the calling thread's shard
/// (relaxed atomics, shard picked by a thread-local round-robin id), so
/// concurrent writers never contend on a cache line by construction.
///
/// Values are unit-agnostic; query-latency histograms in this codebase
/// record milliseconds (and say so in the metric name).
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 4;
  /// Smallest/largest representable octave: 2^-20 (~1e-6) .. 2^30 (~1e9).
  /// Out-of-range and non-positive values clamp to the edge buckets.
  static constexpr int kMinExponent = -20;
  static constexpr int kMaxExponent = 30;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExponent - kMinExponent) * kSubBucketsPerOctave;
  static constexpr size_t kShards = 8;

  /// Point-in-time aggregate of every shard. Cheap plain data; all quantile
  /// math happens here rather than on the live (concurrently written) state.
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Bucket-interpolated quantile, clamped to [min, max]. q in [0, 1].
    double Percentile(double q) const;
    double p50() const { return Percentile(0.50); }
    double p90() const { return Percentile(0.90); }
    double p99() const { return Percentile(0.99); }
  };

  /// Exemplar: one concrete observation pinned to the histogram so a tail
  /// quantile on an export links back to the query that produced it. `id` is
  /// a QueryLog entry id (resolvable via /querylogz, and — when the query was
  /// slow enough to be promoted — /tracez); 0 means the slot is unused.
  struct Exemplar {
    double value = 0.0;
    uint64_t id = 0;
  };
  /// Kept exemplars: the kNumExemplars largest observations seen since the
  /// last Reset (replace-min; ties prefer the newer observation).
  static constexpr size_t kNumExemplars = 4;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value) noexcept;
  /// Record() plus best-effort exemplar capture. The exemplar slots sit
  /// behind a TryLock so a contended writer skips the capture rather than
  /// waiting — the observation itself is never lost. id 0 records plainly.
  void RecordWithExemplar(double value, uint64_t id) noexcept;
  /// Current exemplar slots (unused slots have id 0), unordered.
  std::array<Exemplar, kNumExemplars> Exemplars() const;
  Snapshot TakeSnapshot() const;
  void Reset() noexcept;

  /// Bucket math, exposed for tests: which bucket a value lands in and the
  /// half-open [lower, upper) range that bucket covers. Bucket 0's lower
  /// bound is reported as 0 (it absorbs everything below the smallest
  /// octave, including non-positive values).
  static size_t BucketIndex(double value) noexcept;
  static double BucketLowerBound(size_t bucket) noexcept;
  static double BucketUpperBound(size_t bucket) noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
  };

  std::array<Shard, kShards> shards_;

  mutable Mutex exemplar_mu_;
  std::array<Exemplar, kNumExemplars> exemplars_ MIRA_GUARDED_BY(exemplar_mu_);
};

/// Process-wide directory of named metrics. Get*() registers on first use and
/// returns a reference that stays valid for the registry's lifetime, so hot
/// paths look a metric up once and then touch only its atomics:
///
///     static obs::Counter& searches =
///         obs::MetricRegistry::Global().GetCounter("mira.hnsw.searches");
///     searches.Increment();
///
/// Names use dotted lowercase ("mira.<subsystem>.<what>[_<unit>]", see
/// docs/OBSERVABILITY.md); the text exporter maps them to Prometheus-legal
/// underscores. A name identifies exactly one metric kind — asking for an
/// existing name with a different kind is a programming error and aborts.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Prometheus text exposition: "# HELP" + "# TYPE" lines, cumulative
  /// `_bucket{le="..."}` series (non-empty buckets only), `_sum`/`_count`.
  /// Names go through PrometheusMetricName(); help text defaults to the
  /// dotted metric name unless SetHelp() provided something better.
  std::string ExportText() const;

  /// Sets the "# HELP" text exported for `name` (the dotted name, not the
  /// sanitized one). May be called before or after the metric is registered;
  /// newlines and backslashes are escaped per the exposition format.
  void SetHelp(const std::string& name, std::string help);

  /// Point-in-time values of every registered counter / gauge, keyed by the
  /// dotted metric name. For programmatic consumers — the debugz pages
  /// (/healthz degradation summary, /memz breakdown tables) and tests — that
  /// want values without parsing an export document.
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}};
  /// histogram entries carry count/sum/min/max/mean/p50/p90/p99, non-empty
  /// [lower_bound, upper_bound, count] bucket triples (so external scrapers
  /// can re-aggregate without knowing the bucket layout), and any exemplars
  /// as [value, query_log_id] pairs. Keys are sorted, so equal registry
  /// states export byte-identical documents.
  std::string ExportJson() const;
  [[nodiscard]] Status WriteJsonFile(const std::string& path) const;

  /// Zeroes every registered metric without unregistering it — references
  /// handed out earlier stay valid. Intended for test isolation.
  void ResetValues();

 private:
  mutable Mutex mu_;
  /// The maps hold stable unique_ptr slots so the references Get*() hands
  /// out outlive the lock; only the directory structure is guarded.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MIRA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ MIRA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MIRA_GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ MIRA_GUARDED_BY(mu_);
};

/// Maps a dotted metric name onto the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every character outside [a-zA-Z0-9_:] becomes
/// '_', a leading digit gains a '_' prefix, and an empty name becomes "_".
/// ExportText() applies this to every name; exposed so tests (and external
/// scrapers building their own exposition) agree on the mapping.
std::string PrometheusMetricName(const std::string& name);

}  // namespace mira::obs

#endif  // MIRA_OBS_METRICS_H_
