#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>

#include "common/logging.h"
#include "common/string_util.h"

namespace mira::obs {

namespace {

void AtomicAdd(std::atomic<double>* target, double delta) noexcept {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) noexcept {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) noexcept {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

/// Stable shard assignment: each thread draws a round-robin shard id once,
/// shared by every histogram it touches.
size_t ThreadShard() noexcept {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(Histogram::kShards);
  return shard;
}

/// "# HELP" payloads escape backslash and newline per the text exposition
/// format; everything else passes through verbatim.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out.append("\\\\");
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  out->append(StrFormat("%.9g", value));
}

void AppendJsonKey(std::string* out, const std::string& key) {
  out->push_back('"');
  out->append(key);  // metric names never contain characters needing escape
  out->append("\": ");
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  if (name.empty()) return "_";
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

void Gauge::Add(double delta) noexcept { AtomicAdd(&value_, delta); }

size_t Histogram::BucketIndex(double value) noexcept {
  if (!(value > 0.0)) return 0;  // non-positive and NaN both land in bucket 0
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // value in [0.5, 1)*2^e
  if (exponent <= kMinExponent) return 0;
  if (exponent > kMaxExponent) return kNumBuckets - 1;
  // 2*mantissa is in [1, 2); split that octave linearly.
  int sub = static_cast<int>((2.0 * mantissa - 1.0) * kSubBucketsPerOctave);
  if (sub < 0) sub = 0;
  if (sub >= kSubBucketsPerOctave) sub = kSubBucketsPerOctave - 1;
  return static_cast<size_t>(exponent - 1 - kMinExponent) *
             static_cast<size_t>(kSubBucketsPerOctave) +
         static_cast<size_t>(sub);
}

double Histogram::BucketLowerBound(size_t bucket) noexcept {
  if (bucket == 0) return 0.0;
  const int exponent =
      kMinExponent + static_cast<int>(bucket) / kSubBucketsPerOctave;
  const int sub = static_cast<int>(bucket) % kSubBucketsPerOctave;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBucketsPerOctave,
                    exponent);
}

double Histogram::BucketUpperBound(size_t bucket) noexcept {
  const int exponent =
      kMinExponent + static_cast<int>(bucket) / kSubBucketsPerOctave;
  const int sub = static_cast<int>(bucket) % kSubBucketsPerOctave;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBucketsPerOctave,
                    exponent);
}

void Histogram::Record(double value) noexcept {
  Shard& shard = shards_[ThreadShard()];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  const uint64_t before = shard.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&shard.sum, value);
  if (before == 0) {
    // First value on this shard seeds min/max; the CAS loops below race
    // benignly with concurrent first-writers (both orders give the extremum).
    double expected = 0.0;
    shard.min.compare_exchange_strong(expected, value,
                                      std::memory_order_relaxed);
    expected = 0.0;
    shard.max.compare_exchange_strong(expected, value,
                                      std::memory_order_relaxed);
  }
  AtomicMin(&shard.min, value);
  AtomicMax(&shard.max, value);
}

void Histogram::RecordWithExemplar(double value, uint64_t id) noexcept {
  Record(value);
  if (id == 0) return;
  // Best-effort: a writer that loses the TryLock race drops the exemplar,
  // never the observation. The critical section is a handful of compares.
  if (!exemplar_mu_.TryLock()) return;
  size_t min_slot = 0;
  for (size_t slot = 0; slot < kNumExemplars; ++slot) {
    if (exemplars_[slot].id == 0) {
      min_slot = slot;
      break;
    }
    if (exemplars_[slot].value < exemplars_[min_slot].value) min_slot = slot;
  }
  // >= so an equal-valued newer observation wins: its log entry is the one
  // still likely to be resident in the ring.
  if (exemplars_[min_slot].id == 0 || value >= exemplars_[min_slot].value) {
    exemplars_[min_slot] = Exemplar{value, id};
  }
  exemplar_mu_.Unlock();
}

std::array<Histogram::Exemplar, Histogram::kNumExemplars>
Histogram::Exemplars() const {
  MutexLock lock(exemplar_mu_);
  return exemplars_;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.min = std::numeric_limits<double>::infinity();
  snap.max = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    const uint64_t shard_count = shard.count.load(std::memory_order_relaxed);
    if (shard_count == 0) continue;
    snap.count += shard_count;
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, shard.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (snap.count == 0) {
    snap.min = 0.0;
    snap.max = 0.0;
  }
  return snap;
}

void Histogram::Reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
  }
  MutexLock lock(exemplar_mu_);
  exemplars_ = {};
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= rank) {
      const double lo = BucketLowerBound(b);
      const double hi = BucketUpperBound(b);
      const double within =
          (rank - static_cast<double>(before)) / static_cast<double>(buckets[b]);
      double value = lo + (hi - lo) * within;
      if (value < min) value = min;
      if (value > max) value = max;
      return value;
    }
  }
  return max;
}

MetricRegistry& MetricRegistry::Global() {
  // Intentionally leaked so the registry outlives every static destructor
  // that might still bump a cached counter reference.
  static MetricRegistry* registry =
      std::make_unique<MetricRegistry>().release();
  return *registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  MIRA_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  MIRA_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  MIRA_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricRegistry::SetHelp(const std::string& name, std::string help) {
  MutexLock lock(mu_);
  help_[name] = std::move(help);
}

std::string MetricRegistry::ExportText() const {
  MutexLock lock(mu_);
  // Help text falls back to the dotted name, which at least tells a scraper
  // which subsystem a sanitized name came from.
  const auto help_for = [this](const std::string& name) {
    auto it = help_.find(name);
    return EscapeHelp(it == help_.end() ? name : it->second);
  };
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusMetricName(name);
    out.append(
        StrFormat("# HELP %s %s\n", prom.c_str(), help_for(name).c_str()));
    out.append(StrFormat("# TYPE %s counter\n", prom.c_str()));
    out.append(StrFormat("%s %llu\n", prom.c_str(),
                         static_cast<unsigned long long>(counter->value())));
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusMetricName(name);
    out.append(
        StrFormat("# HELP %s %s\n", prom.c_str(), help_for(name).c_str()));
    out.append(StrFormat("# TYPE %s gauge\n", prom.c_str()));
    out.append(StrFormat("%s %.9g\n", prom.c_str(), gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PrometheusMetricName(name);
    const Histogram::Snapshot snap = histogram->TakeSnapshot();
    out.append(
        StrFormat("# HELP %s %s\n", prom.c_str(), help_for(name).c_str()));
    out.append(StrFormat("# TYPE %s histogram\n", prom.c_str()));
    uint64_t cumulative = 0;
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      if (snap.buckets[b] == 0) continue;
      cumulative += snap.buckets[b];
      out.append(StrFormat("%s_bucket{le=\"%.9g\"} %llu\n", prom.c_str(),
                           Histogram::BucketUpperBound(b),
                           static_cast<unsigned long long>(cumulative)));
    }
    out.append(StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
                         static_cast<unsigned long long>(snap.count)));
    out.append(StrFormat("%s_sum %.9g\n", prom.c_str(), snap.sum));
    out.append(StrFormat("%s_count %llu\n", prom.c_str(),
                         static_cast<unsigned long long>(snap.count)));
  }
  return out;
}

std::map<std::string, uint64_t> MetricRegistry::CounterValues() const {
  MutexLock lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricRegistry::GaugeValues() const {
  MutexLock lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::string MetricRegistry::ExportJson() const {
  MutexLock lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(&out, name);
    out.append(StrFormat("%llu",
                         static_cast<unsigned long long>(counter->value())));
  }
  out.append(first ? "},\n" : "\n  },\n");

  out.append("  \"gauges\": {");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(&out, name);
    AppendJsonNumber(&out, gauge->value());
  }
  out.append(first ? "},\n" : "\n  },\n");

  out.append("  \"histograms\": {");
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->TakeSnapshot();
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(&out, name);
    out.append(StrFormat("{\"count\": %llu, \"sum\": ",
                         static_cast<unsigned long long>(snap.count)));
    AppendJsonNumber(&out, snap.sum);
    out.append(", \"min\": ");
    AppendJsonNumber(&out, snap.min);
    out.append(", \"max\": ");
    AppendJsonNumber(&out, snap.max);
    out.append(", \"mean\": ");
    AppendJsonNumber(&out, snap.mean());
    out.append(", \"p50\": ");
    AppendJsonNumber(&out, snap.p50());
    out.append(", \"p90\": ");
    AppendJsonNumber(&out, snap.p90());
    out.append(", \"p99\": ");
    AppendJsonNumber(&out, snap.p99());
    out.append(", \"buckets\": [");
    bool first_bucket = true;
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      if (snap.buckets[b] == 0) continue;
      if (!first_bucket) out.append(", ");
      first_bucket = false;
      out.push_back('[');
      AppendJsonNumber(&out, Histogram::BucketLowerBound(b));
      out.append(", ");
      AppendJsonNumber(&out, Histogram::BucketUpperBound(b));
      out.append(StrFormat(", %llu]",
                           static_cast<unsigned long long>(snap.buckets[b])));
    }
    out.append("]");
    const auto exemplars = histogram->Exemplars();
    bool any_exemplar = false;
    for (const Histogram::Exemplar& exemplar : exemplars) {
      if (exemplar.id != 0) any_exemplar = true;
    }
    if (any_exemplar) {
      out.append(", \"exemplars\": [");
      bool first_exemplar = true;
      for (const Histogram::Exemplar& exemplar : exemplars) {
        if (exemplar.id == 0) continue;
        if (!first_exemplar) out.append(", ");
        first_exemplar = false;
        out.push_back('[');
        AppendJsonNumber(&out, exemplar.value);
        out.append(StrFormat(", %llu]",
                             static_cast<unsigned long long>(exemplar.id)));
      }
      out.append("]");
    }
    out.append("}");
  }
  out.append(first ? "}\n" : "\n  }\n");
  out.append("}\n");
  return out;
}

Status MetricRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("metrics: cannot open " + path);
  out << ExportJson();
  out.flush();
  if (!out) return Status::IoError("metrics: failed writing " + path);
  return Status::OK();
}

void MetricRegistry::ResetValues() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace mira::obs
