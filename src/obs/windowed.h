#ifndef MIRA_OBS_WINDOWED_H_
#define MIRA_OBS_WINDOWED_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace mira::obs {

namespace internal {

/// Fixed-capacity ring of trivially copyable samples stored as relaxed
/// atomic words under per-slot seqlocks — the QueryLog storage protocol,
/// generalized. One writer publishes tick t into slot t & mask; readers copy
/// the words and validate the generation, discarding torn or recycled slots
/// instead of blocking. TSan-clean by construction: every byte moves through
/// an atomic.
template <typename T>
class SeqRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "samples are serialized into the ring word-by-word");

 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SeqRing(size_t capacity) {
    size_t rounded = 2;
    while (rounded < capacity) rounded *= 2;
    capacity_ = rounded;
    mask_ = rounded - 1;
    slots_ = std::make_unique<Slot[]>(rounded);
  }

  /// Single-writer publish of tick `tick`. Generations run 2*tick+1 while
  /// storing, 2*tick+2 once complete.
  void Publish(uint64_t tick, const T& value) {
    Slot& slot = slots_[tick & mask_];
    slot.seq.store(2 * tick + 1, std::memory_order_release);
    uint64_t words[Slot::kWords] = {};
    std::memcpy(words, &value, sizeof(value));
    for (size_t w = 0; w < Slot::kWords; ++w) {
      slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    slot.seq.store(2 * tick + 2, std::memory_order_release);
  }

  /// Copies the sample published for `tick` into *out. False when the slot
  /// is mid-write or was recycled by a newer lap.
  bool Read(uint64_t tick, T* out) const {
    const Slot& slot = slots_[tick & mask_];
    const uint64_t want = 2 * tick + 2;
    if (slot.seq.load(std::memory_order_acquire) != want) return false;
    uint64_t words[Slot::kWords];
    for (size_t w = 0; w < Slot::kWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) return false;
    std::memcpy(out, words, sizeof(*out));
    return true;
  }

  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    static constexpr size_t kWords = (sizeof(T) + 7) / 8;
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  size_t capacity_ = 0;  ///< Power of two.
  size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace internal

/// Time-windowed aggregation over the cumulative Counter/Histogram
/// primitives: a background ticker captures point-in-time snapshots of each
/// tracked metric into a lock-free ring of time buckets, and readers compute
/// "rate over the last 60 s" or "p99 over the last 5 m" by subtracting two
/// cumulative samples — the hot-path write side (Counter::Add,
/// Histogram::Record) is never touched, and readers never block a writer.
///
/// Windows are anchored at the *newest tick*, not the caller's clock: a
/// window query subtracts the youngest sample that is at least `window_s`
/// older than the newest one (or the oldest still resident, reporting the
/// actually covered span). With an injected clock this makes every
/// computation deterministic, which is what the SLO burn-rate tests lean on.
///
/// Thread-safety: Track* and Tick are for one coordinating thread (the
/// SloEngine's, or a test's); the window readers are safe from any thread
/// concurrently with Tick and with the underlying metric writers.
class WindowedMetrics {
 public:
  struct Options {
    /// Nominal spacing between ticks — the time-bucket width. The engine
    /// does not schedule ticks itself; whoever calls Tick owns the cadence
    /// (SloEngine uses its evaluation interval).
    double bucket_seconds = 5.0;
    /// Ring length per tracked series; with the default bucket width, 64
    /// buckets retain > 5 minutes of history. Rounded up to a power of two.
    size_t ring_buckets = 64;
    /// Registry the tracked names resolve in (default: the process-global).
    MetricRegistry* registry = nullptr;
  };

  WindowedMetrics() : WindowedMetrics(Options()) {}
  explicit WindowedMetrics(Options options);

  WindowedMetrics(const WindowedMetrics&) = delete;
  WindowedMetrics& operator=(const WindowedMetrics&) = delete;

  /// Registers `name` (resolving it in the registry, creating it if absent)
  /// so Tick starts sampling it. Idempotent.
  void TrackCounter(const std::string& name);
  void TrackHistogram(const std::string& name);

  /// Captures one cumulative sample of every tracked series, stamped
  /// `now_s` (monotonic seconds). Single ticker at a time.
  void Tick(double now_s);

  /// Ticks published so far.
  uint64_t ticks() const { return ticks_.load(std::memory_order_acquire); }

  /// Counter delta/rate over (up to) the trailing `window_s` seconds.
  struct WindowRate {
    bool ok = false;       ///< Two distinct samples were available.
    double covered_s = 0;  ///< Actual span between the samples used.
    uint64_t delta = 0;
    double rate_per_s = 0.0;
  };
  WindowRate CounterRate(const std::string& name, double window_s) const;

  /// Windowed histogram view: the bucketwise difference between the newest
  /// cumulative snapshot and the window baseline. min/max are bucket-bound
  /// approximations (exact extremes are not recoverable from deltas), so
  /// quantiles stay clamped to observed buckets.
  struct WindowHistogram {
    bool ok = false;
    double covered_s = 0.0;
    Histogram::Snapshot delta;
  };
  WindowHistogram HistogramWindow(const std::string& name,
                                  double window_s) const;

  /// Names currently tracked (for debugz rendering).
  std::vector<std::string> TrackedCounters() const;
  std::vector<std::string> TrackedHistograms() const;

  const Options& options() const { return options_; }

 private:
  struct CounterSample {
    double time_s = 0.0;
    uint64_t value = 0;
  };
  struct HistogramSample {
    double time_s = 0.0;
    Histogram::Snapshot snap;
  };

  struct CounterSeries {
    const Counter* source = nullptr;
    internal::SeqRing<CounterSample> ring;
  };
  struct HistogramSeries {
    const Histogram* source = nullptr;
    internal::SeqRing<HistogramSample> ring;
  };

  /// Walks the ring back from the newest tick to the youngest sample at
  /// least `window_s` older than it. Returns false if fewer than two
  /// samples are readable.
  template <typename Sample>
  bool FindWindow(const internal::SeqRing<Sample>& ring, double window_s,
                  Sample* newest, Sample* baseline) const;

  Options options_;

  mutable Mutex mu_;
  /// unique_ptr slots so readers can hold a series pointer after dropping
  /// the directory lock; the rings themselves are lock-free.
  std::map<std::string, std::unique_ptr<CounterSeries>> counters_
      MIRA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramSeries>> histograms_
      MIRA_GUARDED_BY(mu_);

  std::atomic<uint64_t> ticks_{0};
};

}  // namespace mira::obs

#endif  // MIRA_OBS_WINDOWED_H_
