#include "obs/trace.h"

#include <atomic>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace mira::obs {

namespace {

std::atomic<uint32_t> g_sample_every{1};

}  // namespace

void SetTraceSampling(uint32_t sample_every) {
  g_sample_every.store(sample_every, std::memory_order_relaxed);
  // Mirror the knob into the registry so scrapes can tell what fraction of
  // queries the span detail describes.
  MetricRegistry::Global()
      .GetGauge("mira.obs.trace_sample_every")
      .Set(static_cast<double>(sample_every));
}

uint32_t GetTraceSampling() {
  return g_sample_every.load(std::memory_order_relaxed);
}

uint32_t TraceSamplingRate() { return GetTraceSampling(); }

const SpanRecord* QueryTrace::Find(std::string_view name) const {
  for (const SpanRecord& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

int64_t QueryTrace::CounterValue(std::string_view span_name,
                                 std::string_view key) const {
  int64_t total = 0;
  for (const SpanRecord& span : spans_) {
    if (span.name != span_name) continue;
    for (const SpanCounter& counter : span.counters) {
      if (counter.key == key) total += counter.value;
    }
  }
  return total;
}

double QueryTrace::SpanMillis(std::string_view name) const {
  double total = 0.0;
  for (const SpanRecord& span : spans_) {
    if (span.name == name) total += span.duration_ms;
  }
  return total;
}

double QueryTrace::TotalMillis() const {
  return spans_.empty() ? 0.0 : spans_.front().duration_ms;
}

std::string QueryTrace::ToString() const {
  std::string out;
  for (const SpanRecord& span : spans_) {
    std::string name = span.name;
    if (!span.label.empty()) name += "(" + span.label + ")";
    // Worker-thread spans (merged at a ParallelFor join) are tagged with the
    // thread they ran on; query-thread spans keep the seed format.
    if (span.tid != 0) name += StrFormat(" [t%02d]", span.tid);
    out.append(StrFormat("%*s%-32s %9.3f ms", span.depth * 2, "", name.c_str(),
                         span.duration_ms));
    for (const SpanCounter& counter : span.counters) {
      out.append(StrFormat("  %s=%lld", counter.key,
                           static_cast<long long>(counter.value)));
    }
    out.push_back('\n');
  }
  return out;
}

std::string QueryTrace::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& span = spans_[i];
    out.append(i == 0 ? "\n  " : ",\n  ");
    out.append(StrFormat(
        "{\"name\": \"%s\", \"label\": \"%s\", \"parent\": %d, \"depth\": %d, "
        "\"tid\": %d, \"start_ms\": %.6f, \"duration_ms\": %.6f, "
        "\"counters\": {",
        span.name, span.label.c_str(), span.parent, span.depth, span.tid,
        span.start_ms, span.duration_ms));
    for (size_t c = 0; c < span.counters.size(); ++c) {
      if (c > 0) out.append(", ");
      out.append(StrFormat("\"%s\": %lld", span.counters[c].key,
                           static_cast<long long>(span.counters[c].value)));
    }
    out.append("}}");
  }
  out.append(spans_.empty() ? "]\n" : "\n]\n");
  return out;
}

int32_t QueryTrace::StartSpan(const char* name, int32_t parent,
                              double start_ms) {
  SpanRecord record;
  record.name = name;
  record.parent = parent;
  record.depth = parent >= 0 ? spans_[static_cast<size_t>(parent)].depth + 1 : 0;
  record.start_ms = start_ms;
  spans_.push_back(std::move(record));
  return static_cast<int32_t>(spans_.size() - 1);
}

void QueryTrace::FinishSpan(int32_t index, double duration_ms) {
  spans_[static_cast<size_t>(index)].duration_ms = duration_ms;
}

void QueryTrace::AddCounter(int32_t index, const char* key, int64_t value) {
  spans_[static_cast<size_t>(index)].counters.push_back({key, value});
}

void QueryTrace::SetLabel(int32_t index, std::string_view label) {
  spans_[static_cast<size_t>(index)].label.assign(label);
}

#if MIRA_OBS_ENABLED

namespace {

/// One shared stream so "every Nth query" holds across threads.
bool SampleThisTrace() {
  const uint32_t every = GetTraceSampling();
  if (every == 0) return false;
  if (every == 1) return true;
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

}  // namespace

ScopedTrace::ScopedTrace(QueryTrace* sink) {
  saved_ = internal::g_trace_context;
  saved_tag_ = internal::g_query_tag;
  if (sink == nullptr) return;
  if (!SampleThisTrace()) {
    // The sampler dropped a trace the caller wanted; count it so the knob's
    // cost is visible (the query itself still runs, only span detail is lost).
    static Counter& sampled_out =
        MetricRegistry::Global().GetCounter("mira.obs.traces_sampled_out");
    sampled_out.Increment();
    return;
  }
  sink->Clear();
  internal::g_trace_context = {sink, -1, std::chrono::steady_clock::now()};
  static std::atomic<uint64_t> next_tag{0};
  query_tag_ = next_tag.fetch_add(1, std::memory_order_relaxed) + 1;
  internal::g_query_tag = query_tag_;
  armed_ = true;
}

ScopedTrace::~ScopedTrace() {
  internal::g_trace_context = saved_;
  internal::g_query_tag = saved_tag_;
}

TraceSpan::TraceSpan(const char* name) {
  internal::TraceContext& ctx = internal::g_trace_context;
  if (ctx.trace == nullptr) return;
  start_ = std::chrono::steady_clock::now();
  const double start_ms =
      std::chrono::duration<double, std::milli>(start_ - ctx.origin).count();
  index_ = ctx.trace->StartSpan(name, ctx.current, start_ms);
  saved_current_ = ctx.current;
  ctx.current = index_;
}

TraceSpan::~TraceSpan() { Finish(); }

void TraceSpan::Finish() {
  if (index_ < 0) return;
  internal::TraceContext& ctx = internal::g_trace_context;
  // The trace may have been detached mid-span (a ScopedTrace ending inside
  // this span's lifetime); finish only when still attached to the same trace.
  if (ctx.trace != nullptr) {
    const double duration_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - start_)
                                   .count();
    ctx.trace->FinishSpan(index_, duration_ms);
    ctx.current = saved_current_;
  }
  index_ = -1;
}

void TraceSpan::AddCounter(const char* key, int64_t value) {
  if (index_ < 0) return;
  internal::TraceContext& ctx = internal::g_trace_context;
  if (ctx.trace == nullptr) return;
  ctx.trace->AddCounter(index_, key, value);
}

void TraceSpan::SetLabel(std::string_view label) {
  if (index_ < 0) return;
  internal::TraceContext& ctx = internal::g_trace_context;
  if (ctx.trace == nullptr) return;
  ctx.trace->SetLabel(index_, label);
}

#endif  // MIRA_OBS_ENABLED

}  // namespace mira::obs
