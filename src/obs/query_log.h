#ifndef MIRA_OBS_QUERY_LOG_H_
#define MIRA_OBS_QUERY_LOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/trace.h"

namespace mira::obs {

/// One of the up-to-three largest spans summarized on a query-log entry.
/// `name` points at the span's static string literal (never owned).
struct QueryLogTopSpan {
  const char* name = nullptr;
  double duration_ms = 0.0;
};

/// One compact, fixed-size record per query. Trivially copyable on purpose:
/// entries are serialized word-by-word into the lock-free ring, so they must
/// carry no owning pointers — the method is an inline char array and span
/// names are static literals.
struct QueryLogEntry {
  uint64_t id = 0;  ///< Assigned by QueryLog::Record (1-based, monotonic).
  char method[15] = {};  ///< NUL-terminated, truncated to fit.
  bool ok = true;        ///< False when Search returned a non-OK status.
  uint32_t k = 0;
  uint32_t result_count = 0;
  double duration_ms = 0.0;
  bool degraded = false;
  bool partial = false;
  bool traced = false;  ///< A full span tree was collected for this query.
  /// Service-layer outcome flags (see src/service/discovery_service.h):
  /// `shed` — rejected at admission (quota or queue-full), never ran;
  /// `evicted` — deadline expired (or cancelled) while queued, never ran;
  /// `preemptive` — ran, but under a tightened budget imposed by queue
  /// pressure (degraded-before-deadline).
  bool shed = false;
  bool evicted = false;
  bool preemptive = false;
  /// Tenant the request was attributed to at admission (service-layer
  /// entries; engine-level entries leave it empty). NUL-terminated,
  /// truncated to fit — matches the bounded tenant metric slicing.
  char tenant[15] = {};
  /// Dispatch priority of the admitting tenant (service-layer entries).
  int8_t priority = 0;
  /// Fraction of the deadline budget spent when the query finished
  /// (1 - Deadline::FractionRemaining()); negative when no deadline was set.
  double budget_consumed = -1.0;
  /// Largest spans by duration, excluding the root; unused slots have a
  /// nullptr name.
  std::array<QueryLogTopSpan, 3> top_spans{};

  void SetMethod(std::string_view name);
  void SetTenant(std::string_view name);
  /// Fills top_spans from the trace (largest non-root spans first).
  void SetTopSpans(const QueryTrace& trace);
};
static_assert(std::is_trivially_copyable_v<QueryLogEntry>,
              "entries are serialized into the ring word-by-word");

/// Lock-free ring buffer of the most recent `capacity` query-log entries,
/// plus a small mutex-guarded side store of promoted slow-query traces.
///
/// Writers (`Record`) never block and never allocate: a slot is claimed with
/// one fetch_add + one CAS and the entry is stored as relaxed atomic words
/// under a per-slot seqlock, so the hot path stays wait-free-ish and
/// TSan-clean. If a writer stalls for a full ring lap, colliding entries are
/// dropped (counted in `dropped()`) rather than blocking the query path.
/// Readers (`Snapshot`/`ExportJsonLines`) skip slots that are mid-write or
/// recycled during the read — a consistency check, not a lock.
///
/// Slow-query promotion: when `slow_threshold_ms` is set (> 0), callers that
/// ran a traced query check `IsSlow(duration)` and hand the full trace to
/// `PromoteSlowTrace`, which keeps the kMaxSlowTraces *slowest* outliers as
/// JSON.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 1024;
  static constexpr size_t kMaxSlowTraces = 16;

  /// Capacity is rounded up to a power of two (minimum 2).
  explicit QueryLog(size_t capacity = kDefaultCapacity);

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Process-wide log the engine records into.
  static QueryLog& Global();

  /// Stores the entry (assigning and returning its id). Lock-free.
  uint64_t Record(QueryLogEntry entry);

  /// Slow-query threshold; <= 0 (the default) disables promotion.
  void SetSlowThresholdMs(double ms);
  double slow_threshold_ms() const;
  bool IsSlow(double duration_ms) const;

  /// Keeps the full trace of a slow query (bounded: beyond kMaxSlowTraces
  /// promotions, the *fastest* resident outlier is evicted, so the store
  /// converges on the worst offenders — and a histogram exemplar pinning the
  /// max-latency query keeps resolving here no matter how many later slow
  /// queries flood in).
  void PromoteSlowTrace(uint64_t id, double duration_ms,
                        const QueryTrace& trace);

  struct SlowTrace {
    uint64_t id = 0;
    double duration_ms = 0.0;
    std::string trace_json;  ///< QueryTrace::ToJson() of the outlier.
    /// Complete Chrome-trace document (ChromeTraceJson) built once at
    /// promotion time, so /tracez downloads need no re-rendering.
    std::string chrome_json;
  };
  std::vector<SlowTrace> SlowTraces() const;

  /// Consistent entries still resident in the ring, oldest first.
  std::vector<QueryLogEntry> Snapshot() const;

  /// JSON-lines export: one compact JSON object per entry, oldest first.
  std::string ExportJsonLines() const;
  [[nodiscard]] Status WriteJsonLines(const std::string& path) const;

  size_t capacity() const { return capacity_; }
  /// Total entries ever recorded (ids run 1..total_recorded()).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Entries lost to writer collisions (a writer stalled a full ring lap).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Resets ids, entries, and promoted traces. Test isolation only — must
  /// not run concurrently with writers.
  void Clear();

 private:
  struct Slot {
    static constexpr size_t kWords = (sizeof(QueryLogEntry) + 7) / 8;
    /// Seqlock generation: 2*ticket+1 while the writer of `ticket` is
    /// storing, 2*ticket+2 once its entry is complete, 0 when never written.
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  size_t capacity_;  ///< Power of two.
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<double> slow_threshold_ms_{0.0};

  mutable Mutex slow_mu_;
  std::deque<SlowTrace> slow_traces_ MIRA_GUARDED_BY(slow_mu_);
};

}  // namespace mira::obs

#endif  // MIRA_OBS_QUERY_LOG_H_
