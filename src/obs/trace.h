#ifndef MIRA_OBS_TRACE_H_
#define MIRA_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

// Compile-time observability toggle: building with -DMIRA_OBS_DISABLED (the
// CMake option MIRA_OBS=OFF) turns TraceSpan/ScopedTrace into empty inline
// no-ops. The QueryTrace container and the metrics layer stay compiled either
// way, so code that *reads* traces keeps building.
#if defined(MIRA_OBS_DISABLED)
#define MIRA_OBS_ENABLED 0
#else
#define MIRA_OBS_ENABLED 1
#endif

namespace mira::obs {

inline constexpr bool kObsEnabled = MIRA_OBS_ENABLED != 0;

/// One named integer attached to a span ("cells_scanned", "dist_comps", ...).
/// Keys are string literals with static storage — spans never copy them.
struct SpanCounter {
  const char* key;
  int64_t value;
};

/// One timed section of a query. Spans form a tree via parent indices into
/// QueryTrace::spans(); spans recorded on the query thread appear in start
/// order, worker-thread spans are spliced in at the ParallelFor join point.
struct SpanRecord {
  const char* name = "";
  std::string label;  ///< Optional dynamic detail (e.g. collection name).
  int32_t parent = -1;
  int32_t depth = 0;
  /// Thread the span ran on: 0 is the query thread, worker spans carry the
  /// worker's mira::LogThreadId(). Feeds the tid lane in Chrome trace export.
  int32_t tid = 0;
  double start_ms = 0.0;  ///< Offset from the trace's start.
  double duration_ms = 0.0;
  std::vector<SpanCounter> counters;
};

/// The span tree collected for a single query. Owned by the caller of
/// DiscoveryEngine::SearchTraced; populated through a thread-local context
/// installed by ScopedTrace, so instrumented callees need no extra
/// parameters. Not thread-safe by itself: one trace belongs to one query
/// thread. Parallel sections run their workers against private per-task
/// buffer traces that ParallelFor/ParallelForCancellable splice back in at
/// the join point via AdoptWorkerSpans (see obs/trace_propagation.h), so the
/// owning thread never shares the trace with a running worker.
class QueryTrace {
 public:
  const std::vector<SpanRecord>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  void Clear() { spans_.clear(); }

  /// Splices the spans of a worker-side buffer trace under `parent` (an index
  /// into this trace, or -1 for the root level), tagging them with the worker
  /// thread id. Buffer-internal parent indices and depths are remapped.
  /// Called at the ParallelFor join point, on the thread that owns this
  /// trace. Inline because mira_common uses it without linking mira_obs.
  void AdoptWorkerSpans(int32_t parent, int32_t tid,
                        const QueryTrace& worker) {
    const int32_t base = static_cast<int32_t>(spans_.size());
    const int32_t depth_shift =
        parent >= 0 ? spans_[static_cast<size_t>(parent)].depth + 1 : 0;
    spans_.reserve(spans_.size() + worker.spans_.size());
    for (const SpanRecord& span : worker.spans_) {
      SpanRecord copy = span;
      copy.parent = span.parent < 0 ? parent : base + span.parent;
      copy.depth += depth_shift;
      copy.tid = tid;
      spans_.push_back(std::move(copy));
    }
  }

  /// First span with this name, or nullptr.
  const SpanRecord* Find(std::string_view name) const;
  /// Sum of `key` over every span named `span_name` (0 when absent).
  int64_t CounterValue(std::string_view span_name, std::string_view key) const;
  /// Sum of durations over every span with this name.
  double SpanMillis(std::string_view name) const;
  /// Duration of the root (first) span; 0 for an empty trace.
  double TotalMillis() const;

  /// Indented human-readable tree with counters, one span per line.
  std::string ToString() const;
  /// JSON array of span objects (name/label/parent/depth/times/counters).
  std::string ToJson() const;

  /// Span bookkeeping used by TraceSpan — not meant for direct calls.
  int32_t StartSpan(const char* name, int32_t parent, double start_ms);
  void FinishSpan(int32_t index, double duration_ms);
  void AddCounter(int32_t index, const char* key, int64_t value);
  void SetLabel(int32_t index, std::string_view label);

 private:
  std::vector<SpanRecord> spans_;
};

/// Runtime sampling knob for ScopedTrace: collect every Nth installed trace
/// (1 = every query, the default; 0 = never arm). Applies process-wide.
/// The knob is itself observable: the current rate is mirrored into the
/// `mira.obs.trace_sample_every` gauge and every trace the sampler skips
/// bumps the `mira.obs.traces_sampled_out` counter, so dropped detail shows
/// up in /metricsz instead of silently vanishing.
void SetTraceSampling(uint32_t sample_every);
uint32_t GetTraceSampling();
/// Canonical getter for the sampling knob (same value as GetTraceSampling):
/// the every-Nth rate currently armed, 0 when tracing is disarmed.
uint32_t TraceSamplingRate();

namespace internal {

/// Thread-local collection state. `trace == nullptr` (the steady state) makes
/// every TraceSpan constructor a single TLS load and branch.
struct TraceContext {
  QueryTrace* trace = nullptr;
  int32_t current = -1;  ///< Innermost open span, -1 at the root.
  std::chrono::steady_clock::time_point origin{};
};

#if MIRA_OBS_ENABLED
inline thread_local TraceContext g_trace_context;

/// Id of the trace currently armed on this thread (assigned when ScopedTrace
/// arms; its own monotonic 1-based id space, distinct from QueryLog ids),
/// 0 when no trace is installed. Plain initial-exec TLS on purpose: the
/// SIGPROF sampling profiler (obs/cpu_profiler.h) reads the interrupted
/// thread's value from inside its signal handler to tag samples per query,
/// and a TLS load is the only async-signal-safe read available there.
inline thread_local uint64_t g_query_tag = 0;
inline uint64_t CurrentQueryTag() { return g_query_tag; }

/// Reads / overwrites the calling thread's collection state. Only the
/// cross-thread propagation scope (obs/trace_propagation.h) should touch
/// these; everything else goes through ScopedTrace / TraceSpan.
inline TraceContext CaptureContext() { return g_trace_context; }
inline void InstallContext(const TraceContext& ctx) { g_trace_context = ctx; }
#else
inline uint64_t CurrentQueryTag() { return 0; }
inline TraceContext CaptureContext() { return {}; }
inline void InstallContext(const TraceContext& /*ctx*/) {}
#endif

}  // namespace internal

#if MIRA_OBS_ENABLED

/// Arms span collection into `sink` for the current thread and scope (subject
/// to SetTraceSampling). Restores the previous context on destruction, so
/// traced sections nest safely. Arming also installs a process-unique query
/// tag into the thread (internal::CurrentQueryTag) so a concurrently running
/// CPU profile can attribute its samples to this query.
class ScopedTrace {
 public:
  explicit ScopedTrace(QueryTrace* sink);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  bool armed() const { return armed_; }
  /// The query tag installed while this trace is armed (0 when not armed).
  uint64_t query_tag() const { return query_tag_; }

 private:
  internal::TraceContext saved_;
  uint64_t saved_tag_ = 0;
  uint64_t query_tag_ = 0;
  bool armed_ = false;
};

/// RAII span: records itself into the thread's active QueryTrace, or does
/// nothing (one TLS load) when no trace is armed. Construct with a string
/// literal; the name is stored by pointer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void AddCounter(const char* key, int64_t value);
  void SetLabel(std::string_view label);
  /// Ends the span now instead of at destruction (idempotent). Useful when a
  /// span should exclude tail work in the same scope.
  void Finish();
  bool active() const { return index_ >= 0; }

 private:
  int32_t index_ = -1;
  int32_t saved_current_ = -1;
  std::chrono::steady_clock::time_point start_{};
};

#else  // !MIRA_OBS_ENABLED

class ScopedTrace {
 public:
  explicit ScopedTrace(QueryTrace* /*sink*/) {}
  bool armed() const { return false; }
  uint64_t query_tag() const { return 0; }
};

class TraceSpan {
 public:
  explicit TraceSpan(const char* /*name*/) {}
  void AddCounter(const char* /*key*/, int64_t /*value*/) {}
  void SetLabel(std::string_view /*label*/) {}
  void Finish() {}
  bool active() const { return false; }
};

#endif  // MIRA_OBS_ENABLED

}  // namespace mira::obs

#endif  // MIRA_OBS_TRACE_H_
