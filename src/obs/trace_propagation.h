#ifndef MIRA_OBS_TRACE_PROPAGATION_H_
#define MIRA_OBS_TRACE_PROPAGATION_H_

#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sync.h"
#include "obs/trace.h"

// Cross-thread trace propagation for ParallelFor-style fork/join sections.
//
// A QueryTrace belongs to one thread, so workers must never write into the
// caller's trace directly. Instead the fork point captures the caller's
// thread-local TraceContext once; each worker task then runs under a private
// buffer QueryTrace sharing the caller's time origin, and the join point
// splices the buffers back into the parent trace with thread-id-tagged spans
// (QueryTrace::AdoptWorkerSpans). The caller is blocked at the join when the
// merge happens, so the parent trace is never written concurrently.
//
// Everything here is header-only on purpose: mira_obs links mira_common, so
// mira_common (threadpool.cc) uses these scopes without a link dependency on
// mira_obs. When no trace is armed — the steady state — the capture is one
// TLS load at the fork point and each worker task pays one member-pointer
// branch; with -DMIRA_OBS=OFF the whole mechanism compiles to nothing.

namespace mira::obs {

#if MIRA_OBS_ENABLED

/// Fork/join carrier for the caller's trace context. Construct on the thread
/// that owns the (possibly armed) trace, hand a pointer to every worker task,
/// and call MergeIntoParent() after the join barrier.
class CrossThreadTraceCapture {
 public:
  CrossThreadTraceCapture() : parent_(internal::CaptureContext()) {}

  CrossThreadTraceCapture(const CrossThreadTraceCapture&) = delete;
  CrossThreadTraceCapture& operator=(const CrossThreadTraceCapture&) = delete;

  /// True when the forking thread had a trace armed.
  bool armed() const { return parent_.trace != nullptr; }

  /// RAII worker-task scope: installs a thread-local context collecting into
  /// a task-private buffer, and hands the buffer to the capture when the task
  /// ends. Destroy *before* signalling task completion to the join point —
  /// the merge must not race the buffer handoff.
  class WorkerScope {
   public:
    explicit WorkerScope(CrossThreadTraceCapture* capture) {
      if (capture == nullptr || !capture->armed()) return;
      capture_ = capture;
      saved_ = internal::CaptureContext();
      internal::InstallContext({&buffer_, -1, capture->parent_.origin});
    }

    ~WorkerScope() {
      if (capture_ == nullptr) return;
      internal::InstallContext(saved_);
      if (!buffer_.empty()) capture_->Collect(std::move(buffer_));
    }

    WorkerScope(const WorkerScope&) = delete;
    WorkerScope& operator=(const WorkerScope&) = delete;

   private:
    CrossThreadTraceCapture* capture_ = nullptr;
    QueryTrace buffer_;
    internal::TraceContext saved_;
  };

  /// Splices every collected worker buffer into the parent trace, under the
  /// span that was open at the fork point. Call on the forking thread after
  /// all worker tasks have completed (and their WorkerScopes destructed);
  /// safe to call when untraced or when no worker recorded a span.
  void MergeIntoParent() {
    if (!armed()) return;
    MutexLock lock(mu_);
    for (const Buffer& buffer : buffers_) {
      parent_.trace->AdoptWorkerSpans(parent_.current, buffer.tid,
                                      buffer.trace);
    }
    buffers_.clear();
  }

 private:
  friend class WorkerScope;

  struct Buffer {
    int32_t tid;
    QueryTrace trace;
  };

  void Collect(QueryTrace buffer) {
    // LogThreadId is the same compact per-thread id the log prefix prints,
    // so trace lanes and log lines correlate directly.
    const int32_t tid = LogThreadId();
    MutexLock lock(mu_);
    buffers_.push_back({tid, std::move(buffer)});
  }

  internal::TraceContext parent_;
  Mutex mu_;
  std::vector<Buffer> buffers_ MIRA_GUARDED_BY(mu_);
};

#else  // !MIRA_OBS_ENABLED

class CrossThreadTraceCapture {
 public:
  bool armed() const { return false; }
  class WorkerScope {
   public:
    explicit WorkerScope(CrossThreadTraceCapture* /*capture*/) {}
  };
  void MergeIntoParent() {}
};

#endif  // MIRA_OBS_ENABLED

}  // namespace mira::obs

#endif  // MIRA_OBS_TRACE_PROPAGATION_H_
