#include "obs/stats_reporter.h"

#include <fstream>
#include <utility>

#include "common/string_util.h"

namespace mira::obs {

void FileStatsSink::Consume(const StatsSnapshot& snapshot) {
  std::ofstream out(path_, std::ios::trunc);
  Status result = Status::OK();
  if (!out) {
    result = Status::IoError("stats sink: cannot open " + path_);
  } else {
    out << snapshot.registry_json;
    out.flush();
    if (!out) result = Status::IoError("stats sink: failed writing " + path_);
  }
  MutexLock lock(mu_);
  if (status_.ok()) status_ = std::move(result);
}

Status FileStatsSink::status() const {
  MutexLock lock(mu_);
  return status_;
}

void CapturingStatsSink::Consume(const StatsSnapshot& snapshot) {
  MutexLock lock(mu_);
  snapshots_.push_back(snapshot);
}

std::vector<StatsSnapshot> CapturingStatsSink::snapshots() const {
  MutexLock lock(mu_);
  return snapshots_;
}

StatsReporter::StatsReporter(StatsSink* sink, Options options)
    : sink_(sink), options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricRegistry::Global();
  }
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::AddCollector(std::function<void()> collector) {
  MutexLock lock(mu_);
  collectors_.push_back(std::move(collector));
}

void StatsReporter::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  started_ = std::chrono::steady_clock::now();
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void StatsReporter::Stop() {
  // Claim the thread under the lock so concurrent Stop() calls cannot both
  // join it: exactly one caller moves it out (and joins), every other caller
  // sees running_ == false and returns. Joining happens outside the lock
  // because the loop thread takes mu_ on its way out.
  std::thread worker;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    worker = std::move(thread_);
  }
  wake_.NotifyAll();
  worker.join();
}

bool StatsReporter::running() const {
  MutexLock lock(mu_);
  return running_;
}

uint64_t StatsReporter::snapshots_taken() const {
  MutexLock lock(mu_);
  return snapshots_;
}

void StatsReporter::Loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      const auto deadline =
          std::chrono::steady_clock::now() + options_.interval;
      // Explicit wait loop (not the predicate overload) so the analysis sees
      // stop_requested_ read under mu_; a timeout ends the wait for this
      // interval, a notification re-checks the stop flag.
      while (!stop_requested_) {
        if (wake_.WaitUntil(lock, deadline)) break;
      }
      if (stop_requested_) break;
    }
    TakeSnapshot();
  }
  // Final snapshot on shutdown: a short-lived process (or a test) still gets
  // its state exported exactly once.
  TakeSnapshot();
}

void StatsReporter::TakeSnapshot() {
  std::vector<std::function<void()>> collectors;
  uint64_t sequence = 0;
  std::chrono::steady_clock::time_point started;
  {
    MutexLock lock(mu_);
    collectors = collectors_;
    sequence = ++snapshots_;
    started = started_;
  }
  // Collectors refresh pull-style gauges (memory, pool depth) outside the
  // reporter lock — they may take other locks of their own.
  for (const std::function<void()>& collector : collectors) collector();

  StatsSnapshot snapshot;
  snapshot.sequence = sequence;
  snapshot.uptime_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  snapshot.registry_json = options_.registry->ExportJson();
  if (options_.windows != nullptr) {
    for (const std::string& name : options_.windows->TrackedCounters()) {
      const WindowedMetrics::WindowRate rate =
          options_.windows->CounterRate(name, options_.summary_window_s);
      if (!rate.ok) continue;
      snapshot.windowed_summary.append(
          StrFormat("rate %s %.2f/s over %.1fs\n", name.c_str(),
                    rate.rate_per_s, rate.covered_s));
    }
  }
  if (options_.slo != nullptr) {
    for (const SloStatus& status : options_.slo->Statuses()) {
      snapshot.windowed_summary.append(StrFormat(
          "slo %s %s burn_fast %.2f burn_slow %.2f\n", status.name.c_str(),
          std::string(SloStateToString(status.state)).c_str(),
          status.burn_fast, status.burn_slow));
    }
  }
  sink_->Consume(snapshot);
}

}  // namespace mira::obs
