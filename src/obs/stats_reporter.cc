#include "obs/stats_reporter.h"

#include <fstream>
#include <utility>

namespace mira::obs {

void FileStatsSink::Consume(const StatsSnapshot& snapshot) {
  std::ofstream out(path_, std::ios::trunc);
  Status result = Status::OK();
  if (!out) {
    result = Status::IoError("stats sink: cannot open " + path_);
  } else {
    out << snapshot.registry_json;
    out.flush();
    if (!out) result = Status::IoError("stats sink: failed writing " + path_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (status_.ok()) status_ = std::move(result);
}

Status FileStatsSink::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void CapturingStatsSink::Consume(const StatsSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.push_back(snapshot);
}

std::vector<StatsSnapshot> CapturingStatsSink::snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

StatsReporter::StatsReporter(StatsSink* sink, Options options)
    : sink_(sink), options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricRegistry::Global();
  }
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::AddCollector(std::function<void()> collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

void StatsReporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  started_ = std::chrono::steady_clock::now();
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool StatsReporter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

uint64_t StatsReporter::snapshots_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

void StatsReporter::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait_for(lock, options_.interval,
                     [this] { return stop_requested_; });
      if (stop_requested_) break;
    }
    TakeSnapshot();
  }
  // Final snapshot on shutdown: a short-lived process (or a test) still gets
  // its state exported exactly once.
  TakeSnapshot();
}

void StatsReporter::TakeSnapshot() {
  std::vector<std::function<void()>> collectors;
  uint64_t sequence = 0;
  std::chrono::steady_clock::time_point started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
    sequence = ++snapshots_;
    started = started_;
  }
  // Collectors refresh pull-style gauges (memory, pool depth) outside the
  // reporter lock — they may take other locks of their own.
  for (const std::function<void()>& collector : collectors) collector();

  StatsSnapshot snapshot;
  snapshot.sequence = sequence;
  snapshot.uptime_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  snapshot.registry_json = options_.registry->ExportJson();
  sink_->Consume(snapshot);
}

}  // namespace mira::obs
