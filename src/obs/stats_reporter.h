#ifndef MIRA_OBS_STATS_REPORTER_H_
#define MIRA_OBS_STATS_REPORTER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/windowed.h"

namespace mira::obs {

/// One periodic registry snapshot handed to a StatsSink.
struct StatsSnapshot {
  uint64_t sequence = 0;    ///< 1-based snapshot counter.
  double uptime_ms = 0.0;   ///< Since the reporter started.
  std::string registry_json;  ///< MetricRegistry::ExportJson() document.
  /// Windowed view (only when Options wired a WindowedMetrics / SloEngine):
  /// per-tracked-counter rates over the summary window and the current SLO
  /// states — the numbers that actually change tick to tick, instead of the
  /// cumulative-since-start gauges re-reported above. Empty otherwise.
  std::string windowed_summary;
};

/// Destination for periodic snapshots. Consume() runs on the reporter's
/// background thread; implementations must be safe to call from it.
class StatsSink {
 public:
  virtual ~StatsSink() = default;
  virtual void Consume(const StatsSnapshot& snapshot) = 0;
};

/// Sink that rewrites one JSON file per snapshot (scrape-file style: the
/// file always holds the latest registry state).
class FileStatsSink : public StatsSink {
 public:
  explicit FileStatsSink(std::string path) : path_(std::move(path)) {}
  void Consume(const StatsSnapshot& snapshot) override;
  /// Non-OK when any write so far failed (write errors never throw into the
  /// reporter thread).
  [[nodiscard]] Status status() const;

 private:
  std::string path_;
  mutable Mutex mu_;
  Status status_ MIRA_GUARDED_BY(mu_);
};

/// Sink that buffers snapshots in memory, for tests.
class CapturingStatsSink : public StatsSink {
 public:
  void Consume(const StatsSnapshot& snapshot) override;
  std::vector<StatsSnapshot> snapshots() const;

 private:
  mutable Mutex mu_;
  std::vector<StatsSnapshot> snapshots_ MIRA_GUARDED_BY(mu_);
};

/// Background thread that snapshots a MetricRegistry to a sink on a fixed
/// interval. Before each snapshot it runs the registered collectors —
/// callbacks that refresh pull-style gauges (memory usage, pool queue depth)
/// so the exported numbers are current rather than last-touched.
///
/// Lifecycle: construct → AddCollector()* → Start() → ... → Stop() (or let
/// the destructor stop it). Stop() wakes the thread immediately, takes one
/// final snapshot so short-lived processes still export, and joins — no
/// detached threads, no sleeps on the shutdown path.
class StatsReporter {
 public:
  struct Options {
    std::chrono::milliseconds interval{1000};
    /// The registry to snapshot (defaults to the process-global one).
    MetricRegistry* registry = nullptr;
    /// Optional windowed view: when set, every snapshot carries rates of the
    /// tracked counters over `summary_window_s` in `windowed_summary` (not
    /// owned; must outlive the reporter).
    const WindowedMetrics* windows = nullptr;
    /// Optional SLO view: current objective states join the summary, and the
    /// engine (not the reporter) logs state *transitions* — steady state is
    /// never re-logged (not owned; must outlive the reporter).
    const SloEngine* slo = nullptr;
    double summary_window_s = 60.0;
  };

  explicit StatsReporter(StatsSink* sink) : StatsReporter(sink, Options{}) {}
  StatsReporter(StatsSink* sink, Options options);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Registers a refresh callback. Must be called before Start().
  void AddCollector(std::function<void()> collector);

  void Start();
  /// Idempotent; safe to call without Start().
  void Stop();

  bool running() const;
  uint64_t snapshots_taken() const;

 private:
  void Loop();
  void TakeSnapshot();

  StatsSink* sink_;
  Options options_;

  mutable Mutex mu_;
  CondVar wake_;
  /// Started under mu_; Stop() moves it out under mu_ before joining, so
  /// concurrent Stop() calls cannot both join it.
  std::thread thread_ MIRA_GUARDED_BY(mu_);
  std::vector<std::function<void()>> collectors_ MIRA_GUARDED_BY(mu_);
  bool stop_requested_ MIRA_GUARDED_BY(mu_) = false;
  bool running_ MIRA_GUARDED_BY(mu_) = false;
  uint64_t snapshots_ MIRA_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point started_ MIRA_GUARDED_BY(mu_){};
};

}  // namespace mira::obs

#endif  // MIRA_OBS_STATS_REPORTER_H_
