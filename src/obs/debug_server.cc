#include "obs/debug_server.h"

#if MIRA_OBS_ENABLED

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/cpu_profiler.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace mira::obs {

namespace {

/// One parsed GET request: the path and its ?key=value parameters.
struct Request {
  std::string path;
  std::map<std::string, std::string> params;

  std::string Param(const std::string& key, std::string fallback = "") const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  /// Extra headers, one "Name: value" per entry (no CRLF).
  std::vector<std::string> extra_headers;
  std::string body;
};

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::string HtmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '"':
        out.append("&quot;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Shared page chrome for the HTML endpoints; deliberately inline-styled so
/// pages render standalone (no assets to serve).
std::string HtmlPage(const std::string& title, const std::string& body) {
  return StrFormat(
      "<!DOCTYPE html><html><head><title>%s</title><style>"
      "body{font-family:monospace;margin:2em;}"
      "table{border-collapse:collapse;}"
      "td,th{border:1px solid #999;padding:2px 8px;text-align:left;}"
      "th{background:#eee;}"
      "h1{font-size:1.3em;}h2{font-size:1.1em;}"
      "</style></head><body><h1>%s</h1>%s"
      "<hr><p><a href=\"/\">debugz index</a></p></body></html>\n",
      title.c_str(), title.c_str(), body.c_str());
}

bool ParseRequestLine(const std::string& line, Request* out) {
  // "GET /path?k=v HTTP/1.1"
  const std::vector<std::string> parts = SplitWhitespace(line);
  if (parts.size() != 3 || parts[0] != "GET") return false;
  const std::string& target = parts[1];
  const size_t question = target.find('?');
  out->path = target.substr(0, question);
  if (question != std::string::npos) {
    for (const std::string& pair :
         Split(target.substr(question + 1), '&')) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        out->params[pair];
      } else {
        out->params[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
    }
  }
  return true;
}

/// Reads until the end of the request headers (we never accept bodies). The
/// socket carries a receive timeout, so a stalled client costs at most that.
bool ReadRequest(int fd, std::string* raw) {
  char buf[1024];
  while (raw->size() < 8192) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    raw->append(buf, static_cast<size_t>(n));
    if (raw->find("\r\n\r\n") != std::string::npos ||
        raw->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void WriteResponse(int fd, const Response& response) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              StatusText(response.status));
  out.append("Content-Type: " + response.content_type + "\r\n");
  out.append(StrFormat("Content-Length: %zu\r\n", response.body.size()));
  for (const std::string& header : response.extra_headers) {
    out.append(header + "\r\n");
  }
  out.append("Connection: close\r\n\r\n");
  out.append(response.body);
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing useful to do
    sent += static_cast<size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// Endpoint renderers. Each one reads only snapshot-style APIs (atomics,
// seqlock snapshots, lock-scoped copies) — never a lock shared with a query
// hot path.

Response RenderIndex(
    const std::vector<std::pair<std::string, std::string>>& extra_pages) {
  Response r;
  r.content_type = "text/html; charset=utf-8";
  std::string list =
      "<ul>"
      "<li><a href=\"/healthz\">/healthz</a> — liveness + degradation</li>"
      "<li><a href=\"/statusz\">/statusz</a> — build, uptime, status "
      "sections</li>"
      "<li><a href=\"/metricsz\">/metricsz</a> — Prometheus text</li>"
      "<li><a href=\"/varz\">/varz</a> — metrics JSON</li>"
      "<li><a href=\"/querylogz\">/querylogz</a> — recent queries "
      "(<a href=\"/querylogz?format=jsonl\">jsonl</a>)</li>"
      "<li><a href=\"/tracez\">/tracez</a> — promoted slow traces</li>"
      "<li><a href=\"/memz\">/memz</a> — memory breakdown</li>"
      "<li><a href=\"/profilez?seconds=1\">/profilez?seconds=1</a> — CPU "
      "profile (folded stacks)</li>";
  for (const auto& [path, description] : extra_pages) {
    list.append(StrFormat("<li><a href=\"%s\">%s</a> — %s</li>",
                          HtmlEscape(path).c_str(), HtmlEscape(path).c_str(),
                          HtmlEscape(description).c_str()));
  }
  list.append("</ul>");
  r.body = HtmlPage("mira debugz", list);
  return r;
}

Response RenderHealthz() {
  Response r;
  std::string body = "ok\n";
  body.append(StrFormat("uptime_ms: %.3f\n", LogUptimeMillis()));
  body.append("wall_clock: " + WallClockIso8601() + "\n");
  // Degradation summary: any non-zero counter whose name says the system
  // shed work. Zero lines after the header means fully healthy.
  body.append("degradation:\n");
  bool any = false;
  for (const auto& [name, value] : MetricRegistry::Global().CounterValues()) {
    if (value == 0) continue;
    const bool degradation_signal =
        name.find("degraded") != std::string::npos ||
        name.find("dropped") != std::string::npos ||
        name.find("partial") != std::string::npos ||
        name.find("cancelled") != std::string::npos ||
        name.find("deadline") != std::string::npos ||
        name.find("sampled_out") != std::string::npos ||
        name.find("shed") != std::string::npos ||
        name.find("evicted") != std::string::npos ||
        name.find("rejected") != std::string::npos;
    if (!degradation_signal) continue;
    any = true;
    body.append(StrFormat("  %s: %llu\n", name.c_str(),
                          static_cast<unsigned long long>(value)));
  }
  if (!any) body.append("  (none)\n");
  r.body = std::move(body);
  return r;
}

Response RenderStatusz(
    const std::vector<std::pair<std::string, std::function<std::string()>>>&
        sections) {
  Response r;
  r.content_type = "text/html; charset=utf-8";
  std::string body = "<h2>Process</h2><table>";
  body.append(StrFormat("<tr><th>uptime_ms</th><td>%.3f</td></tr>",
                        LogUptimeMillis()));
  body.append("<tr><th>wall_clock</th><td>" + WallClockIso8601() +
              "</td></tr>");
  body.append(StrFormat("<tr><th>pid</th><td>%d</td></tr>",
                        static_cast<int>(getpid())));
  body.append("<tr><th>compiler</th><td>" + HtmlEscape(__VERSION__) +
              "</td></tr>");
#ifdef NDEBUG
  body.append("<tr><th>build</th><td>release (NDEBUG)</td></tr>");
#else
  body.append("<tr><th>build</th><td>debug</td></tr>");
#endif
  body.append("<tr><th>obs</th><td>enabled</td></tr>");
  body.append(StrFormat("<tr><th>trace_sampling</th><td>every %u</td></tr>",
                        TraceSamplingRate()));
  body.append(StrFormat("<tr><th>cpu_profile_active</th><td>%s</td></tr>",
                        CpuProfileActive() ? "yes" : "no"));
  body.append("</table>");

  // Thread-pool load (and anything else gauge-shaped that smells like
  // scheduling state) straight from the registry.
  std::string pool_rows;
  for (const auto& [name, value] : MetricRegistry::Global().GaugeValues()) {
    if (name.rfind("mira.pool.", 0) != 0) continue;
    pool_rows.append(StrFormat("<tr><td>%s</td><td>%.9g</td></tr>",
                               HtmlEscape(name).c_str(), value));
  }
  if (!pool_rows.empty()) {
    body.append("<h2>Thread pools</h2><table><tr><th>gauge</th>"
                "<th>value</th></tr>" +
                pool_rows + "</table>");
  }

  for (const auto& [title, render] : sections) {
    body.append("<h2>" + HtmlEscape(title) + "</h2><pre>" +
                HtmlEscape(render()) + "</pre>");
  }
  r.body = HtmlPage("mira statusz", body);
  return r;
}

Response RenderMetricsz() {
  Response r;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = MetricRegistry::Global().ExportText();
  return r;
}

Response RenderVarz() {
  Response r;
  r.content_type = "application/json";
  r.body = MetricRegistry::Global().ExportJson();
  return r;
}

Response RenderQuerylogz(const Request& request) {
  Response r;
  if (request.Param("format") == "jsonl") {
    r.content_type = "application/x-ndjson";
    r.body = QueryLog::Global().ExportJsonLines();
    return r;
  }
  const QueryLog& log = QueryLog::Global();
  const std::vector<QueryLogEntry> entries = log.Snapshot();
  std::string body = StrFormat(
      "<p>%llu recorded, %llu dropped, %zu resident "
      "(<a href=\"/querylogz?format=jsonl\">jsonl</a>)</p>",
      static_cast<unsigned long long>(log.total_recorded()),
      static_cast<unsigned long long>(log.dropped()), entries.size());
  body.append(
      "<table><tr><th>id</th><th>method</th><th>ok</th><th>k</th>"
      "<th>results</th><th>ms</th><th>flags</th><th>top spans</th></tr>");
  // Newest first: the page answers "what just happened".
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const QueryLogEntry& e = *it;
    std::string flags;
    if (e.degraded) flags.append("degraded ");
    if (e.partial) flags.append("partial ");
    if (e.traced) flags.append("traced ");
    if (e.shed) flags.append("shed ");
    if (e.evicted) flags.append("evicted ");
    if (e.preemptive) flags.append("preemptive ");
    std::string spans;
    for (const QueryLogTopSpan& span : e.top_spans) {
      if (span.name == nullptr) continue;
      spans.append(StrFormat("%s=%.3fms ", span.name, span.duration_ms));
    }
    body.append(StrFormat(
        "<tr><td>%llu</td><td>%s</td><td>%s</td><td>%u</td><td>%u</td>"
        "<td>%.3f</td><td>%s</td><td>%s</td></tr>",
        static_cast<unsigned long long>(e.id), HtmlEscape(e.method).c_str(),
        e.ok ? "ok" : "ERR", e.k, e.result_count, e.duration_ms,
        HtmlEscape(flags).c_str(), HtmlEscape(spans).c_str()));
  }
  body.append("</table>");
  r.content_type = "text/html; charset=utf-8";
  r.body = HtmlPage("mira querylogz", body);
  return r;
}

Response RenderTracez(const Request& request) {
  Response r;
  const std::vector<QueryLog::SlowTrace> traces =
      QueryLog::Global().SlowTraces();
  const std::string format = request.Param("format");
  if (format == "chrome") {
    // Download one promoted trace as a complete Chrome-trace document
    // (chrome://tracing / ui.perfetto.dev). Default: the newest.
    const std::string id_text = request.Param("id");
    const QueryLog::SlowTrace* chosen =
        traces.empty() ? nullptr : &traces.back();
    if (!id_text.empty()) {
      chosen = nullptr;
      for (const QueryLog::SlowTrace& trace : traces) {
        if (std::to_string(trace.id) == id_text) chosen = &trace;
      }
    }
    if (chosen == nullptr) {
      r.status = 404;
      r.body = "no promoted trace with that id\n";
      return r;
    }
    r.content_type = "application/json";
    r.extra_headers.push_back(StrFormat(
        "Content-Disposition: attachment; filename=\"trace_query_%llu.json\"",
        static_cast<unsigned long long>(chosen->id)));
    r.body = chosen->chrome_json;
    return r;
  }
  std::string body = StrFormat(
      "<p>%zu promoted slow trace(s) (threshold %.3f ms; newest last)</p>",
      traces.size(), QueryLog::Global().slow_threshold_ms());
  body.append("<table><tr><th>query id</th><th>duration ms</th>"
              "<th>download</th></tr>");
  for (const QueryLog::SlowTrace& trace : traces) {
    body.append(StrFormat(
        "<tr><td>%llu</td><td>%.3f</td>"
        "<td><a href=\"/tracez?id=%llu&amp;format=chrome\">chrome json</a>"
        "</td></tr>",
        static_cast<unsigned long long>(trace.id), trace.duration_ms,
        static_cast<unsigned long long>(trace.id)));
  }
  body.append("</table>");
  r.content_type = "text/html; charset=utf-8";
  r.body = HtmlPage("mira tracez", body);
  return r;
}

Response RenderMemz() {
  Response r;
  std::string body = "resident bytes by component (mira.mem.* gauges)\n\n";
  double total = 0.0;
  bool any = false;
  for (const auto& [name, value] : MetricRegistry::Global().GaugeValues()) {
    if (name.rfind("mira.mem.", 0) != 0) continue;
    any = true;
    if (name == "mira.mem.total_bytes") {
      total = value;
      continue;
    }
    body.append(StrFormat("%-48s %16.0f\n", name.c_str(), value));
  }
  if (!any) {
    body.append("(no mira.mem.* gauges published — register a collector "
                "that calls PublishResourceMetrics)\n");
  } else if (total > 0.0) {
    body.append(StrFormat("%-48s %16.0f\n", "mira.mem.total_bytes", total));
  }
  r.body = std::move(body);
  return r;
}

Response RenderProfilez(const Request& request) {
  Response r;
  CpuProfileOptions options;
  const std::string seconds = request.Param("seconds", "1");
  const std::string hz = request.Param("hz", "99");
  if (!LooksNumeric(seconds) || !LooksNumeric(hz)) {
    r.status = 400;
    r.body = "profilez: seconds and hz must be numeric\n";
    return r;
  }
  options.duration_seconds = std::clamp(std::atof(seconds.c_str()), 0.1, 30.0);
  options.frequency_hz = std::clamp(std::atoi(hz.c_str()), 1, 1000);
  CpuProfile profile;
  const Status status = CollectCpuProfile(options, &profile);
  if (!status.ok()) {
    r.status = status.code() == StatusCode::kUnavailable ? 503 : 500;
    r.body = status.ToString() + "\n";
    return r;
  }
  r.extra_headers.push_back(StrFormat(
      "X-Profile-Samples: %llu",
      static_cast<unsigned long long>(profile.samples_captured)));
  r.extra_headers.push_back(StrFormat(
      "X-Profile-Dropped: %llu",
      static_cast<unsigned long long>(profile.samples_dropped)));
  r.extra_headers.push_back(
      StrFormat("X-Profile-Hz: %d", profile.frequency_hz));
  // Pure folded-stacks body: pipe straight into flamegraph.pl / speedscope.
  r.body = std::move(profile.folded);
  return r;
}

Response RenderNotFound(const std::string& path) {
  Response r;
  r.status = 404;
  r.body = "no such debugz page: " + path +
           "\nknown: / /healthz /statusz /metricsz /varz /querylogz "
           "/tracez /memz /profilez\n";
  return r;
}

}  // namespace

DebugServer::~DebugServer() { Stop(); }

Status DebugServer::Start(const DebugServerOptions& options) {
  if (running()) {
    return Status::FailedPrecondition("debug server already running");
  }
  if (options.num_threads < 1 || options.num_threads > 64) {
    return Status::InvalidArgument(
        "debug server: num_threads must be in [1, 64]");
  }

  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("debug server: socket() failed");
  const int enable = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("debug server: bad bind address " +
                                   options.bind_address);
  }
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::IoError(StrFormat(
        "debug server: bind(%s:%u) failed: %s", options.bind_address.c_str(),
        options.port, std::strerror(errno)));
  }
  if (listen(fd, 16) != 0) {
    close(fd);
    return Status::IoError("debug server: listen() failed");
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) != 0) {
    close(fd);
    return Status::IoError("debug server: getsockname() failed");
  }

  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  threads_.reserve(static_cast<size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) {
    threads_.emplace_back([this] { ServeLoop(); });
  }
  MIRA_LOG_INFO() << "debugz serving on http://" << options.bind_address << ":"
                  << port_ << "/ (" << options.num_threads << " threads)";
  return Status::OK();
}

void DebugServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() makes every blocked accept() return immediately; the fd stays
  // open until the threads have joined so its number cannot be reused under
  // a still-running loop.
  shutdown(listen_fd_, SHUT_RDWR);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void DebugServer::AddCollector(std::function<void()> collector) {
  MutexLock lock(mu_);
  collectors_.push_back(std::move(collector));
}

void DebugServer::AddStatusSection(std::string title,
                                   std::function<std::string()> render) {
  MutexLock lock(mu_);
  sections_.emplace_back(std::move(title), std::move(render));
}

void DebugServer::AddPage(std::string path, std::string description,
                          std::function<std::string()> render) {
  MutexLock lock(mu_);
  for (Page& page : pages_) {
    if (page.path == path) {
      page.description = std::move(description);
      page.render = std::move(render);
      return;
    }
  }
  pages_.push_back(
      Page{std::move(path), std::move(description), std::move(render)});
}

void DebugServer::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listening socket is gone
    }
    // Bounded patience per connection: a stalled peer blocks one handler
    // thread for at most these windows, never the server.
    struct timeval recv_timeout{5, 0};
    setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
               sizeof(recv_timeout));
    struct timeval send_timeout{10, 0};
    setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));

    std::string raw;
    Request request;
    Response response;
    if (!ReadRequest(client, &raw)) {
      close(client);
      continue;
    }
    const size_t line_end = raw.find_first_of("\r\n");
    if (!ParseRequestLine(raw.substr(0, line_end), &request)) {
      response.status = 405;
      response.body = "only HTTP GET is served here\n";
    } else {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      static Counter& requests =
          MetricRegistry::Global().GetCounter("mira.debugz.requests");
      requests.Increment();

      // Refresh registered point-in-time gauges for the pages that render
      // registry state. Copy the hooks out so rendering never holds mu_.
      if (request.path == "/metricsz" || request.path == "/varz" ||
          request.path == "/memz" || request.path == "/statusz" ||
          request.path == "/healthz") {
        std::vector<std::function<void()>> collectors;
        {
          MutexLock lock(mu_);
          collectors = collectors_;
        }
        for (const auto& collector : collectors) collector();
      }

      if (request.path == "/" || request.path == "/index.html") {
        std::vector<std::pair<std::string, std::string>> extra_pages;
        {
          MutexLock lock(mu_);
          for (const Page& page : pages_) {
            extra_pages.emplace_back(page.path, page.description);
          }
        }
        response = RenderIndex(extra_pages);
      } else if (request.path == "/healthz") {
        response = RenderHealthz();
      } else if (request.path == "/statusz") {
        std::vector<std::pair<std::string, std::function<std::string()>>>
            sections;
        {
          MutexLock lock(mu_);
          sections = sections_;
        }
        response = RenderStatusz(sections);
      } else if (request.path == "/metricsz") {
        response = RenderMetricsz();
      } else if (request.path == "/varz") {
        response = RenderVarz();
      } else if (request.path == "/querylogz") {
        response = RenderQuerylogz(request);
      } else if (request.path == "/tracez") {
        response = RenderTracez(request);
      } else if (request.path == "/memz") {
        response = RenderMemz();
      } else if (request.path == "/profilez") {
        response = RenderProfilez(request);
      } else {
        // Registered extra pages (AddPage) before 404. Copy the renderer out
        // so rendering never holds mu_.
        std::function<std::string()> page_render;
        {
          MutexLock lock(mu_);
          for (const Page& page : pages_) {
            if (page.path == request.path) {
              page_render = page.render;
              break;
            }
          }
        }
        if (page_render) {
          response.body = page_render();
        } else {
          response = RenderNotFound(request.path);
        }
      }
    }
    WriteResponse(client, response);
    close(client);
  }
}

}  // namespace mira::obs

#endif  // MIRA_OBS_ENABLED
