#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/query_log.h"

namespace mira::obs {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view SloStateToString(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "ok";
    case SloState::kWarning:
      return "warning";
    case SloState::kBreach:
      return "breach";
  }
  return "unknown";
}

SloEngine::SloEngine(WindowedMetrics* windows, Options options)
    : windows_(windows), options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricRegistry::Global();
  }
  if (options_.eval_interval_s <= 0.0) options_.eval_interval_s = 1.0;
  if (options_.max_history < 1) options_.max_history = 1;
}

SloEngine::~SloEngine() { Stop(); }

void SloEngine::AddObjective(SloObjective objective) {
  if (objective.target_fraction <= 0.0) objective.target_fraction = 1e-9;
  if (objective.target_fraction > 1.0) objective.target_fraction = 1.0;
  for (const std::string& name : objective.bad_counters) {
    windows_->TrackCounter(name);
  }
  for (const std::string& name : objective.total_counters) {
    windows_->TrackCounter(name);
  }
  if (objective.kind == SloObjective::Kind::kLatency) {
    windows_->TrackHistogram(objective.histogram);
  }
  Tracked tracked;
  tracked.state_gauge =
      &options_.registry->GetGauge("mira.slo." + objective.name + ".state");
  tracked.burn_fast_gauge = &options_.registry->GetGauge(
      "mira.slo." + objective.name + ".burn_fast");
  tracked.burn_slow_gauge = &options_.registry->GetGauge(
      "mira.slo." + objective.name + ".burn_slow");
  tracked.last.name = objective.name;
  tracked.last.target_fraction = objective.target_fraction;
  tracked.objective = std::move(objective);
  MutexLock lock(eval_mu_);
  tracked_.push_back(std::move(tracked));
}

bool SloEngine::WindowBurn(const SloObjective& objective, double window_s,
                           double* burn, double* bad_fraction,
                           uint64_t* total) const {
  uint64_t bad = 0;
  uint64_t all = 0;
  if (objective.kind == SloObjective::Kind::kRatio) {
    for (const std::string& name : objective.total_counters) {
      WindowedMetrics::WindowRate rate =
          windows_->CounterRate(name, window_s);
      if (!rate.ok) return false;
      all += rate.delta;
    }
    for (const std::string& name : objective.bad_counters) {
      WindowedMetrics::WindowRate rate =
          windows_->CounterRate(name, window_s);
      if (!rate.ok) return false;
      bad += rate.delta;
    }
  } else {
    WindowedMetrics::WindowHistogram window =
        windows_->HistogramWindow(objective.histogram, window_s);
    if (!window.ok) return false;
    all = window.delta.count;
    // Observations in buckets strictly above the threshold's own bucket are
    // "bad": within one sub-bucket (<= 25% relative width) of the exact cut.
    const size_t threshold_bucket =
        Histogram::BucketIndex(objective.threshold_ms);
    for (size_t b = threshold_bucket + 1; b < Histogram::kNumBuckets; ++b) {
      bad += window.delta.buckets[b];
    }
  }
  const double fraction =
      all > 0 ? static_cast<double>(bad) / static_cast<double>(all) : 0.0;
  *bad_fraction = fraction;
  *burn = fraction / objective.target_fraction;
  *total = all;
  return true;
}

void SloEngine::Evaluate(double now_s) {
  std::vector<SloStatus> statuses;
  statuses.reserve(tracked_.size());
  std::vector<SloTransition> transitions;
  for (Tracked& tracked : tracked_) {
    const SloObjective& objective = tracked.objective;
    SloStatus status;
    status.name = objective.name;
    status.target_fraction = objective.target_fraction;
    double slow_fraction = 0.0;
    uint64_t slow_total = 0;
    status.measurable =
        WindowBurn(objective, objective.fast_window_s, &status.burn_fast,
                   &status.bad_fraction_fast, &status.total_fast) &&
        WindowBurn(objective, objective.slow_window_s, &status.burn_slow,
                   &slow_fraction, &slow_total);

    SloState next = SloState::kOk;
    if (status.measurable) {
      const bool slow_burning = status.burn_slow >= objective.warn_burn;
      if (status.burn_fast >= objective.breach_burn && slow_burning) {
        next = SloState::kBreach;
      } else if (status.burn_fast >= objective.warn_burn || slow_burning) {
        next = SloState::kWarning;
      }
    }
    status.state = next;

    tracked.state_gauge->Set(static_cast<double>(static_cast<int>(next)));
    tracked.burn_fast_gauge->Set(status.burn_fast);
    tracked.burn_slow_gauge->Set(status.burn_slow);

    if (next != tracked.state) {
      SloTransition transition;
      transition.time_s = now_s;
      transition.objective = objective.name;
      transition.from = tracked.state;
      transition.to = next;
      transition.burn_fast = status.burn_fast;
      transition.burn_slow = status.burn_slow;
      transitions.push_back(transition);
      // Transitions are the signal; steady state is spam. Escalations into
      // breach warn, everything else informs.
      if (next == SloState::kBreach) {
        MIRA_LOG_WARNING() << "slo: " << objective.name << " "
                           << SloStateToString(tracked.state) << " -> breach"
                           << " (burn fast "
                           << StrFormat("%.2f", status.burn_fast) << " slow "
                           << StrFormat("%.2f", status.burn_slow) << ")";
      } else {
        MIRA_LOG_INFO() << "slo: " << objective.name << " "
                        << SloStateToString(tracked.state) << " -> "
                        << SloStateToString(next) << " (burn fast "
                        << StrFormat("%.2f", status.burn_fast) << " slow "
                        << StrFormat("%.2f", status.burn_slow) << ")";
      }
      if (options_.record_query_log) {
        QueryLogEntry entry;
        entry.SetMethod("slo");
        entry.SetTenant(objective.name);
        entry.ok = next == SloState::kOk;
        entry.duration_ms = status.burn_fast;  // burn, not a latency
        QueryLog::Global().Record(entry);
      }
      tracked.state = next;
    }
    tracked.last = status;
    statuses.push_back(std::move(status));
  }

  MutexLock lock(state_mu_);
  statuses_ = std::move(statuses);
  ++evaluations_;
  for (SloTransition& transition : transitions) {
    history_.push_back(std::move(transition));
    while (history_.size() > options_.max_history) history_.pop_front();
  }
}

void SloEngine::Step(double now_s) {
  MutexLock lock(eval_mu_);
  windows_->Tick(now_s);
  Evaluate(now_s);
}

void SloEngine::Start() {
  MutexLock lock(thread_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void SloEngine::Stop() {
  std::thread worker;
  {
    MutexLock lock(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    worker = std::move(thread_);
  }
  wake_.NotifyAll();
  worker.join();
}

bool SloEngine::running() const {
  MutexLock lock(thread_mu_);
  return running_;
}

void SloEngine::Loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.eval_interval_s));
  for (;;) {
    Step(MonotonicSeconds());
    MutexLock lock(thread_mu_);
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (!stop_requested_) {
      if (wake_.WaitUntil(lock, deadline)) break;
    }
    if (stop_requested_) return;
  }
}

std::vector<SloStatus> SloEngine::Statuses() const {
  MutexLock lock(state_mu_);
  return statuses_;
}

std::vector<SloTransition> SloEngine::History() const {
  MutexLock lock(state_mu_);
  return {history_.begin(), history_.end()};
}

uint64_t SloEngine::evaluations() const {
  MutexLock lock(state_mu_);
  return evaluations_;
}

}  // namespace mira::obs
