#include "vectordb/payload.h"

namespace mira::vectordb {

const PayloadValue* Payload::Get(std::string_view key) const {
  auto it = fields_.find(std::string(key));
  return it == fields_.end() ? nullptr : &it->second;
}

std::optional<std::string> Payload::GetString(std::string_view key) const {
  const PayloadValue* v = Get(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return std::nullopt;
}

std::optional<int64_t> Payload::GetInt(std::string_view key) const {
  const PayloadValue* v = Get(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* i = std::get_if<int64_t>(v)) return *i;
  return std::nullopt;
}

std::optional<double> Payload::GetDouble(std::string_view key) const {
  const PayloadValue* v = Get(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* d = std::get_if<double>(v)) return *d;
  return std::nullopt;
}

}  // namespace mira::vectordb
