#ifndef MIRA_VECTORDB_FILTER_H_
#define MIRA_VECTORDB_FILTER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <variant>
#include <vector>

#include "vectordb/payload.h"

namespace mira::vectordb {

/// One predicate on a payload field.
struct Condition {
  enum class Kind { kEquals, kIntIn, kIntRange };

  std::string field;
  Kind kind = Kind::kEquals;

  /// kEquals: the value to match exactly.
  PayloadValue equals_value;
  /// kIntIn: accepted integer values.
  std::unordered_set<int64_t> int_set;
  /// kIntRange: inclusive bounds.
  int64_t range_min = 0;
  int64_t range_max = 0;

  static Condition Equals(std::string field, PayloadValue value);
  static Condition IntIn(std::string field, std::vector<int64_t> values);
  static Condition IntRange(std::string field, int64_t min, int64_t max);

  bool Matches(const Payload& payload) const;
};

/// Conjunction of conditions (Qdrant's `must` clause). An empty filter
/// matches everything.
struct Filter {
  std::vector<Condition> must;

  bool Matches(const Payload& payload) const {
    for (const auto& cond : must) {
      if (!cond.Matches(payload)) return false;
    }
    return true;
  }
  bool empty() const { return must.empty(); }
};

}  // namespace mira::vectordb

#endif  // MIRA_VECTORDB_FILTER_H_
