#ifndef MIRA_VECTORDB_COLLECTION_H_
#define MIRA_VECTORDB_COLLECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "index/product_quantizer.h"
#include "index/vector_index.h"
#include "vecmath/distance.h"
#include "vectordb/filter.h"
#include "vectordb/payload.h"

namespace mira::vectordb {

/// Which search structure backs a collection.
enum class IndexKind {
  /// Exact brute force.
  kFlat,
  /// HNSW graph on raw vectors.
  kHnsw,
  /// HNSW graph with PQ-compressed traversal + exact rescoring — the ANNS
  /// configuration of the paper (§4.2: PQ preprocessing + HNSW index).
  kHnswPq,
  /// Inverted-file index (k-means cells, nprobe scan) — FAISS-style
  /// alternative backend.
  kIvf,
};

struct CollectionParams {
  size_t dim = 0;
  vecmath::Metric metric = vecmath::Metric::kCosine;
  IndexKind index_kind = IndexKind::kHnswPq;
  size_t hnsw_m = 16;
  size_t hnsw_ef_construction = 200;
  size_t hnsw_ef_search = 64;
  /// PQ subquantizers (kHnswPq only); must divide dim.
  size_t pq_subquantizers = 16;
  /// PQ code width in bits (kHnswPq only): 8 (256-centroid codebooks) or 4
  /// (16-centroid fast-scan codebooks, half the code storage).
  size_t pq_nbits = 8;
  /// IVF cells (kIvf only); 0 = sqrt(n).
  size_t ivf_nlist = 0;
  /// IVF cells probed per query (kIvf only).
  size_t ivf_nprobe = 8;
  uint64_t seed = 7;
};

/// One stored point.
struct Point {
  uint64_t id = 0;
  vecmath::Vec vector;
  Payload payload;
};

/// A search hit: id, metric similarity, payload reference.
struct SearchHit {
  uint64_t id = 0;
  float score = 0.f;
  const Payload* payload = nullptr;
};

/// Resident-byte breakdown of a collection, for the `mira.mem.*` gauges:
/// stored points (vectors + payload estimate), the payload inverted index,
/// and the vector index's own MemoryStats.
struct CollectionMemoryStats {
  size_t points_bytes = 0;         ///< Stored vectors + payload estimate.
  size_t payload_index_bytes = 0;  ///< Inverted payload index.
  index::MemoryStats index;        ///< Vector-index breakdown.
  size_t total() const {
    return points_bytes + payload_index_bytes + index.total();
  }
};

/// A named set of points with payloads and a vector index — the unit of
/// storage of the vector database (Qdrant's "collection").
///
/// Lifecycle: Upsert() points, BuildIndex() once, then Search()/Scroll().
/// Payload-filtered search uses the payload inverted index when every filter
/// field is indexed (exact pre-filtering), and oversampled ANN post-filtering
/// otherwise.
///
/// Thread-safety: Upsert/CreatePayloadIndex/BuildIndex take an exclusive
/// lock; Search/Get/Scroll/IndexMemoryBytes/size/built take a shared lock,
/// so any mix of these calls is free of data races (out-of-phase calls fail
/// cleanly with FailedPrecondition instead). Pointers returned by
/// Search/Get/Scroll remain valid only until the next successful Upsert.
/// The reference-returning accessors (name, params, points, indexed_fields)
/// are unsynchronized: callers must ensure no concurrent writer.
class Collection {
 public:
  Collection(std::string name, CollectionParams params);

  /// Inserts a point; replaces an existing point with the same id (before
  /// BuildIndex only).
  [[nodiscard]] Status Upsert(Point point);

  /// Finalizes the collection: trains/builds the configured vector index and
  /// the payload indexes.
  [[nodiscard]] Status BuildIndex();

  /// Marks a payload field for inverted indexing (call before BuildIndex).
  void CreatePayloadIndex(std::string field);

  /// k-NN search; `filter` restricts candidates by payload. `control`
  /// (nullable, not owned) bounds the query: when its deadline expires or
  /// its token fires mid-scan, Search returns kDeadlineExceeded/kCancelled
  /// instead of hits.
  [[nodiscard]] Result<std::vector<SearchHit>> Search(
      const vecmath::Vec& query, size_t k, size_t ef = 0,
      const Filter& filter = {}, const QueryControl* control = nullptr) const;

  /// Point lookup by id.
  [[nodiscard]] Result<const Point*> Get(uint64_t id) const;

  /// All points matching `filter`, in id order.
  std::vector<const Point*> Scroll(const Filter& filter = {}) const;

  const std::string& name() const { return name_; }
  /// Unsynchronized by contract (params_.dim may still settle during the
  /// upsert phase); callers read it between phases or under their own
  /// ordering. See the class comment.
  const CollectionParams& params() const MIRA_NO_THREAD_SAFETY_ANALYSIS {
    return params_;
  }
  size_t size() const {
    ReaderLock lock(mu_);
    return points_.size();
  }
  bool built() const {
    ReaderLock lock(mu_);
    return built_;
  }
  /// Unsynchronized by contract (see the class comment): hands out a
  /// reference without the lock, so the caller must ensure no concurrent
  /// writer. The escape hatch is deliberate — build pipelines and benches
  /// iterate points() single-threaded, and copying the corpus per call is
  /// not an option.
  const std::vector<Point>& points() const MIRA_NO_THREAD_SAFETY_ANALYSIS {
    return points_;
  }
  /// Unsynchronized by contract, like points().
  const std::vector<std::string>& indexed_fields() const
      MIRA_NO_THREAD_SAFETY_ANALYSIS {
    return indexed_fields_;
  }

  /// Resident bytes of index structures (storage-reduction reporting).
  size_t IndexMemoryBytes() const;

  /// Full resident-byte breakdown (points, payload index, vector index).
  /// Takes the shared lock, like IndexMemoryBytes.
  CollectionMemoryStats MemoryUsage() const;

 private:
  std::string PayloadKeyOf(const PayloadValue& value) const;
  /// Candidate point offsets for a filter via the payload indexes, or nullopt
  /// when not all fields are indexed. Caller holds at least the shared lock.
  std::optional<std::vector<size_t>> PreFilterCandidates(const Filter& filter)
      const MIRA_REQUIRES_SHARED(mu_);

  /// Guards all mutable state below; see the class comment for the contract.
  mutable SharedMutex mu_;

  std::string name_;  ///< Immutable after construction.
  CollectionParams params_ MIRA_GUARDED_BY(mu_);
  std::vector<Point> points_ MIRA_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, size_t> id_to_offset_ MIRA_GUARDED_BY(mu_);
  std::unique_ptr<index::VectorIndex> index_ MIRA_GUARDED_BY(mu_);
  bool built_ MIRA_GUARDED_BY(mu_) = false;

  /// field -> serialized value -> point offsets.
  std::vector<std::string> indexed_fields_ MIRA_GUARDED_BY(mu_);
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<size_t>>>
      payload_index_ MIRA_GUARDED_BY(mu_);
};

}  // namespace mira::vectordb

#endif  // MIRA_VECTORDB_COLLECTION_H_
