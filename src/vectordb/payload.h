#ifndef MIRA_VECTORDB_PAYLOAD_H_
#define MIRA_VECTORDB_PAYLOAD_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace mira::vectordb {

/// A payload field value: string, integer or double.
using PayloadValue = std::variant<std::string, int64_t, double>;

/// Structured metadata attached to a stored point — in MIRA's pipelines the
/// relation id, attribute name, cluster id etc. (Algorithm 2 stores "relation
/// ID, attribute name, etc." with each vector).
class Payload {
 public:
  void Set(std::string key, PayloadValue value) {
    fields_[std::move(key)] = std::move(value);
  }
  void SetString(std::string key, std::string value) {
    Set(std::move(key), PayloadValue(std::move(value)));
  }
  void SetInt(std::string key, int64_t value) {
    Set(std::move(key), PayloadValue(value));
  }
  void SetDouble(std::string key, double value) {
    Set(std::move(key), PayloadValue(value));
  }

  /// Typed getters; empty when missing or differently typed.
  std::optional<std::string> GetString(std::string_view key) const;
  std::optional<int64_t> GetInt(std::string_view key) const;
  std::optional<double> GetDouble(std::string_view key) const;

  bool Has(std::string_view key) const {
    return fields_.find(std::string(key)) != fields_.end();
  }
  const PayloadValue* Get(std::string_view key) const;

  size_t size() const { return fields_.size(); }
  auto begin() const { return fields_.begin(); }
  auto end() const { return fields_.end(); }

 private:
  // std::map keeps snapshot serialization deterministic.
  std::map<std::string, PayloadValue> fields_;
};

}  // namespace mira::vectordb

#endif  // MIRA_VECTORDB_PAYLOAD_H_
