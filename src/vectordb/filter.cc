#include "vectordb/filter.h"

namespace mira::vectordb {

Condition Condition::Equals(std::string field, PayloadValue value) {
  Condition c;
  c.field = std::move(field);
  c.kind = Kind::kEquals;
  c.equals_value = std::move(value);
  return c;
}

Condition Condition::IntIn(std::string field, std::vector<int64_t> values) {
  Condition c;
  c.field = std::move(field);
  c.kind = Kind::kIntIn;
  c.int_set.insert(values.begin(), values.end());
  return c;
}

Condition Condition::IntRange(std::string field, int64_t min, int64_t max) {
  Condition c;
  c.field = std::move(field);
  c.kind = Kind::kIntRange;
  c.range_min = min;
  c.range_max = max;
  return c;
}

bool Condition::Matches(const Payload& payload) const {
  const PayloadValue* value = payload.Get(field);
  if (value == nullptr) return false;
  switch (kind) {
    case Kind::kEquals:
      return *value == equals_value;
    case Kind::kIntIn: {
      const auto* i = std::get_if<int64_t>(value);
      return i != nullptr && int_set.count(*i) > 0;
    }
    case Kind::kIntRange: {
      const auto* i = std::get_if<int64_t>(value);
      return i != nullptr && *i >= range_min && *i <= range_max;
    }
  }
  return false;
}

}  // namespace mira::vectordb
