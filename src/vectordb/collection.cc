#include "vectordb/collection.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/sync.h"
#include "index/flat_index.h"
#include "obs/trace.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "vecmath/top_k.h"
#include "vecmath/vector_ops.h"

namespace mira::vectordb {

Collection::Collection(std::string name, CollectionParams params)
    : name_(std::move(name)), params_(params) {}

Status Collection::Upsert(Point point) {
  MIRA_FAILPOINT("vectordb.upsert");
  WriterLock lock(mu_);
  if (built_) {
    return Status::FailedPrecondition(
        StrFormat("collection '%s': upsert after BuildIndex", name_.c_str()));
  }
  if (params_.dim == 0) {
    params_.dim = point.vector.size();
  } else if (point.vector.size() != params_.dim) {
    return Status::InvalidArgument(
        StrFormat("collection '%s': vector dim %zu != %zu", name_.c_str(),
                  point.vector.size(), params_.dim));
  }
  auto it = id_to_offset_.find(point.id);
  if (it != id_to_offset_.end()) {
    points_[it->second] = std::move(point);
  } else {
    id_to_offset_.emplace(point.id, points_.size());
    points_.push_back(std::move(point));
  }
  return Status::OK();
}

void Collection::CreatePayloadIndex(std::string field) {
  WriterLock lock(mu_);
  if (std::find(indexed_fields_.begin(), indexed_fields_.end(), field) ==
      indexed_fields_.end()) {
    indexed_fields_.push_back(std::move(field));
  }
}

std::string Collection::PayloadKeyOf(const PayloadValue& value) const {
  if (const auto* s = std::get_if<std::string>(&value)) return "s:" + *s;
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return "i:" + std::to_string(*i);
  }
  return "d:" + std::to_string(std::get<double>(value));
}

Status Collection::BuildIndex() {
  MIRA_FAILPOINT("index.build");
  WriterLock lock(mu_);
  if (built_) {
    return Status::FailedPrecondition(
        StrFormat("collection '%s': BuildIndex called twice", name_.c_str()));
  }
  if (points_.empty()) {
    return Status::FailedPrecondition(
        StrFormat("collection '%s': no points", name_.c_str()));
  }

  switch (params_.index_kind) {
    case IndexKind::kFlat:
      index_ = std::make_unique<index::FlatIndex>(params_.metric);
      break;
    case IndexKind::kIvf: {
      index::IvfOptions opts;
      opts.nlist = params_.ivf_nlist;
      opts.nprobe = params_.ivf_nprobe;
      opts.metric = params_.metric;
      opts.seed = params_.seed;
      index_ = std::make_unique<index::IvfIndex>(opts);
      break;
    }
    case IndexKind::kHnsw:
    case IndexKind::kHnswPq: {
      index::HnswOptions opts;
      opts.M = params_.hnsw_m;
      opts.ef_construction = params_.hnsw_ef_construction;
      opts.ef_search = params_.hnsw_ef_search;
      opts.metric = params_.metric;
      opts.seed = params_.seed;
      if (params_.index_kind == IndexKind::kHnswPq) {
        index::PqOptions pq;
        // Shrink m for small dims so it always divides; PQ needs subvectors.
        size_t m = params_.pq_subquantizers;
        while (m > 1 && params_.dim % m != 0) --m;
        pq.num_subquantizers = m;
        pq.nbits = params_.pq_nbits;
        opts.quantization = pq;
      }
      index_ = std::make_unique<index::HnswIndex>(opts);
      break;
    }
  }
  index_->Reserve(points_.size());
  for (const Point& p : points_) {
    MIRA_RETURN_NOT_OK(index_->Add(p.id, p.vector));
  }
  MIRA_RETURN_NOT_OK(index_->Build());

  for (const auto& field : indexed_fields_) {
    auto& by_value = payload_index_[field];
    for (size_t offset = 0; offset < points_.size(); ++offset) {
      const PayloadValue* v = points_[offset].payload.Get(field);
      if (v != nullptr) by_value[PayloadKeyOf(*v)].push_back(offset);
    }
  }

  built_ = true;
  return Status::OK();
}

std::optional<std::vector<size_t>> Collection::PreFilterCandidates(
    const Filter& filter) const {
  // Only pure-equality filters over indexed fields can be answered from the
  // inverted payload index.
  std::vector<size_t> candidates;
  bool first = true;
  for (const auto& cond : filter.must) {
    if (cond.kind != Condition::Kind::kEquals) return std::nullopt;
    auto field_it = payload_index_.find(cond.field);
    if (field_it == payload_index_.end()) return std::nullopt;
    auto value_it = field_it->second.find(PayloadKeyOf(cond.equals_value));
    std::vector<size_t> matches;
    if (value_it != field_it->second.end()) matches = value_it->second;
    if (first) {
      candidates = std::move(matches);
      first = false;
    } else {
      // Intersect sorted offset lists.
      std::vector<size_t> merged;
      std::set_intersection(candidates.begin(), candidates.end(),
                            matches.begin(), matches.end(),
                            std::back_inserter(merged));
      candidates = std::move(merged);
    }
    if (candidates.empty()) break;
  }
  return candidates;
}

Result<std::vector<SearchHit>> Collection::Search(
    const vecmath::Vec& query, size_t k, size_t ef, const Filter& filter,
    const QueryControl* control) const {
  MIRA_FAILPOINT("vectordb.search");
  obs::TraceSpan span("vdb.search");
  span.SetLabel(name_);
  span.AddCounter("k", static_cast<int64_t>(k));
  ReaderLock lock(mu_);
  if (!built_) {
    return Status::FailedPrecondition(
        StrFormat("collection '%s': BuildIndex not called", name_.c_str()));
  }
  if (query.size() != params_.dim) {
    return Status::InvalidArgument(
        StrFormat("collection '%s': query dim %zu != %zu", name_.c_str(),
                  query.size(), params_.dim));
  }

  std::vector<SearchHit> hits;
  if (filter.empty()) {
    index::SearchParams params{k, ef, control};
    MIRA_ASSIGN_OR_RETURN(auto scored, index_->Search(query, params));
    hits.reserve(scored.size());
    for (const auto& s : scored) {
      hits.push_back({s.id, s.score, &points_[id_to_offset_.at(s.id)].payload});
    }
    return hits;
  }

  auto candidates = PreFilterCandidates(filter);
  if (candidates.has_value()) {
    // Exact scoring over the (typically small) pre-filtered candidate set.
    vecmath::Vec q = params_.metric == vecmath::Metric::kCosine
                         ? vecmath::Normalized(query)
                         : query;
    vecmath::TopK top(k);
    size_t scanned = 0;
    for (size_t offset : *candidates) {
      // Amortized budget check: candidate sets are usually small, but a
      // broad filter can match most of the collection.
      if (control != nullptr && scanned++ % 4096 == 0) {
        MIRA_RETURN_NOT_OK(control->Check("vdb.prefilter_scan"));
      }
      float sim = vecmath::MetricSimilarity(params_.metric, q,
                                            points_[offset].vector);
      top.Push(offset, sim);
    }
    for (const auto& s : top.Take()) {
      const Point& p = points_[s.id];
      hits.push_back({p.id, s.score, &p.payload});
    }
    return hits;
  }

  // Fallback: oversampled ANN search post-filtered on payload.
  constexpr size_t kOversample = 4;
  index::SearchParams params{std::min(points_.size(), k * kOversample), ef,
                             control};
  MIRA_ASSIGN_OR_RETURN(auto scored, index_->Search(query, params));
  for (const auto& s : scored) {
    if (hits.size() >= k) break;
    const Point& p = points_[id_to_offset_.at(s.id)];
    if (filter.Matches(p.payload)) hits.push_back({p.id, s.score, &p.payload});
  }
  return hits;
}

Result<const Point*> Collection::Get(uint64_t id) const {
  ReaderLock lock(mu_);
  auto it = id_to_offset_.find(id);
  if (it == id_to_offset_.end()) {
    return Status::NotFound(
        StrFormat("collection '%s': point %llu", name_.c_str(),
                  static_cast<unsigned long long>(id)));
  }
  return &points_[it->second];
}

std::vector<const Point*> Collection::Scroll(const Filter& filter) const {
  ReaderLock lock(mu_);
  std::vector<const Point*> out;
  for (const Point& p : points_) {
    if (filter.Matches(p.payload)) out.push_back(&p);
  }
  std::sort(out.begin(), out.end(),
            [](const Point* a, const Point* b) { return a->id < b->id; });
  return out;
}

size_t Collection::IndexMemoryBytes() const {
  ReaderLock lock(mu_);
  return index_ ? index_->MemoryBytes() : 0;
}

namespace {

size_t PayloadValueBytes(const PayloadValue& value) {
  if (const auto* text = std::get_if<std::string>(&value)) {
    return sizeof(PayloadValue) + text->size();
  }
  return sizeof(PayloadValue);
}

}  // namespace

CollectionMemoryStats Collection::MemoryUsage() const {
  ReaderLock lock(mu_);
  CollectionMemoryStats stats;
  for (const Point& point : points_) {
    stats.points_bytes += sizeof(Point) + point.vector.size() * sizeof(float);
    for (const auto& [key, value] : point.payload) {
      stats.points_bytes += key.size() + PayloadValueBytes(value);
    }
  }
  stats.points_bytes += id_to_offset_.size() *
                        (sizeof(uint64_t) + sizeof(size_t));
  for (const auto& [field, values] : payload_index_) {
    stats.payload_index_bytes += field.size();
    for (const auto& [key, offsets] : values) {
      stats.payload_index_bytes += key.size() +
                                   offsets.size() * sizeof(size_t);
    }
  }
  if (index_) stats.index = index_->MemoryUsage();
  return stats;
}

}  // namespace mira::vectordb
