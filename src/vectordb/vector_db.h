#ifndef MIRA_VECTORDB_VECTOR_DB_H_
#define MIRA_VECTORDB_VECTOR_DB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "vectordb/collection.h"

namespace mira::vectordb {

/// Embedded vector database: a registry of named collections. MIRA's
/// substitute for the Qdrant server the paper deploys — same concepts
/// (collections, points, payloads, HNSW/PQ indexes), no network hop.
class VectorDb {
 public:
  VectorDb() = default;
  VectorDb(const VectorDb&) = delete;
  VectorDb& operator=(const VectorDb&) = delete;
  VectorDb(VectorDb&&) = default;
  VectorDb& operator=(VectorDb&&) = default;

  /// Creates a collection; fails if the name exists.
  [[nodiscard]] Result<Collection*> CreateCollection(const std::string& name,
                                       CollectionParams params);

  /// Looks up a collection.
  [[nodiscard]] Result<Collection*> GetCollection(const std::string& name);
  [[nodiscard]] Result<const Collection*> GetCollection(const std::string& name) const;

  [[nodiscard]] Status DropCollection(const std::string& name);

  std::vector<std::string> ListCollections() const;
  size_t num_collections() const { return collections_.size(); }

  /// Serializes every collection's points and parameters to a binary
  /// snapshot file. Indexes are rebuilt on load (they are derived state).
  [[nodiscard]] Status SaveSnapshot(const std::string& path) const;

  /// Restores a database from a snapshot and rebuilds all indexes.
  [[nodiscard]] static Result<VectorDb> LoadSnapshot(const std::string& path);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace mira::vectordb

#endif  // MIRA_VECTORDB_VECTOR_DB_H_
