#include "vectordb/vector_db.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/string_util.h"

namespace mira::vectordb {

namespace {

// Version 2 added pq_nbits to the per-collection params. Snapshots are
// ephemeral (not an interchange format), so old versions are rejected
// rather than migrated.
constexpr char kMagic[8] = {'M', 'I', 'R', 'A', 'V', 'D', 'B', '2'};

// Little-endian binary primitives. MIRA targets a single host architecture;
// snapshots are not an interchange format.
void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteI64(std::ofstream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ofstream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ofstream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void WriteFloats(std::ofstream& out, const std::vector<float>& v) {
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadI64(std::ifstream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadF64(std::ifstream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadString(std::ifstream& in, std::string* s) {
  uint64_t size = 0;
  if (!ReadU64(in, &size)) return false;
  s->resize(size);
  in.read(s->data(), static_cast<std::streamsize>(size));
  return in.good();
}
bool ReadFloats(std::ifstream& in, std::vector<float>* v) {
  uint64_t size = 0;
  if (!ReadU64(in, &size)) return false;
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(float)));
  return in.good();
}

}  // namespace

Result<Collection*> VectorDb::CreateCollection(const std::string& name,
                                               CollectionParams params) {
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists(
        StrFormat("collection '%s' already exists", name.c_str()));
  }
  auto collection = std::make_unique<Collection>(name, params);
  Collection* raw = collection.get();
  collections_.emplace(name, std::move(collection));
  return raw;
}

Result<Collection*> VectorDb::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound(StrFormat("collection '%s'", name.c_str()));
  }
  return it->second.get();
}

Result<const Collection*> VectorDb::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound(StrFormat("collection '%s'", name.c_str()));
  }
  return static_cast<const Collection*>(it->second.get());
}

Status VectorDb::DropCollection(const std::string& name) {
  if (collections_.erase(name) == 0) {
    return Status::NotFound(StrFormat("collection '%s'", name.c_str()));
  }
  return Status::OK();
}

std::vector<std::string> VectorDb::ListCollections() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

Status VectorDb::SaveSnapshot(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, collections_.size());
  for (const auto& [name, collection] : collections_) {
    WriteString(out, name);
    const CollectionParams& p = collection->params();
    WriteU64(out, p.dim);
    WriteU64(out, static_cast<uint64_t>(p.metric));
    WriteU64(out, static_cast<uint64_t>(p.index_kind));
    WriteU64(out, p.hnsw_m);
    WriteU64(out, p.hnsw_ef_construction);
    WriteU64(out, p.hnsw_ef_search);
    WriteU64(out, p.pq_subquantizers);
    WriteU64(out, p.pq_nbits);
    WriteU64(out, p.ivf_nlist);
    WriteU64(out, p.ivf_nprobe);
    WriteU64(out, p.seed);
    const auto& indexed = collection->indexed_fields();
    WriteU64(out, indexed.size());
    for (const auto& field : indexed) WriteString(out, field);
    const auto& points = collection->points();
    WriteU64(out, points.size());
    for (const Point& point : points) {
      WriteU64(out, point.id);
      WriteFloats(out, point.vector);
      WriteU64(out, point.payload.size());
      for (const auto& [key, value] : point.payload) {
        WriteString(out, key);
        if (const auto* s = std::get_if<std::string>(&value)) {
          WriteU64(out, 0);
          WriteString(out, *s);
        } else if (const auto* i = std::get_if<int64_t>(&value)) {
          WriteU64(out, 1);
          WriteI64(out, *i);
        } else {
          WriteU64(out, 2);
          WriteF64(out, std::get<double>(value));
        }
      }
    }
  }
  if (!out.good()) return Status::IoError("snapshot write failed");
  return Status::OK();
}

Result<VectorDb> VectorDb::LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad snapshot magic");
  }
  VectorDb db;
  uint64_t num_collections = 0;
  if (!ReadU64(in, &num_collections)) return Status::IoError("truncated snapshot");
  for (uint64_t c = 0; c < num_collections; ++c) {
    std::string name;
    if (!ReadString(in, &name)) return Status::IoError("truncated snapshot");
    CollectionParams p;
    uint64_t dim, metric, kind, m, efc, efs, pqm, pqb, nlist, nprobe, seed;
    if (!ReadU64(in, &dim) || !ReadU64(in, &metric) || !ReadU64(in, &kind) ||
        !ReadU64(in, &m) || !ReadU64(in, &efc) || !ReadU64(in, &efs) ||
        !ReadU64(in, &pqm) || !ReadU64(in, &pqb) || !ReadU64(in, &nlist) ||
        !ReadU64(in, &nprobe) || !ReadU64(in, &seed)) {
      return Status::IoError("truncated snapshot");
    }
    p.dim = dim;
    p.metric = static_cast<vecmath::Metric>(metric);
    p.index_kind = static_cast<IndexKind>(kind);
    p.hnsw_m = m;
    p.hnsw_ef_construction = efc;
    p.hnsw_ef_search = efs;
    p.pq_subquantizers = pqm;
    p.pq_nbits = pqb;
    p.ivf_nlist = nlist;
    p.ivf_nprobe = nprobe;
    p.seed = seed;
    MIRA_ASSIGN_OR_RETURN(Collection * collection,
                          db.CreateCollection(name, p));
    uint64_t num_indexed = 0;
    if (!ReadU64(in, &num_indexed)) return Status::IoError("truncated snapshot");
    for (uint64_t f = 0; f < num_indexed; ++f) {
      std::string field;
      if (!ReadString(in, &field)) return Status::IoError("truncated snapshot");
      collection->CreatePayloadIndex(field);
    }
    uint64_t num_points = 0;
    if (!ReadU64(in, &num_points)) return Status::IoError("truncated snapshot");
    for (uint64_t i = 0; i < num_points; ++i) {
      Point point;
      if (!ReadU64(in, &point.id)) return Status::IoError("truncated snapshot");
      if (!ReadFloats(in, &point.vector)) {
        return Status::IoError("truncated snapshot");
      }
      uint64_t num_fields = 0;
      if (!ReadU64(in, &num_fields)) return Status::IoError("truncated snapshot");
      for (uint64_t f = 0; f < num_fields; ++f) {
        std::string key;
        uint64_t tag;
        if (!ReadString(in, &key) || !ReadU64(in, &tag)) {
          return Status::IoError("truncated snapshot");
        }
        if (tag == 0) {
          std::string s;
          if (!ReadString(in, &s)) return Status::IoError("truncated snapshot");
          point.payload.SetString(key, std::move(s));
        } else if (tag == 1) {
          int64_t v;
          if (!ReadI64(in, &v)) return Status::IoError("truncated snapshot");
          point.payload.SetInt(key, v);
        } else {
          double v;
          if (!ReadF64(in, &v)) return Status::IoError("truncated snapshot");
          point.payload.SetDouble(key, v);
        }
      }
      MIRA_RETURN_NOT_OK(collection->Upsert(std::move(point)));
    }
    MIRA_RETURN_NOT_OK(collection->BuildIndex());
  }
  return db;
}

}  // namespace mira::vectordb
