#include "ir/significance.h"

#include <cmath>

#include "common/rng.h"

namespace mira::ir {

namespace {

double ScoreOf(PerQueryMetric metric, const std::vector<DocId>& ranking,
               const Qrels& qrels, QueryId query) {
  switch (metric) {
    case PerQueryMetric::kAveragePrecision:
      return AveragePrecision(ranking, qrels, query);
    case PerQueryMetric::kReciprocalRank:
      return ReciprocalRank(ranking, qrels, query);
    case PerQueryMetric::kNdcg10:
      return NdcgAt(ranking, qrels, query, 10);
  }
  return 0.0;
}

}  // namespace

Result<SignificanceResult> PairedRandomizationTest(
    const Qrels& qrels,
    const std::unordered_map<QueryId, std::vector<DocId>>& run_a,
    const std::unordered_map<QueryId, std::vector<DocId>>& run_b,
    PerQueryMetric metric, size_t permutations, uint64_t seed) {
  std::vector<QueryId> queries = qrels.Queries();
  if (queries.empty()) {
    return Status::InvalidArgument("significance: qrels contain no queries");
  }

  static const std::vector<DocId> kEmpty;
  auto ranking_of = [&](const auto& run, QueryId query) -> const std::vector<DocId>& {
    auto it = run.find(query);
    return it == run.end() ? kEmpty : it->second;
  };

  SignificanceResult result;
  result.num_queries = queries.size();
  std::vector<double> differences;
  differences.reserve(queries.size());
  for (QueryId query : queries) {
    double a = ScoreOf(metric, ranking_of(run_a, query), qrels, query);
    double b = ScoreOf(metric, ranking_of(run_b, query), qrels, query);
    double diff = a - b;
    differences.push_back(diff);
    if (diff > 1e-12) {
      ++result.wins;
    } else if (diff < -1e-12) {
      ++result.losses;
    } else {
      ++result.ties;
    }
    result.mean_difference += diff;
  }
  result.mean_difference /= static_cast<double>(queries.size());

  // Fisher randomization: under the null, each per-query difference's sign
  // is exchangeable; count permutations with |mean| >= |observed|.
  Rng rng(seed);
  const double observed = std::fabs(result.mean_difference);
  size_t at_least = 0;
  for (size_t p = 0; p < permutations; ++p) {
    double sum = 0.0;
    for (double diff : differences) {
      sum += rng.NextBernoulli(0.5) ? diff : -diff;
    }
    if (std::fabs(sum / static_cast<double>(differences.size())) >=
        observed - 1e-15) {
      ++at_least;
    }
  }
  result.p_value =
      static_cast<double>(at_least + 1) / static_cast<double>(permutations + 1);
  return result;
}

}  // namespace mira::ir
