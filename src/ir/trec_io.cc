#include "ir/trec_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mira::ir {

Run ScoredRun::ToRun() const {
  Run out;
  for (const auto& [query, entries] : rankings) {
    std::vector<DocId>& docs = out[query];
    docs.reserve(entries.size());
    for (const auto& entry : entries) docs.push_back(entry.doc);
  }
  return out;
}

Status WriteRunFile(const std::string& path, const ScoredRun& run,
                    const std::string& tag) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  std::vector<QueryId> queries;
  queries.reserve(run.rankings.size());
  for (const auto& [query, _] : run.rankings) queries.push_back(query);
  std::sort(queries.begin(), queries.end());
  for (QueryId query : queries) {
    const auto& entries = run.rankings.at(query);
    for (size_t rank = 0; rank < entries.size(); ++rank) {
      out << query << " Q0 " << entries[rank].doc << ' ' << (rank + 1) << ' '
          << entries[rank].score << ' ' << tag << '\n';
    }
  }
  if (!out.good()) return Status::IoError("run file write failed");
  return Status::OK();
}

Result<ScoredRun> ReadRunFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  ScoredRun run;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::istringstream fields(line);
    uint64_t query, doc;
    std::string q0, tag;
    uint64_t rank;
    double score;
    if (!(fields >> query >> q0 >> doc >> rank >> score >> tag)) {
      return Status::InvalidArgument(
          StrFormat("run file '%s': malformed line %zu", path.c_str(), line_no));
    }
    run.rankings[static_cast<QueryId>(query)].push_back(
        {static_cast<DocId>(doc), score});
  }
  return run;
}

Status WriteQrelsFile(const std::string& path, const Qrels& qrels) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  for (QueryId query : qrels.Queries()) {
    for (const auto& [doc, grade] : qrels.JudgmentsFor(query)) {
      out << query << " 0 " << doc << ' ' << grade << '\n';
    }
  }
  if (!out.good()) return Status::IoError("qrels write failed");
  return Status::OK();
}

Result<Qrels> ReadQrelsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  Qrels qrels;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::istringstream fields(line);
    uint64_t query, doc;
    std::string iter;
    int grade;
    if (!(fields >> query >> iter >> doc >> grade)) {
      return Status::InvalidArgument(
          StrFormat("qrels '%s': malformed line %zu", path.c_str(), line_no));
    }
    qrels.Add(static_cast<QueryId>(query), static_cast<DocId>(doc), grade);
  }
  return qrels;
}

}  // namespace mira::ir
