#include "ir/metrics.h"

#include <algorithm>
#include <cmath>

namespace mira::ir {

void Qrels::Add(QueryId query, DocId doc, int grade) {
  auto& docs = judgments_[query];
  auto it = docs.find(doc);
  if (it == docs.end()) {
    docs.emplace(doc, grade);
    ++num_pairs_;
  } else {
    it->second = grade;
  }
}

int Qrels::Grade(QueryId query, DocId doc) const {
  auto q = judgments_.find(query);
  if (q == judgments_.end()) return 0;
  auto d = q->second.find(doc);
  return d == q->second.end() ? 0 : d->second;
}

size_t Qrels::NumRelevant(QueryId query) const {
  auto q = judgments_.find(query);
  if (q == judgments_.end()) return 0;
  size_t count = 0;
  for (const auto& [_, grade] : q->second) {
    if (grade >= 1) ++count;
  }
  return count;
}

std::vector<int> Qrels::GradesFor(QueryId query) const {
  std::vector<int> grades;
  auto q = judgments_.find(query);
  if (q == judgments_.end()) return grades;
  grades.reserve(q->second.size());
  for (const auto& [_, grade] : q->second) grades.push_back(grade);
  return grades;
}

std::vector<std::pair<DocId, int>> Qrels::JudgmentsFor(QueryId query) const {
  std::vector<std::pair<DocId, int>> out;
  auto q = judgments_.find(query);
  if (q == judgments_.end()) return out;
  out.assign(q->second.begin(), q->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<QueryId> Qrels::Queries() const {
  std::vector<QueryId> out;
  out.reserve(judgments_.size());
  for (const auto& [query, _] : judgments_) out.push_back(query);
  std::sort(out.begin(), out.end());
  return out;
}

double ReciprocalRank(const std::vector<DocId>& ranking, const Qrels& qrels,
                      QueryId query) {
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (qrels.Grade(query, ranking[i]) >= 1) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

double AveragePrecision(const std::vector<DocId>& ranking, const Qrels& qrels,
                        QueryId query) {
  size_t total_relevant = qrels.NumRelevant(query);
  if (total_relevant == 0) return 0.0;
  size_t hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (qrels.Grade(query, ranking[i]) >= 1) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(total_relevant);
}

double NdcgAt(const std::vector<DocId>& ranking, const Qrels& qrels,
              QueryId query, size_t k) {
  double dcg = 0.0;
  size_t depth = std::min(k, ranking.size());
  for (size_t i = 0; i < depth; ++i) {
    int grade = qrels.Grade(query, ranking[i]);
    if (grade > 0) {
      dcg += (std::pow(2.0, grade) - 1.0) / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  std::vector<int> grades = qrels.GradesFor(query);
  std::sort(grades.begin(), grades.end(), std::greater<>());
  double idcg = 0.0;
  for (size_t i = 0; i < std::min(k, grades.size()); ++i) {
    if (grades[i] > 0) {
      idcg += (std::pow(2.0, grades[i]) - 1.0) /
              std::log2(static_cast<double>(i) + 2.0);
    }
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

EvalResult Evaluate(const Qrels& qrels,
                    const std::unordered_map<QueryId, std::vector<DocId>>& run,
                    const std::vector<size_t>& ndcg_cutoffs) {
  EvalResult result;
  static const std::vector<DocId> kEmpty;
  std::vector<QueryId> queries = qrels.Queries();
  for (QueryId query : queries) {
    auto it = run.find(query);
    const std::vector<DocId>& ranking = it == run.end() ? kEmpty : it->second;
    result.map += AveragePrecision(ranking, qrels, query);
    result.mrr += ReciprocalRank(ranking, qrels, query);
    for (size_t k : ndcg_cutoffs) {
      result.ndcg[k] += NdcgAt(ranking, qrels, query, k);
    }
  }
  result.num_queries = queries.size();
  if (!queries.empty()) {
    double n = static_cast<double>(queries.size());
    result.map /= n;
    result.mrr /= n;
    for (auto& [_, value] : result.ndcg) value /= n;
  }
  return result;
}

}  // namespace mira::ir
