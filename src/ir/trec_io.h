#ifndef MIRA_IR_TREC_IO_H_
#define MIRA_IR_TREC_IO_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ir/metrics.h"

namespace mira::ir {

/// A run: one ranked document list per query.
using Run = std::unordered_map<QueryId, std::vector<DocId>>;

/// A run with scores (needed for the TREC format's score column).
struct ScoredRun {
  struct Entry {
    DocId doc = 0;
    double score = 0.0;
  };
  std::unordered_map<QueryId, std::vector<Entry>> rankings;

  /// Drops the scores.
  Run ToRun() const;
};

/// Writes a run in the classic trec_eval format:
///   <qid> Q0 <docid> <rank> <score> <tag>
/// Queries are emitted in ascending id order, documents in rank order.
[[nodiscard]] Status WriteRunFile(const std::string& path, const ScoredRun& run,
                    const std::string& tag);

/// Parses a trec_eval run file (whitespace-separated, 6 columns).
[[nodiscard]] Result<ScoredRun> ReadRunFile(const std::string& path);

/// Writes qrels in the standard format: `<qid> 0 <docid> <grade>`.
[[nodiscard]] Status WriteQrelsFile(const std::string& path, const Qrels& qrels);

/// Parses a standard qrels file.
[[nodiscard]] Result<Qrels> ReadQrelsFile(const std::string& path);

}  // namespace mira::ir

#endif  // MIRA_IR_TREC_IO_H_
