#ifndef MIRA_IR_SIGNIFICANCE_H_
#define MIRA_IR_SIGNIFICANCE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ir/metrics.h"

namespace mira::ir {

/// Per-query metric under comparison.
enum class PerQueryMetric { kAveragePrecision, kReciprocalRank, kNdcg10 };

/// Result of a paired comparison between two runs over the same queries.
struct SignificanceResult {
  /// Mean of (A - B) per-query metric differences.
  double mean_difference = 0.0;
  /// Two-sided p-value of the Fisher randomization (permutation) test: the
  /// probability of a mean |difference| at least this large if A and B were
  /// exchangeable per query. The standard IR significance test — no
  /// normality assumption.
  double p_value = 1.0;
  /// Queries where A beats B / B beats A / ties.
  size_t wins = 0;
  size_t losses = 0;
  size_t ties = 0;
  size_t num_queries = 0;

  bool Significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Paired Fisher randomization test comparing run A against run B on the
/// qrels' query set. `permutations` sign-flips are drawn with the given
/// seed (deterministic). Fails when the qrels contain no queries.
[[nodiscard]] Result<SignificanceResult> PairedRandomizationTest(
    const Qrels& qrels, const std::unordered_map<QueryId, std::vector<DocId>>& run_a,
    const std::unordered_map<QueryId, std::vector<DocId>>& run_b,
    PerQueryMetric metric = PerQueryMetric::kAveragePrecision,
    size_t permutations = 10000, uint64_t seed = 29);

}  // namespace mira::ir

#endif  // MIRA_IR_SIGNIFICANCE_H_
