#ifndef MIRA_IR_METRICS_H_
#define MIRA_IR_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <unordered_map>
#include <vector>

namespace mira::ir {

using QueryId = uint32_t;
using DocId = uint32_t;

/// Graded relevance judgments on the WikiTables scale: 0 irrelevant,
/// 1 partially relevant, 2 fully relevant (§5 [Datasets]).
class Qrels {
 public:
  void Add(QueryId query, DocId doc, int grade);

  /// Grade of a pair; 0 when unjudged (standard IR convention).
  int Grade(QueryId query, DocId doc) const;

  /// Number of documents with grade >= 1 for a query.
  size_t NumRelevant(QueryId query) const;

  /// Grades of all judged documents for a query (for ideal DCG).
  std::vector<int> GradesFor(QueryId query) const;

  /// All (document, grade) judgments of a query, sorted by document id.
  std::vector<std::pair<DocId, int>> JudgmentsFor(QueryId query) const;

  std::vector<QueryId> Queries() const;
  size_t num_pairs() const { return num_pairs_; }

 private:
  std::unordered_map<QueryId, std::unordered_map<DocId, int>> judgments_;
  size_t num_pairs_ = 0;
};

/// Reciprocal rank of the first relevant (grade >= 1) document; 0 if none.
double ReciprocalRank(const std::vector<DocId>& ranking, const Qrels& qrels,
                      QueryId query);

/// Average precision with binary relevance (grade >= 1), normalized by the
/// total number of relevant documents.
double AveragePrecision(const std::vector<DocId>& ranking, const Qrels& qrels,
                        QueryId query);

/// Normalized discounted cumulative gain at cutoff k with graded gains
/// (2^grade - 1); 0 when the query has no relevant documents.
double NdcgAt(const std::vector<DocId>& ranking, const Qrels& qrels,
              QueryId query, size_t k);

/// Aggregated scores over a run (one ranking per query). Queries present in
/// the qrels but missing from the run count as zero.
struct EvalResult {
  double map = 0.0;
  double mrr = 0.0;
  /// cutoff -> mean NDCG.
  std::map<size_t, double> ndcg;
  size_t num_queries = 0;
};

EvalResult Evaluate(
    const Qrels& qrels,
    const std::unordered_map<QueryId, std::vector<DocId>>& run,
    const std::vector<size_t>& ndcg_cutoffs = {5, 10, 15, 20});

}  // namespace mira::ir

#endif  // MIRA_IR_METRICS_H_
