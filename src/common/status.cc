#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace mira {

namespace {
const std::string kEmptyMessage;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  // Exhaustive over StatusCode (no default:) so -Werror=switch flags a new
  // enumerator that is missing its name; the return after the switch only
  // covers out-of-range integers cast into the enum.
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status Status::NotImplemented(std::string msg) {
  return Status(StatusCode::kNotImplemented, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status Status::Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status Status::DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmptyMessage;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const { Abort(""); }

void Status::Abort(std::string_view context) const {
  if (ok()) return;
  if (context.empty()) {
    std::fprintf(stderr, "mira: fatal status: %s\n", ToString().c_str());
  } else {
    std::fprintf(stderr, "mira: fatal status (%.*s): %s\n",
                 static_cast<int>(context.size()), context.data(),
                 ToString().c_str());
  }
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mira
