#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace mira {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Guards the sink pointer AND serializes Write() calls through it: once
// SetLogSink returns, no thread can still be inside the previous sink, so
// the caller may destroy it immediately. The previous atomic-pointer scheme
// had a use-after-free window between the load and the Write() call.
Mutex g_sink_mu;
LogSink* g_log_sink MIRA_GUARDED_BY(g_sink_mu) = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

std::chrono::steady_clock::time_point LogOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

LogSink* SetLogSink(LogSink* sink) {
  MutexLock lock(g_sink_mu);
  LogSink* previous = g_log_sink;
  g_log_sink = sink;
  return previous;
}

void CapturingLogSink::Write(LogLevel /*level*/, const std::string& line) {
  MutexLock lock(mu_);
  lines_.push_back(line);
}

std::vector<std::string> CapturingLogSink::lines() const {
  MutexLock lock(mu_);
  return lines_;
}

bool CapturingLogSink::Contains(std::string_view needle) const {
  MutexLock lock(mu_);
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

void CapturingLogSink::Clear() {
  MutexLock lock(mu_);
  lines_.clear();
}

int LogThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

double LogUptimeMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - LogOrigin())
      .count();
}

std::string WallClockIso8601() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  // Prefix: ISO-8601 UTC wall clock (correlates with external systems and
  // /metricsz scrapes), monotonic millis since logging init (orders lines
  // even across wall-clock adjustments), and a small sequential thread id so
  // interleaved multi-threaded output stays attributable.
  char prefix[160];
  if (level_ >= LogLevel::kWarning) {
    std::snprintf(prefix, sizeof(prefix), "[%s %11.3f t%02d %s %s:%d] ",
                  WallClockIso8601().c_str(), LogUptimeMillis(), LogThreadId(),
                  LevelName(level), file, line);
  } else {
    std::snprintf(prefix, sizeof(prefix), "[%s %11.3f t%02d %s] ",
                  WallClockIso8601().c_str(), LogUptimeMillis(), LogThreadId(),
                  LevelName(level));
  }
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string line = stream_.str();
    // Write under the sink lock so a concurrent SetLogSink cannot pull the
    // sink out from under us mid-call. Sinks therefore must not log from
    // inside Write() (self-deadlock); see the LogSink contract.
    MutexLock lock(g_sink_mu);
    if (g_log_sink != nullptr) {
      g_log_sink->Write(level_, line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace mira
