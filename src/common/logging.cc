#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace mira {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_ && level_ >= LogLevel::kWarning) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  } else if (enabled_) {
    stream_ << "[" << LevelName(level) << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string line = stream_.str();
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace mira
