#ifndef MIRA_COMMON_CHECKSUM_H_
#define MIRA_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace mira {

/// Streaming 64-bit non-cryptographic checksum in the xxHash64 style: four
/// interleaved 64-bit lanes over 32-byte stripes, merged and avalanched at
/// the end. Local implementation (no third-party dependency) used to detect
/// truncation/corruption of persisted artifacts (CorpusEmbeddings files);
/// NOT a defense against adversarial inputs.
///
/// Deterministic across platforms for the same byte stream and seed, and
/// independent of Update() call granularity: hashing a buffer in one call or
/// byte-by-byte yields the same digest.
class Checksum64 {
 public:
  explicit Checksum64(uint64_t seed = 0);

  /// Feeds `len` bytes into the running hash.
  void Update(const void* data, size_t len);

  /// Digest of everything fed so far. Does not consume: more Update() calls
  /// may follow, and Digest() may be called repeatedly.
  uint64_t Digest() const;

  /// Total bytes fed so far.
  uint64_t length() const { return total_len_; }

  /// One-shot convenience.
  static uint64_t Hash(const void* data, size_t len, uint64_t seed = 0);

 private:
  uint64_t acc_[4];
  /// Carry for input not yet forming a full 32-byte stripe.
  unsigned char buffer_[32];
  size_t buffered_ = 0;
  uint64_t total_len_ = 0;
  uint64_t seed_ = 0;
};

}  // namespace mira

#endif  // MIRA_COMMON_CHECKSUM_H_
