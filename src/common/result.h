#ifndef MIRA_COMMON_RESULT_H_
#define MIRA_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace mira {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// could not be produced. The Arrow `Result<T>` idiom.
///
/// Typical use:
///
///     Result<Index> BuildIndex(...);
///     MIRA_ASSIGN_OR_RETURN(Index idx, BuildIndex(...));
///
/// Marked [[nodiscard]] at class level (see Status): dropping a returned
/// Result silently loses both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status (implicit so `return status;` works).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      // An OK status carries no value; this is a programming error.
      Status::Internal("Result constructed from OK status").Abort();
    }
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() if a value is held.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The contained value. Aborts if not ok().
  const T& ValueOrDie() const& {
    EnsureOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    EnsureOk();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    EnsureOk();
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out. Aborts if not ok().
  T MoveValue() {
    EnsureOk();
    return std::get<T>(std::move(repr_));
  }

  /// The value if ok(), otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void EnsureOk() const {
    if (!ok()) std::get<Status>(repr_).Abort("Result::ValueOrDie");
  }

  std::variant<T, Status> repr_;
};

}  // namespace mira

#define MIRA_RESULT_CONCAT_IMPL(a, b) a##b
#define MIRA_RESULT_CONCAT(a, b) MIRA_RESULT_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// binds the value to `lhs` (a declaration like `auto v`).
#define MIRA_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  auto MIRA_RESULT_CONCAT(_mira_result_, __LINE__) = (rexpr);               \
  if (!MIRA_RESULT_CONCAT(_mira_result_, __LINE__).ok())                    \
    return MIRA_RESULT_CONCAT(_mira_result_, __LINE__).status();            \
  lhs = MIRA_RESULT_CONCAT(_mira_result_, __LINE__).MoveValue()

#endif  // MIRA_COMMON_RESULT_H_
