#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

namespace mira {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t num_workers = pool->num_threads();
  const size_t chunk = std::max<size_t>(1, n / (num_workers * 4));
  std::atomic<size_t> next{begin};
  std::atomic<size_t> done_chunks{0};
  size_t total_chunks = (n + chunk - 1) / chunk;
  for (size_t c = 0; c < total_chunks; ++c) {
    pool->Submit([&next, &done_chunks, end, chunk, &body] {
      size_t start = next.fetch_add(chunk);
      size_t stop = std::min(end, start + chunk);
      for (size_t i = start; i < stop; ++i) body(i);
      done_chunks.fetch_add(1);
    });
  }
  pool->WaitIdle();
}

}  // namespace mira
