#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "obs/trace_propagation.h"

namespace mira {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

ThreadPool::Stats ThreadPool::GetStats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return Stats{workers_.size(), tasks_.size(), in_flight_};
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      // The pop and the in-flight increment happen under one lock so WaitIdle
      // never observes a task that is neither queued nor counted as running.
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

// Per-call state shared between the caller and its chunk tasks. Owning a copy
// of `body` here (rather than capturing the caller's reference) keeps the
// tasks valid even if the caller's frame unwinds before they run.
struct ParallelForState {
  std::function<void(size_t)> body;
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  size_t end = 0;
  size_t chunk = 0;

  // Captures the forking thread's trace context so worker spans land in the
  // caller's QueryTrace at the join (no-op when untraced or MIRA_OBS=OFF).
  obs::CrossThreadTraceCapture trace;

  std::mutex mu;
  std::condition_variable done_cv;
  size_t done_chunks = 0;
  std::exception_ptr first_error;
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const size_t num_workers = pool->num_threads();
  const size_t chunk = std::max<size_t>(1, n / (num_workers * 4));
  const size_t total_chunks = (n + chunk - 1) / chunk;

  auto state = std::make_shared<ParallelForState>();
  state->body = body;
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->chunk = chunk;

  size_t submitted = 0;
  try {
    for (size_t c = 0; c < total_chunks; ++c) {
      pool->Submit([state] {
        const size_t start =
            state->next.fetch_add(state->chunk, std::memory_order_relaxed);
        const size_t stop = std::min(state->end, start + state->chunk);
        if (!state->cancelled.load(std::memory_order_acquire)) {
          // The worker scope collects this chunk's spans into a private
          // buffer; it must close (hand the buffer over) before the chunk is
          // counted done, or the caller's merge could race the handoff.
          obs::CrossThreadTraceCapture::WorkerScope trace_scope(&state->trace);
          try {
            for (size_t i = start; i < stop; ++i) state->body(i);
          } catch (...) {
            state->cancelled.store(true, std::memory_order_release);
            std::unique_lock<std::mutex> lock(state->mu);
            if (!state->first_error) state->first_error = std::current_exception();
          }
        }
        std::unique_lock<std::mutex> lock(state->mu);
        ++state->done_chunks;
        state->done_cv.notify_all();
      });
      ++submitted;
    }
  } catch (...) {
    // Submit failed (e.g. allocation). Wait for whatever was queued, then
    // surface the submission failure.
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->done_cv.wait(lock,
                          [&] { return state->done_chunks == submitted; });
    }
    state->trace.MergeIntoParent();
    throw;
  }

  // Wait on this call's own completion count, not ThreadPool::WaitIdle():
  // unrelated tasks and concurrent ParallelFor calls must not stall us, and
  // WaitIdle could otherwise block forever on work that never drains.
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->done_chunks == submitted; });
  }
  // All chunks are done, so the worker buffers are complete: splice them into
  // the caller's trace (even when rethrowing — a partial trace beats none).
  state->trace.MergeIntoParent();
  if (state->first_error) std::rethrow_exception(state->first_error);
}

namespace {

// Shared state for ParallelForCancellable. Same ownership story as
// ParallelForState, but errors travel as Status values (first one wins)
// instead of exception_ptr.
struct CancellableForState {
  std::function<Status(size_t)> body;
  const QueryControl* control = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  size_t end = 0;
  size_t chunk = 0;

  // Same cross-thread span plumbing as ParallelForState.
  obs::CrossThreadTraceCapture trace;

  std::mutex mu;
  std::condition_variable done_cv;
  size_t done_chunks = 0;
  Status first_error;  // OK until the first non-OK invocation.

  // Records the first non-OK status and stops further chunk scheduling.
  // Later errors are discarded ("first non-OK wins" is temporal order).
  void RecordError(Status status) {
    cancelled.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mu);
    if (first_error.ok()) first_error = std::move(status);
  }
};

}  // namespace

Status ParallelForCancellable(ThreadPool* pool, size_t begin, size_t end,
                              const QueryControl* control,
                              const std::function<Status(size_t)>& body) {
  if (begin >= end) return Status::OK();
  const size_t n = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    // Inline path: the control is consulted per index. Callers hand us
    // block-granular bodies, so this is already amortized work.
    for (size_t i = begin; i < end; ++i) {
      if (control != nullptr) {
        Status budget = control->Check("ParallelForCancellable");
        if (!budget.ok()) return budget;
      }
      Status status = body(i);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  const size_t num_workers = pool->num_threads();
  const size_t chunk = std::max<size_t>(1, n / (num_workers * 4));
  const size_t total_chunks = (n + chunk - 1) / chunk;

  auto state = std::make_shared<CancellableForState>();
  state->body = body;
  state->control = control;
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->chunk = chunk;

  size_t submitted = 0;
  for (size_t c = 0; c < total_chunks; ++c) {
    pool->Submit([state] {
      const size_t start =
          state->next.fetch_add(state->chunk, std::memory_order_relaxed);
      const size_t stop = std::min(state->end, start + state->chunk);
      if (!state->cancelled.load(std::memory_order_acquire)) {
        obs::CrossThreadTraceCapture::WorkerScope trace_scope(&state->trace);
        // Budget check once per chunk, not per index: chunks are the
        // amortization unit of this loop.
        Status budget = state->control != nullptr
                            ? state->control->Check("ParallelForCancellable")
                            : Status::OK();
        if (!budget.ok()) {
          state->RecordError(std::move(budget));
        } else {
          for (size_t i = start; i < stop; ++i) {
            Status status = state->body(i);
            if (!status.ok()) {
              state->RecordError(std::move(status));
              break;
            }
          }
        }
      }
      std::unique_lock<std::mutex> lock(state->mu);
      ++state->done_chunks;
      state->done_cv.notify_all();
    });
    ++submitted;
    // Stop scheduling new chunks once an error or the control fired;
    // already-queued chunks complete as no-ops.
    if (state->cancelled.load(std::memory_order_acquire)) break;
  }

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->done_chunks == submitted; });
  }
  state->trace.MergeIntoParent();
  return state->first_error;
}

}  // namespace mira
