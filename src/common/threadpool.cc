#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "obs/trace_propagation.h"

namespace mira {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mutex_);
  while (!tasks_.empty() || in_flight_ != 0) idle_.Wait(lock);
}

ThreadPool::Stats ThreadPool::GetStats() const {
  MutexLock lock(mutex_);
  return Stats{workers_.size(), tasks_.size(), in_flight_, completed_};
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(lock);
      if (tasks_.empty()) return;  // shutting down with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
      // The pop and the in-flight increment happen under one lock so WaitIdle
      // never observes a task that is neither queued nor counted as running.
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      ++completed_;
      if (tasks_.empty() && in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

namespace {

// Per-call state shared between the caller and its chunk tasks. Owning a copy
// of `body` here (rather than capturing the caller's reference) keeps the
// tasks valid even if the caller's frame unwinds before they run.
struct ParallelForState {
  std::function<void(size_t)> body;
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  size_t end = 0;
  size_t chunk = 0;

  // Captures the forking thread's trace context so worker spans land in the
  // caller's QueryTrace at the join (no-op when untraced or MIRA_OBS=OFF).
  obs::CrossThreadTraceCapture trace;

  Mutex mu;
  CondVar done_cv;
  size_t done_chunks MIRA_GUARDED_BY(mu) = 0;
  std::exception_ptr first_error MIRA_GUARDED_BY(mu);
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const size_t num_workers = pool->num_threads();
  const size_t chunk = std::max<size_t>(1, n / (num_workers * 4));
  const size_t total_chunks = (n + chunk - 1) / chunk;

  auto state = std::make_shared<ParallelForState>();
  state->body = body;
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->chunk = chunk;

  size_t submitted = 0;
  try {
    for (size_t c = 0; c < total_chunks; ++c) {
      pool->Submit([state] {
        const size_t start =
            state->next.fetch_add(state->chunk, std::memory_order_relaxed);
        const size_t stop = std::min(state->end, start + state->chunk);
        if (!state->cancelled.load(std::memory_order_acquire)) {
          // The worker scope collects this chunk's spans into a private
          // buffer; it must close (hand the buffer over) before the chunk is
          // counted done, or the caller's merge could race the handoff.
          obs::CrossThreadTraceCapture::WorkerScope trace_scope(&state->trace);
          try {
            for (size_t i = start; i < stop; ++i) state->body(i);
          } catch (...) {
            state->cancelled.store(true, std::memory_order_release);
            MutexLock lock(state->mu);
            if (!state->first_error) state->first_error = std::current_exception();
          }
        }
        MutexLock lock(state->mu);
        ++state->done_chunks;
        state->done_cv.NotifyAll();
      });
      ++submitted;
    }
  } catch (...) {
    // Submit failed (e.g. allocation). Wait for whatever was queued, then
    // surface the submission failure.
    {
      MutexLock lock(state->mu);
      while (state->done_chunks != submitted) state->done_cv.Wait(lock);
    }
    state->trace.MergeIntoParent();
    throw;
  }

  // Wait on this call's own completion count, not ThreadPool::WaitIdle():
  // unrelated tasks and concurrent ParallelFor calls must not stall us, and
  // WaitIdle could otherwise block forever on work that never drains.
  std::exception_ptr first_error;
  {
    MutexLock lock(state->mu);
    while (state->done_chunks != submitted) state->done_cv.Wait(lock);
    first_error = state->first_error;
  }
  // All chunks are done, so the worker buffers are complete: splice them into
  // the caller's trace (even when rethrowing — a partial trace beats none).
  state->trace.MergeIntoParent();
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

// Shared state for ParallelForCancellable. Same ownership story as
// ParallelForState, but errors travel as Status values (first one wins)
// instead of exception_ptr.
struct CancellableForState {
  std::function<Status(size_t)> body;
  const QueryControl* control = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  size_t end = 0;
  size_t chunk = 0;

  // Same cross-thread span plumbing as ParallelForState.
  obs::CrossThreadTraceCapture trace;

  Mutex mu;
  CondVar done_cv;
  size_t done_chunks MIRA_GUARDED_BY(mu) = 0;
  /// OK until the first non-OK invocation.
  Status first_error MIRA_GUARDED_BY(mu);

  // Records the first non-OK status and stops further chunk scheduling.
  // Later errors are discarded ("first non-OK wins" is temporal order).
  void RecordError(Status status) {
    cancelled.store(true, std::memory_order_release);
    MutexLock lock(mu);
    if (first_error.ok()) first_error = std::move(status);
  }
};

}  // namespace

Status ParallelForCancellable(ThreadPool* pool, size_t begin, size_t end,
                              const QueryControl* control,
                              const std::function<Status(size_t)>& body) {
  if (begin >= end) return Status::OK();
  const size_t n = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    // Inline path: the control is consulted per index. Callers hand us
    // block-granular bodies, so this is already amortized work.
    for (size_t i = begin; i < end; ++i) {
      if (control != nullptr) {
        Status budget = control->Check("ParallelForCancellable");
        if (!budget.ok()) return budget;
      }
      Status status = body(i);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  const size_t num_workers = pool->num_threads();
  const size_t chunk = std::max<size_t>(1, n / (num_workers * 4));
  const size_t total_chunks = (n + chunk - 1) / chunk;

  auto state = std::make_shared<CancellableForState>();
  state->body = body;
  state->control = control;
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->chunk = chunk;

  size_t submitted = 0;
  for (size_t c = 0; c < total_chunks; ++c) {
    pool->Submit([state] {
      const size_t start =
          state->next.fetch_add(state->chunk, std::memory_order_relaxed);
      const size_t stop = std::min(state->end, start + state->chunk);
      if (!state->cancelled.load(std::memory_order_acquire)) {
        obs::CrossThreadTraceCapture::WorkerScope trace_scope(&state->trace);
        // Budget check once per chunk, not per index: chunks are the
        // amortization unit of this loop.
        Status budget = state->control != nullptr
                            ? state->control->Check("ParallelForCancellable")
                            : Status::OK();
        if (!budget.ok()) {
          state->RecordError(std::move(budget));
        } else {
          for (size_t i = start; i < stop; ++i) {
            Status status = state->body(i);
            if (!status.ok()) {
              state->RecordError(std::move(status));
              break;
            }
          }
        }
      }
      MutexLock lock(state->mu);
      ++state->done_chunks;
      state->done_cv.NotifyAll();
    });
    ++submitted;
    // Stop scheduling new chunks once an error or the control fired;
    // already-queued chunks complete as no-ops.
    if (state->cancelled.load(std::memory_order_acquire)) break;
  }

  Status first_error;
  {
    MutexLock lock(state->mu);
    while (state->done_chunks != submitted) state->done_cv.Wait(lock);
    first_error = state->first_error;
  }
  state->trace.MergeIntoParent();
  return first_error;
}

}  // namespace mira
