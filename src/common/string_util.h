#ifndef MIRA_COMMON_STRING_UTIL_H_
#define MIRA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mira {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any whitespace run; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if every character is an ASCII digit, optionally after a sign and
/// with at most one decimal point ("42", "-3.14"). Empty string -> false.
bool LooksNumeric(std::string_view text);

/// FNV-1a 64-bit hash; stable across platforms and runs.
uint64_t Fnv1a64(std::string_view text);

/// Combines two hashes (boost-style mix).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mira

#endif  // MIRA_COMMON_STRING_UTIL_H_
