#include "common/checksum.h"

#include <cstring>

namespace mira {

namespace {

// xxHash64 prime constants (public-domain algorithm specification).
constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t Read64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Read32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t lane) {
  acc ^= Round(0, lane);
  return acc * kPrime1 + kPrime4;
}

inline uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

Checksum64::Checksum64(uint64_t seed) : seed_(seed) {
  acc_[0] = seed + kPrime1 + kPrime2;
  acc_[1] = seed + kPrime2;
  acc_[2] = seed;
  acc_[3] = seed - kPrime1;
}

void Checksum64::Update(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  total_len_ += len;

  // Top up a partially filled stripe first.
  if (buffered_ > 0) {
    size_t take = len < (32 - buffered_) ? len : (32 - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ < 32) return;
    acc_[0] = Round(acc_[0], Read64(buffer_));
    acc_[1] = Round(acc_[1], Read64(buffer_ + 8));
    acc_[2] = Round(acc_[2], Read64(buffer_ + 16));
    acc_[3] = Round(acc_[3], Read64(buffer_ + 24));
    buffered_ = 0;
  }

  while (len >= 32) {
    acc_[0] = Round(acc_[0], Read64(p));
    acc_[1] = Round(acc_[1], Read64(p + 8));
    acc_[2] = Round(acc_[2], Read64(p + 16));
    acc_[3] = Round(acc_[3], Read64(p + 24));
    p += 32;
    len -= 32;
  }

  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffered_ = len;
  }
}

uint64_t Checksum64::Digest() const {
  uint64_t h;
  if (total_len_ >= 32) {
    h = Rotl64(acc_[0], 1) + Rotl64(acc_[1], 7) + Rotl64(acc_[2], 12) +
        Rotl64(acc_[3], 18);
    h = MergeRound(h, acc_[0]);
    h = MergeRound(h, acc_[1]);
    h = MergeRound(h, acc_[2]);
    h = MergeRound(h, acc_[3]);
  } else {
    h = seed_ + kPrime5;
  }
  h += total_len_;

  // Tail: whatever is sitting in the stripe buffer.
  const unsigned char* p = buffer_;
  size_t len = buffered_;
  while (len >= 8) {
    h ^= Round(0, Read64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
    len -= 8;
  }
  if (len >= 4) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
    len -= 4;
  }
  while (len > 0) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
    --len;
  }
  return Avalanche(h);
}

uint64_t Checksum64::Hash(const void* data, size_t len, uint64_t seed) {
  Checksum64 hasher(seed);
  hasher.Update(data, len);
  return hasher.Digest();
}

}  // namespace mira
