#ifndef MIRA_COMMON_THREADPOOL_H_
#define MIRA_COMMON_THREADPOOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/sync.h"

namespace mira {

/// Fixed-size worker pool with a simple FIFO queue.
///
/// Thread-safety contract:
///  - Submit() may be called concurrently from any thread.
///  - Tasks must not throw. An exception escaping a task terminates the
///    process (workers run tasks without a handler). Wrap fallible work and
///    route errors through Status instead; ParallelFor does this for you.
///  - Destruction drains the queue: every task submitted before the
///    destructor starts is executed before the workers join. Submitting
///    concurrently with destruction is a caller lifetime bug.
///  - WaitIdle() blocks until the queue is empty and no task is executing.
///    It is only a meaningful barrier when the caller knows no other thread
///    is still submitting; with concurrent producers it can wake late (new
///    work arrived) — never early. Prefer ParallelFor, which tracks its own
///    completion and is safe under concurrent callers.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>=1). 0 means hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks have finished.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Point-in-time execution stats, feeding the `mira.pool.*` gauges
  /// (queue depth / utilization — see docs/OBSERVABILITY.md). A consistent
  /// snapshot (taken under the queue lock), already stale on return.
  struct Stats {
    size_t threads = 0;      ///< Worker count, fixed at construction.
    size_t queued = 0;       ///< Tasks waiting in the FIFO.
    size_t running = 0;      ///< Tasks currently executing.
    uint64_t completed = 0;  ///< Tasks finished since construction.
  };
  Stats GetStats() const;

 private:
  void WorkerLoop();

  /// Joined by the destructor only; written once in the constructor.
  std::vector<std::thread> workers_;

  mutable Mutex mutex_;
  CondVar task_available_;
  CondVar idle_;
  std::queue<std::function<void()>> tasks_ MIRA_GUARDED_BY(mutex_);
  size_t in_flight_ MIRA_GUARDED_BY(mutex_) = 0;
  uint64_t completed_ MIRA_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ MIRA_GUARDED_BY(mutex_) = false;
};

/// Runs body(i) for i in [begin, end) across the pool, blocking until every
/// index has been processed.
///
/// Contract:
///  - `body` must be safe to call concurrently from multiple threads.
///  - `body` is copied into shared per-call state, so the chunk tasks never
///    dangle even if the caller's frame unwinds; the call still does not
///    return before all submitted chunks have finished.
///  - Completion is tracked per call with a dedicated condition variable
///    (not ThreadPool::WaitIdle), so concurrent ParallelFor calls on the
///    same pool do not block on each other's work.
///  - If `body` throws, remaining chunks are skipped (indices already
///    claimed by a running chunk still complete), the call waits for all
///    in-flight chunks, and the first exception is rethrown in the caller.
///  - Runs inline on the calling thread when `pool` is null, has a single
///    worker, or the range is a single index.
///  - Trace propagation: when the caller has an obs trace armed, spans that
///    `body` creates on worker threads are collected into per-task buffers
///    and spliced into the caller's QueryTrace at the join, tagged with the
///    worker's thread id and parented under the span open at the call site.
///    (Raw Submit() has no join point and does not propagate traces.)
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

/// Cancellable, Status-returning variant of ParallelFor: runs body(i) for i
/// in [begin, end) across the pool and returns the first non-OK status any
/// invocation produced (first temporally; later errors are discarded), or
/// the control's kCancelled/kDeadlineExceeded when it fires mid-loop.
///
/// Contract (on top of the ParallelFor contract):
///  - Once an invocation returns non-OK or `control` fires, already-queued
///    chunks become no-ops (they complete without calling `body`) and no
///    index not yet claimed by a running chunk is processed. Indices inside
///    a chunk that has already started still run to the chunk boundary.
///  - `control` (nullable) is tested at chunk boundaries on the pool path
///    and per index on the inline path — callers amortize by giving `body`
///    block-granular work, never per-cell work.
///  - The call never returns before every submitted chunk has completed, so
///    `body` may capture the caller's frame by reference.
///  - A non-OK return does not say which indices ran: partial side effects
///    are the caller's to tolerate (the ExS partial scan counts them).
[[nodiscard]] Status ParallelForCancellable(
    ThreadPool* pool, size_t begin, size_t end, const QueryControl* control,
    const std::function<Status(size_t)>& body);

}  // namespace mira

#endif  // MIRA_COMMON_THREADPOOL_H_
