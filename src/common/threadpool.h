#ifndef MIRA_COMMON_THREADPOOL_H_
#define MIRA_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mira {

/// Fixed-size worker pool with a simple FIFO queue. Destruction waits for all
/// queued work to finish.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>=1). 0 means hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks have finished.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [begin, end) across the pool, blocking until done.
/// Chunks statically; `body` must be safe to call concurrently.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

}  // namespace mira

#endif  // MIRA_COMMON_THREADPOOL_H_
