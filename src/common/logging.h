#ifndef MIRA_COMMON_LOGGING_H_
#define MIRA_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace mira {

/// Log severities in increasing order. Messages below the global threshold
/// (see SetLogLevel) are discarded.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum severity that is actually emitted. Defaults to
/// kInfo. Thread-safe (relaxed atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for formatted log lines. The default sink writes to stderr;
/// tests install a CapturingLogSink to assert on emitted warnings instead of
/// scraping stderr. Write() calls are serialized under the global sink lock,
/// so implementations never see concurrent calls — but they must not log
/// (MIRA_LOG_*) from inside Write(), which would self-deadlock.
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// `line` is the fully formatted line (prefix included, no newline).
  virtual void Write(LogLevel level, const std::string& line) = 0;
};

/// Replaces the global sink and returns the previous one (nullptr means the
/// built-in stderr sink). Safe to call while other threads are logging: the
/// swap and every Write() run under one lock, so once this returns no thread
/// is still inside the previous sink and the caller may destroy it.
LogSink* SetLogSink(LogSink* sink);

/// Thread-safe in-memory sink for tests.
class CapturingLogSink : public LogSink {
 public:
  void Write(LogLevel level, const std::string& line) override;

  std::vector<std::string> lines() const;
  /// True if any captured line contains `needle`.
  bool Contains(std::string_view needle) const;
  void Clear();

 private:
  mutable Mutex mu_;
  std::vector<std::string> lines_ MIRA_GUARDED_BY(mu_);
};

/// Small sequential id of the calling thread (1 = first thread that logged).
/// Stable for the thread's lifetime; used in log prefixes so interleaved
/// multi-threaded output stays attributable.
int LogThreadId();

/// Monotonic milliseconds since logging initialized (first use in the
/// process). The same clock stamps every log-line prefix.
double LogUptimeMillis();

/// Current wall-clock time as ISO-8601 UTC with millisecond precision,
/// e.g. "2026-08-09T01:02:03.456Z". This stamp leads every log-line prefix
/// (so process logs correlate with external scrapes of /metricsz); exposed
/// so other surfaces (/statusz, reports) emit the identical format.
std::string WallClockIso8601();

namespace internal {

/// Stream-style log-line builder; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mira

#define MIRA_LOG_INTERNAL(level) \
  ::mira::internal::LogMessage(level, __FILE__, __LINE__)

#define MIRA_LOG_DEBUG() MIRA_LOG_INTERNAL(::mira::LogLevel::kDebug)
#define MIRA_LOG_INFO() MIRA_LOG_INTERNAL(::mira::LogLevel::kInfo)
#define MIRA_LOG_WARNING() MIRA_LOG_INTERNAL(::mira::LogLevel::kWarning)
#define MIRA_LOG_ERROR() MIRA_LOG_INTERNAL(::mira::LogLevel::kError)
#define MIRA_LOG_FATAL() MIRA_LOG_INTERNAL(::mira::LogLevel::kFatal)

/// Internal-invariant check: always on (also in release builds), aborts with
/// a message on violation. For programming errors, not expected conditions.
#define MIRA_CHECK(condition)                                        \
  if (!(condition))                                                  \
  MIRA_LOG_FATAL() << "Check failed: " #condition " at " << __FILE__ \
                   << ":" << __LINE__ << " "

#define MIRA_DCHECK(condition) MIRA_CHECK(condition)

#endif  // MIRA_COMMON_LOGGING_H_
