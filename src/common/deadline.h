#ifndef MIRA_COMMON_DEADLINE_H_
#define MIRA_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "common/status.h"

namespace mira {

/// A point in monotonic time by which an operation must finish, plus the
/// moment the budget was granted (so consumers can reason about the fraction
/// of the budget already spent, not just the absolute remainder).
///
/// The default-constructed Deadline is infinite: expired() is always false
/// and every accessor returns the "no budget" value, so carrying a Deadline
/// by value costs nothing on the common no-deadline path.
///
/// Deadlines are checked *cooperatively*: long-running loops test expired()
/// at amortized intervals (every N blocks / beam pops, never per cell — see
/// docs/ROBUSTNESS.md) and return StatusCode::kDeadlineExceeded. Nothing is
/// preempted, so a response can overshoot the budget by at most one check
/// interval.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite deadline (never expires).
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// A deadline `budget_ms` milliseconds from now.
  static Deadline After(double budget_ms) {
    Deadline d;
    d.start_ = Clock::now();
    d.point_ = d.start_ + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(
                                  budget_ms < 0.0 ? 0.0 : budget_ms));
    d.infinite_ = false;
    return d;
  }

  bool infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= point_; }

  /// Milliseconds until expiry; +inf when infinite, 0 when already expired.
  double remaining_ms() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    double ms =
        std::chrono::duration<double, std::milli>(point_ - Clock::now())
            .count();
    return ms > 0.0 ? ms : 0.0;
  }

  /// Total granted budget in milliseconds; +inf when infinite.
  double budget_ms() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(point_ - start_).count();
  }

  /// Fraction of the budget still unspent, in [0, 1]; 1 when infinite (or
  /// the budget was zero). Degradation policies key off this: it is
  /// comparable across queries with different absolute budgets.
  double FractionRemaining() const {
    if (infinite_) return 1.0;
    double budget = budget_ms();
    if (budget <= 0.0) return 0.0;
    double fraction = remaining_ms() / budget;
    return fraction > 1.0 ? 1.0 : fraction;
  }

 private:
  Clock::time_point start_{};
  Clock::time_point point_{};
  bool infinite_ = true;
};

/// Cooperative cancellation flag with shared-handle semantics: every copy of
/// a token observes the same underlying flag, so the caller keeps one copy
/// and hands another to the query. The default-constructed token is *null* —
/// never cancelled, not cancellable — so DiscoveryOptions can carry one by
/// value for free.
///
/// Thread-safe: RequestCancel()/cancelled() may race freely (single relaxed
/// atomic; cancellation needs no ordering beyond the flag itself).
class CancellationToken {
 public:
  /// Null token: cancelled() is always false.
  CancellationToken() = default;

  /// A live token whose flag can be raised with RequestCancel().
  static CancellationToken Make() {
    CancellationToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// True for tokens created with Make() (copies included).
  bool valid() const { return flag_ != nullptr; }

  /// Raises the flag; every copy of the token observes it. No-op on a null
  /// token.
  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The pair every cooperative check tests: a time budget and a cancel flag,
/// carried by value in DiscoveryOptions and by pointer through the index
/// layers (index::SearchParams::control). Cancellation outranks the
/// deadline: a query that is both cancelled and over budget reports
/// kCancelled.
struct QueryControl {
  Deadline deadline;
  CancellationToken cancel;

  /// False for the default instance — callers skip all budget bookkeeping on
  /// the common uncontrolled path, which keeps results bit-identical to a
  /// build without this layer.
  bool active() const { return cancel.valid() || !deadline.infinite(); }

  /// Cheap interrupt test for amortized loop checks.
  bool ShouldStop() const { return cancel.cancelled() || deadline.expired(); }

  /// kCancelled / kDeadlineExceeded / OK. `where` names the checking stage
  /// for the error message ("exs.scan", "hnsw.search", ...).
  [[nodiscard]] Status Check(const char* where) const {
    if (cancel.cancelled()) {
      return Status::Cancelled(std::string(where) + ": query cancelled");
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded(std::string(where) +
                                      ": query deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace mira

#endif  // MIRA_COMMON_DEADLINE_H_
