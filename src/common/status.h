#ifndef MIRA_COMMON_STATUS_H_
#define MIRA_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mira {

/// Machine-readable category of a failure. Mirrors the Arrow/RocksDB error
/// model: library code never throws; fallible operations return a Status (or
/// a Result<T>, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kNotImplemented = 8,
  kCancelled = 9,
  /// A query's time budget elapsed before the operation finished. Callers
  /// can usually retry with a larger budget; the discovery engine instead
  /// degrades (see docs/ROBUSTNESS.md).
  kDeadlineExceeded = 10,
  /// A transient condition (resource briefly missing, injected outage).
  /// Safe to retry with backoff — see common/retry.h.
  kUnavailable = 11,
  /// Persisted bytes are corrupt or truncated (checksum mismatch, short
  /// read). Retrying will not help; the artifact must be rebuilt.
  kDataLoss = 12,
  /// A capacity limit was hit (per-tenant quota empty, admission queue
  /// full). Transient: safe to retry with backoff, honoring any suggested
  /// retry-after the rejecting layer attaches — see src/service/admission.h.
  kResourceExhausted = 13,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a code plus a message.
///
/// A Status is cheap to pass around: the OK state is represented by a null
/// pointer, so success carries no allocation.
///
/// Marked [[nodiscard]] at class level: every function returning a Status by
/// value warns if the caller drops it. Intentional drops must be explicit
/// (assign to a named variable or cast to void) — tools/mira_lint.py enforces
/// that the attribute stays.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status Internal(std::string msg);
  static Status IoError(std::string msg);
  static Status NotImplemented(std::string msg);
  static Status Cancelled(std::string msg);
  static Status DeadlineExceeded(std::string msg);
  static Status Unavailable(std::string msg);
  static Status DataLoss(std::string msg);
  static Status ResourceExhausted(std::string msg);

  [[nodiscard]] bool ok() const { return state_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return ok() ? StatusCode::kOk : state_->code;
  }
  /// Message text; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status text if not OK. Use only where a
  /// failure is a programming error, not an expected runtime condition.
  void Abort() const;
  void Abort(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK.
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mira

/// Propagates a non-OK Status to the caller.
#define MIRA_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::mira::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // MIRA_COMMON_STATUS_H_
