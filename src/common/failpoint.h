#ifndef MIRA_COMMON_FAILPOINT_H_
#define MIRA_COMMON_FAILPOINT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace mira::failpoint {

/// Compile-time-removable fault-injection framework, modeled on the LevelDB
/// and TiKV failpoint idiom: named sites in fallible production paths that a
/// test (or the MIRA_FAILPOINTS environment variable in CI) can arm to
/// return a typed error, inject latency, or simulate a partial write.
///
/// Sites are *registered statically* in failpoint.cc (kSites) so the CI
/// failpoint matrix can enumerate them without executing the code paths
/// first, and so arming a misspelled site fails loudly. Naming scheme:
/// `<layer>.<operation>[.<variant>]`, e.g. "vectordb.upsert",
/// "corpus.save.partial" — see docs/ROBUSTNESS.md for the registry.
///
/// With the default build (-DMIRA_FAILPOINTS=OFF) the MIRA_FAILPOINT macros
/// expand to nothing: release binaries carry zero overhead and zero
/// injection surface (enforced further by the mira_lint `failpoint` rule,
/// which keeps the macros out of headers and src/vecmath entirely).
///
/// Thread-safety: Configure/Clear/Trigger may race freely (one mutex guards
/// the table; trigger-side cost when compiled in is one mutex acquire, which
/// is why sites live on cold control paths, never in per-cell loops).

/// What an armed site does when execution reaches it.
enum class ActionKind {
  kOff,      ///< Site disarmed (the default for every site).
  kError,    ///< Trigger() returns Status(code, ...).
  kDelay,    ///< Trigger() sleeps delay_ms, then returns OK.
  kPartial,  ///< PartialBytes() returns partial_bytes (write-truncation).
};

struct Action {
  ActionKind kind = ActionKind::kOff;
  /// kError: the status code to return.
  StatusCode code = StatusCode::kInternal;
  /// kDelay: injected latency in milliseconds.
  double delay_ms = 0.0;
  /// kPartial: bytes the writer is allowed to emit before cutting off.
  size_t partial_bytes = 0;
  /// Remaining applications; < 0 means unlimited. A count of N arms the
  /// site for its next N hits and then disarms it — this is how retry tests
  /// model "transient" faults (fail twice, then succeed).
  int64_t count = -1;

  static Action Error(StatusCode code, int64_t count = -1);
  static Action Delay(double ms, int64_t count = -1);
  static Action Partial(size_t bytes, int64_t count = -1);
};

/// True when the framework is compiled in (-DMIRA_FAILPOINTS=ON). All other
/// entry points fail or return empty when it is not.
bool Enabled();

/// Arms `site` with `action`. Unknown sites are an InvalidArgument (the
/// registry is static); a compiled-out build returns FailedPrecondition.
[[nodiscard]] Status Configure(const std::string& site, const Action& action);

/// Parses and applies a spec of the form accepted by the MIRA_FAILPOINTS
/// environment variable:
///
///   site=action[;site=action]...
///   action := error(<code>[,count]) | delay(<ms>[,count])
///           | partial(<bytes>[,count]) | off
///   code   := io | unavailable | internal | dataloss | cancelled | deadline
///
/// e.g. MIRA_FAILPOINTS='corpus.load=error(io,2);vectordb.search=delay(5)'.
[[nodiscard]] Status ConfigureFromString(const std::string& spec);

/// Disarms one site / every site. Clearing is always safe (no-op when
/// compiled out or already off).
void Clear(const std::string& site);
void ClearAll();

/// Every registered site name, in registry order (for the CI matrix).
std::vector<std::string> RegisteredSites();

/// Times `site` fired while armed (diagnostic; reset by ClearAll).
uint64_t HitCount(const std::string& site);

/// Implementation hooks behind the macros — do not call directly in
/// production code (the macros compile out; direct calls would not).
[[nodiscard]] Status Trigger(const char* site);
std::optional<size_t> PartialBytes(const char* site);

}  // namespace mira::failpoint

#if defined(MIRA_FAILPOINTS) && MIRA_FAILPOINTS
/// Injection site for error/latency actions: returns the injected Status
/// from the enclosing function (works in Status- and Result-returning
/// functions alike). Place only in .cc files on cold control paths.
#define MIRA_FAILPOINT(site)                                \
  do {                                                      \
    ::mira::Status _mira_fp = ::mira::failpoint::Trigger(site); \
    if (!_mira_fp.ok()) return _mira_fp;                    \
  } while (false)

/// Injection site for partial-write simulation: when armed, lowers
/// `limit_var` (a size_t byte budget) to the configured cutoff.
#define MIRA_FAILPOINT_PARTIAL(site, limit_var)                    \
  do {                                                             \
    auto _mira_fp_limit = ::mira::failpoint::PartialBytes(site);   \
    if (_mira_fp_limit.has_value() && *_mira_fp_limit < (limit_var)) \
      (limit_var) = *_mira_fp_limit;                               \
  } while (false)
#else
#define MIRA_FAILPOINT(site) \
  do {                       \
  } while (false)
#define MIRA_FAILPOINT_PARTIAL(site, limit_var) \
  do {                                          \
  } while (false)
#endif  // MIRA_FAILPOINTS

#endif  // MIRA_COMMON_FAILPOINT_H_
