#ifndef MIRA_COMMON_RETRY_H_
#define MIRA_COMMON_RETRY_H_

#include <functional>

#include "common/deadline.h"
#include "common/result.h"
#include "common/status.h"

namespace mira {

/// Bounded exponential backoff with jitter for transient failures.
struct RetryOptions {
  /// Total tries including the first (so 4 = one call + up to 3 retries).
  int max_attempts = 4;
  /// Sleep before the first retry.
  double initial_backoff_ms = 2.0;
  /// Backoff growth per retry.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  double max_backoff_ms = 200.0;
  /// Uniform jitter applied to each sleep: the actual sleep is
  /// backoff * (1 ± jitter_fraction), drawn from common/rng so retry storms
  /// de-synchronize deterministically per seed.
  double jitter_fraction = 0.25;
  /// Seed of the jitter stream (reproducible tests).
  uint64_t seed = 0x5EEDBACCULL;
  /// Injectable jitter seam for deterministic tests: given the 1-based retry
  /// index, returns a uniform draw in [0, 1) that replaces the internal RNG
  /// (0.5 means "no jitter"; 0.0 / 1.0 pin the bounds). Null uses the
  /// seeded common/rng stream.
  std::function<double(int attempts_made)> jitter_source;
};

/// Wraps an operation in a retry loop: transient failures (kIoError,
/// kUnavailable, kResourceExhausted by default) are retried with exponential
/// backoff + jitter;
/// anything else — success, or a non-retryable error such as kDataLoss —
/// returns immediately. A QueryControl can bound the whole loop: once the
/// deadline expires or the token fires, the last transient error is
/// returned without further sleeping.
///
/// Thread-safety: each Run() call owns its jitter RNG state; a single
/// RetryPolicy value may be used concurrently.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = {});

  /// Default transience test: kIoError, kUnavailable, or kResourceExhausted
  /// (admission rejections carry their own retry-after hint; see
  /// src/service/admission.h).
  static bool IsTransient(const Status& status);

  /// The jittered backoff (in ms, without sleeping) that Run would apply
  /// after the given 1-based attempt count. Deterministic for a fixed seed
  /// (or jitter_source); admission control uses it to derive retry-after
  /// hints.
  [[nodiscard]] double BackoffMsForAttempt(int attempts_made) const;

  /// Runs `op` until it succeeds, fails non-transiently, or attempts/budget
  /// run out. Returns the last status.
  [[nodiscard]] Status Run(const std::function<Status()>& op,
                           const QueryControl* control = nullptr) const;

  /// Result-returning variant.
  template <typename T>
  [[nodiscard]] Result<T> RunResult(const std::function<Result<T>()>& op,
                                    const QueryControl* control = nullptr) const {
    Result<T> result = op();
    int attempt = 1;
    while (!result.ok() && IsTransient(result.status()) &&
           KeepTrying(attempt, control)) {
      Backoff(attempt);
      result = op();
      ++attempt;
    }
    return result;
  }

  const RetryOptions& options() const { return options_; }

 private:
  /// True when attempt (1-based count of calls made so far) leaves room for
  /// another try and the control has budget left.
  bool KeepTrying(int attempts_made, const QueryControl* control) const;
  /// Sleeps the jittered backoff for the given 1-based retry index.
  void Backoff(int attempts_made) const;

  RetryOptions options_;
};

}  // namespace mira

#endif  // MIRA_COMMON_RETRY_H_
