#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"

namespace mira {

RetryPolicy::RetryPolicy(RetryOptions options) : options_(options) {}

bool RetryPolicy::IsTransient(const Status& status) {
  return status.IsIoError() || status.IsUnavailable() ||
         status.IsResourceExhausted();
}

bool RetryPolicy::KeepTrying(int attempts_made,
                             const QueryControl* control) const {
  if (attempts_made >= options_.max_attempts) return false;
  if (control != nullptr && control->ShouldStop()) return false;
  return true;
}

double RetryPolicy::BackoffMsForAttempt(int attempts_made) const {
  double backoff = options_.initial_backoff_ms;
  for (int i = 1; i < attempts_made; ++i) {
    backoff *= options_.backoff_multiplier;
  }
  backoff = std::min(backoff, options_.max_backoff_ms);
  double draw;
  if (options_.jitter_source) {
    draw = options_.jitter_source(attempts_made);
  } else {
    // Jitter stream forked per retry index so concurrent Run() calls stay
    // independent without shared mutable state.
    Rng rng(SplitMix64(options_.seed + static_cast<uint64_t>(attempts_made)));
    draw = rng.NextDouble();
  }
  double jitter = 1.0 + options_.jitter_fraction * (2.0 * draw - 1.0);
  return std::max(0.0, backoff * jitter);
}

void RetryPolicy::Backoff(int attempts_made) const {
  double sleep_ms = BackoffMsForAttempt(attempts_made);
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
}

Status RetryPolicy::Run(const std::function<Status()>& op,
                        const QueryControl* control) const {
  Status status = op();
  int attempt = 1;
  while (!status.ok() && IsTransient(status) && KeepTrying(attempt, control)) {
    Backoff(attempt);
    status = op();
    ++attempt;
  }
  return status;
}

}  // namespace mira
