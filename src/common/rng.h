#ifndef MIRA_COMMON_RNG_H_
#define MIRA_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>
#include <cmath>
#include <vector>

namespace mira {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in MIRA takes one of these with an
/// explicit seed so that experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponential with rate lambda.
  double NextExponential(double lambda) {
    return -std::log(1.0 - NextDouble()) / lambda;
  }

  /// Zipf-distributed rank in [0, n) with exponent s (s >= 0). s = 0 is
  /// uniform. Uses inverse-CDF over precomputation-free rejection; intended
  /// for workload generation, not tight inner loops.
  size_t NextZipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent child generator; deterministic in (state, salt).
  Rng Fork(uint64_t salt);

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextUint64(); }

 private:
  uint64_t s_[4];
};

/// SplitMix64 step: hashes a 64-bit value; useful for stable per-key seeds.
uint64_t SplitMix64(uint64_t x);

}  // namespace mira

#endif  // MIRA_COMMON_RNG_H_
