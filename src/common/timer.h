#ifndef MIRA_COMMON_TIMER_H_
#define MIRA_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mira {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mira

#endif  // MIRA_COMMON_TIMER_H_
