#ifndef MIRA_COMMON_TIMER_H_
#define MIRA_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mira {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed milliseconds of repeated timed sections and reports
/// simple aggregate statistics. Used by the benchmark harness.
class LatencyRecorder {
 public:
  void Record(double millis) {
    ++count_;
    total_ += millis;
    if (count_ == 1 || millis < min_) min_ = millis;
    if (count_ == 1 || millis > max_) max_ = millis;
  }

  int64_t count() const { return count_; }
  double total_millis() const { return total_; }
  double mean_millis() const {
    return count_ ? total_ / static_cast<double>(count_) : 0.0;
  }
  double min_millis() const { return min_; }
  double max_millis() const { return max_; }

 private:
  int64_t count_ = 0;
  double total_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mira

#endif  // MIRA_COMMON_TIMER_H_
