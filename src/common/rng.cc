#include "common/rng.h"

#include "common/logging.h"

namespace mira {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    x = SplitMix64(x);
    s = x;
  }
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  MIRA_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  MIRA_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextUint64() : NextBounded(span));
}

double Rng::NextGaussian() {
  // Box-Muller; uses two uniforms per call (the second is discarded for
  // simplicity of state management).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::NextZipf(size_t n, double s) {
  MIRA_CHECK(n > 0);
  if (n == 1 || s <= 0.0) return static_cast<size_t>(NextBounded(n));
  // Rejection sampling (Devroye) over ranks 1..n; returns 0-based rank.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    double u = NextDouble();
    double v = NextDouble();
    double x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    // x in [1, n+1); clamp to [1, n].
    if (x < 1.0) x = 1.0;
    if (x > static_cast<double>(n)) continue;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<size_t>(x) - 1;
    }
  }
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  MIRA_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) memory, fine at our
  // scales. For k << n a hash-set approach would be cheaper but the callers
  // sample sizable fractions.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork(uint64_t salt) {
  return Rng(SplitMix64(NextUint64() ^ SplitMix64(salt)));
}

}  // namespace mira
