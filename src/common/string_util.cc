#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mira {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool LooksNumeric(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return false;
  size_t i = 0;
  if (text[i] == '+' || text[i] == '-') ++i;
  bool saw_digit = false;
  bool saw_point = false;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      saw_digit = true;
    } else if (c == '.' && !saw_point) {
      saw_point = true;
    } else {
      return false;
    }
  }
  return saw_digit;
}

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace mira
