#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "common/result.h"
#include "common/string_util.h"
#include "common/sync.h"

namespace mira::failpoint {

namespace {

/// The static site registry — the single source of truth for which
/// injection points exist. Keep in sync with docs/ROBUSTNESS.md and the
/// failpoint matrix in tests/robustness_test.cc.
constexpr const char* kSites[] = {
    "embed.encode",         // per-cell encoding inside CorpusEmbeddings::Build
    "vectordb.upsert",      // Collection::Upsert
    "vectordb.search",      // Collection::Search
    "index.build",          // Collection::BuildIndex (vector index build)
    "corpus.save",          // CorpusEmbeddings::Save entry
    "corpus.save.partial",  // CorpusEmbeddings::Save payload write cutoff
    "corpus.load",          // CorpusEmbeddings::Load entry
    "service.admit",        // DiscoveryService admission decision (forced
                            // shed: the injected error becomes the rejection
                            // status)
    "service.dispatch",     // DiscoveryService worker dequeue->run (error
                            // fails the request; delay stalls workers to
                            // build deterministic queue pressure)
};

struct SiteState {
  Action action;
  uint64_t hits = 0;
};

struct Table {
  Mutex mu;
  std::unordered_map<std::string, SiteState> sites MIRA_GUARDED_BY(mu);
  bool env_parsed MIRA_GUARDED_BY(mu) = false;

  Table() {
    for (const char* site : kSites) sites.emplace(site, SiteState{});
  }
};

Table& GetTable() {
  static Table table;
  return table;
}

#if defined(MIRA_FAILPOINTS) && MIRA_FAILPOINTS
constexpr bool kCompiledIn = true;
#else
constexpr bool kCompiledIn = false;
#endif

Result<StatusCode> ParseCode(const std::string& token) {
  if (token == "io") return StatusCode::kIoError;
  if (token == "unavailable") return StatusCode::kUnavailable;
  if (token == "internal") return StatusCode::kInternal;
  if (token == "dataloss") return StatusCode::kDataLoss;
  if (token == "cancelled") return StatusCode::kCancelled;
  if (token == "deadline") return StatusCode::kDeadlineExceeded;
  if (token == "resource_exhausted") return StatusCode::kResourceExhausted;
  return Status::InvalidArgument("failpoint: unknown error code '" + token +
                                 "'");
}

/// Parses "error(io,2)" / "delay(5)" / "partial(64)" / "off".
Result<Action> ParseAction(const std::string& text) {
  if (text == "off") return Action{};
  size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')') {
    return Status::InvalidArgument("failpoint: malformed action '" + text +
                                   "'");
  }
  std::string name = text.substr(0, open);
  std::string args = text.substr(open + 1, text.size() - open - 2);
  std::string first = args;
  int64_t count = -1;
  if (size_t comma = args.find(','); comma != std::string::npos) {
    first = args.substr(0, comma);
    count = std::atoll(args.c_str() + comma + 1);
    if (count <= 0) {
      return Status::InvalidArgument("failpoint: bad count in '" + text + "'");
    }
  }
  if (name == "error") {
    MIRA_ASSIGN_OR_RETURN(StatusCode code, ParseCode(first));
    return Action::Error(code, count);
  }
  if (name == "delay") {
    return Action::Delay(std::atof(first.c_str()), count);
  }
  if (name == "partial") {
    return Action::Partial(static_cast<size_t>(std::atoll(first.c_str())),
                           count);
  }
  return Status::InvalidArgument("failpoint: unknown action '" + name + "'");
}

/// Applies MIRA_FAILPOINTS from the environment exactly once, the first time
/// any site is evaluated — so CI can arm sites in binaries it does not
/// otherwise control. The winner of the flag race parses outside the lock
/// (ConfigureFromString locks per site); losers proceed immediately, which
/// is fine for the intended single-threaded process startup.
void EnsureEnvParsed(Table& table) {
  {
    MutexLock lock(table.mu);
    if (table.env_parsed) return;
    table.env_parsed = true;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- getenv races only with
  // setenv/putenv, which this process never calls.
  const char* spec = std::getenv("MIRA_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  Status st = ConfigureFromString(spec);
  if (!st.ok()) {
    MIRA_LOG_ERROR() << "failpoint: ignoring bad MIRA_FAILPOINTS spec: "
                     << st.ToString();
  }
}

/// Consumes one application of the site's armed action. Returns kOff when
/// disarmed.
Action Consume(const char* site) {
  Table& table = GetTable();
  EnsureEnvParsed(table);
  MutexLock lock(table.mu);
  auto it = table.sites.find(site);
  if (it == table.sites.end() || it->second.action.kind == ActionKind::kOff) {
    return Action{};
  }
  SiteState& state = it->second;
  ++state.hits;
  Action applied = state.action;
  if (state.action.count > 0 && --state.action.count == 0) {
    state.action = Action{};
  }
  return applied;
}

}  // namespace

Action Action::Error(StatusCode code, int64_t count) {
  Action a;
  a.kind = ActionKind::kError;
  a.code = code;
  a.count = count;
  return a;
}

Action Action::Delay(double ms, int64_t count) {
  Action a;
  a.kind = ActionKind::kDelay;
  a.delay_ms = ms;
  a.count = count;
  return a;
}

Action Action::Partial(size_t bytes, int64_t count) {
  Action a;
  a.kind = ActionKind::kPartial;
  a.partial_bytes = bytes;
  a.count = count;
  return a;
}

bool Enabled() { return kCompiledIn; }

Status Configure(const std::string& site, const Action& action) {
  if (!kCompiledIn) {
    return Status::FailedPrecondition(
        "failpoint: framework compiled out (build with -DMIRA_FAILPOINTS=ON)");
  }
  Table& table = GetTable();
  MutexLock lock(table.mu);
  auto it = table.sites.find(site);
  if (it == table.sites.end()) {
    return Status::InvalidArgument("failpoint: unknown site '" + site +
                                   "' (see RegisteredSites())");
  }
  it->second.action = action;
  return Status::OK();
}

Status ConfigureFromString(const std::string& spec) {
  for (const std::string& entry : Split(spec, ';')) {
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint: malformed entry '" + entry +
                                     "' (want site=action)");
    }
    MIRA_ASSIGN_OR_RETURN(Action action, ParseAction(entry.substr(eq + 1)));
    MIRA_RETURN_NOT_OK(Configure(entry.substr(0, eq), action));
  }
  return Status::OK();
}

void Clear(const std::string& site) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  auto it = table.sites.find(site);
  if (it != table.sites.end()) it->second.action = Action{};
}

void ClearAll() {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  for (auto& [site, state] : table.sites) {
    state.action = Action{};
    state.hits = 0;
  }
}

std::vector<std::string> RegisteredSites() {
  std::vector<std::string> sites;
  for (const char* site : kSites) sites.emplace_back(site);
  return sites;
}

uint64_t HitCount(const std::string& site) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  auto it = table.sites.find(site);
  return it == table.sites.end() ? 0 : it->second.hits;
}

Status Trigger(const char* site) {
  if (!kCompiledIn) return Status::OK();
  Action action = Consume(site);
  switch (action.kind) {
    case ActionKind::kOff:
    case ActionKind::kPartial:  // partial actions only apply via PartialBytes
      return Status::OK();
    case ActionKind::kError:
      return Status(action.code,
                    StrFormat("failpoint '%s': injected failure", site));
    case ActionKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(action.delay_ms));
      return Status::OK();
  }
  return Status::OK();
}

std::optional<size_t> PartialBytes(const char* site) {
  if (!kCompiledIn) return std::nullopt;
  Action action = Consume(site);
  if (action.kind != ActionKind::kPartial) return std::nullopt;
  return action.partial_bytes;
}

}  // namespace mira::failpoint
