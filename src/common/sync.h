#ifndef MIRA_COMMON_SYNC_H_
#define MIRA_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// MIRA's synchronization layer: Clang thread-safety capability annotations
// plus the only lock primitives first-party code may use.
//
// Every mutex in src/ is a mira::Mutex or mira::SharedMutex, every guarded
// member carries MIRA_GUARDED_BY, and every helper that assumes a held lock
// carries MIRA_REQUIRES — so Clang's -Wthread-safety analysis proves the
// locking protocol at compile time (the MIRA_THREAD_SAFETY CMake gate turns
// the warnings into errors; the thread-safety CI job runs it on every PR).
// tools/mira_lint.py bans raw std::mutex/std::lock_guard outside this header
// and flags Mutex members that no annotation references. See the "Thread-safety
// annotations & lock discipline" section of docs/STATIC_ANALYSIS.md for the
// full policy, including when MIRA_NO_THREAD_SAFETY_ANALYSIS is acceptable.
//
// On non-Clang compilers every macro expands to nothing and the wrappers are
// zero-cost veneers over the std primitives, so GCC builds are unaffected.

#if defined(__clang__) && !defined(MIRA_NO_THREAD_SAFETY_ATTRIBUTES)
#define MIRA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MIRA_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define MIRA_CAPABILITY(x) MIRA_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define MIRA_SCOPED_CAPABILITY MIRA_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a member/variable may only be accessed while holding `x`.
#define MIRA_GUARDED_BY(x) MIRA_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the *pointee* of a pointer member is guarded by `x`.
#define MIRA_PT_GUARDED_BY(x) MIRA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention): this capability must be
/// acquired before/after the listed ones.
#define MIRA_ACQUIRED_BEFORE(...) \
  MIRA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MIRA_ACQUIRED_AFTER(...) \
  MIRA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The annotated function must be called with the capability held
/// (exclusively / at least shared). The convention for private helpers is a
/// `*Locked()` name suffix plus this annotation.
#define MIRA_REQUIRES(...) \
  MIRA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MIRA_REQUIRES_SHARED(...) \
  MIRA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires/releases the capability.
#define MIRA_ACQUIRE(...) \
  MIRA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MIRA_ACQUIRE_SHARED(...) \
  MIRA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define MIRA_RELEASE(...) \
  MIRA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MIRA_RELEASE_SHARED(...) \
  MIRA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define MIRA_RELEASE_GENERIC(...) \
  MIRA_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns the given
/// success value (first argument, e.g. `true`).
#define MIRA_TRY_ACQUIRE(...) \
  MIRA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define MIRA_TRY_ACQUIRE_SHARED(...) \
  MIRA_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// The annotated function must be called with the capability NOT held
/// (it acquires it itself — prevents self-deadlock).
#define MIRA_EXCLUDES(...) MIRA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread already holds the capability;
/// teaches the analysis a fact it cannot derive (e.g. across a callback).
#define MIRA_ASSERT_CAPABILITY(x) \
  MIRA_THREAD_ANNOTATION_(assert_capability(x))
#define MIRA_ASSERT_SHARED_CAPABILITY(x) \
  MIRA_THREAD_ANNOTATION_(assert_shared_capability(x))

/// The annotated function returns a reference to the given capability.
#define MIRA_RETURN_CAPABILITY(x) MIRA_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Policy
/// (docs/STATIC_ANALYSIS.md): only for documented phase-protocol accessors or
/// init/teardown code, always with a comment saying why the protocol is safe.
#define MIRA_NO_THREAD_SAFETY_ANALYSIS \
  MIRA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace mira {

class CondVar;

/// Exclusive mutex (std::mutex with a capability annotation). Prefer the
/// RAII MutexLock over manual Lock()/Unlock().
class MIRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MIRA_ACQUIRE() { mu_.lock(); }
  void Unlock() MIRA_RELEASE() { mu_.unlock(); }
  bool TryLock() MIRA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex with a capability annotation).
/// Prefer the RAII ReaderLock/WriterLock over manual calls.
class MIRA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MIRA_ACQUIRE() { mu_.lock(); }
  void Unlock() MIRA_RELEASE() { mu_.unlock(); }
  bool TryLock() MIRA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() MIRA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MIRA_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() MIRA_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard replacement, and
/// the handle CondVar waits on).
class MIRA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MIRA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MIRA_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex.
class MIRA_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MIRA_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() MIRA_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class MIRA_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MIRA_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() MIRA_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to Mutex/MutexLock.
///
/// Annotated callers should write explicit wait loops —
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.Wait(lock);
///
/// — rather than the predicate overload: Clang analyzes a lambda body as a
/// free function that holds no capabilities, so a predicate reading
/// MIRA_GUARDED_BY state fails the analysis even though the wait contract
/// guarantees the lock is held. The predicate overload exists for call sites
/// with unannotated state (tests, local coordination).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, waits, and reacquires before returning.
  /// The capability is held on entry and on exit, which is exactly what the
  /// analysis assumes; the temporary release is invisible to it (and to the
  /// caller — guarded state may have changed, hence the wait loop).
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `pred()` holds. See the class comment for when the explicit
  /// loop is required instead.
  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    while (!pred()) Wait(lock);
  }

  /// Waits until notified or `deadline` passes. Returns true if the deadline
  /// passed (timeout), false when notified earlier. Spurious wakeups surface
  /// as a false return — re-check the predicate either way.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::timeout;
  }

  /// Waits until notified or `timeout` elapses. Returns true on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               std::chrono::duration<Rep, Period> timeout) {
    return WaitUntil(lock, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mira

#endif  // MIRA_COMMON_SYNC_H_
