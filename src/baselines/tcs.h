#ifndef MIRA_BASELINES_TCS_H_
#define MIRA_BASELINES_TCS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_common.h"
#include "common/result.h"
#include "discovery/types.h"
#include "embed/encoder.h"
#include "ml/decision_tree.h"
#include "vecmath/matrix.h"

namespace mira::baselines {

struct TcsOptions {
  /// Tokens of the consolidated table text that feed the table-level
  /// embedding (TCS embeds whole tables, not cells — a key difference from
  /// MIRA's value-level representation).
  size_t table_embedding_tokens = 64;
  ml::ForestOptions forest;
};

/// Table Contextual Search (Zhang & Balog [55]): maps query and table into
/// several semantic spaces (lexical tf-idf, word embeddings, field language
/// models), computes one similarity per space, and ranks with a Random
/// Forest regressor trained on judged pairs. Semantic but *table-level*:
/// one vector per table blends all its attributes together, so ambiguous or
/// multi-topic tables blur — the contrast motivating the paper's cell-level
/// embeddings.
class TcsSearcher final : public discovery::Searcher {
 public:
  [[nodiscard]] static Result<std::unique_ptr<TcsSearcher>> Build(
      std::shared_ptr<const CorpusFieldStats> stats,
      std::shared_ptr<const embed::SemanticEncoder> encoder,
      const table::Federation& federation,
      const std::vector<TrainingPair>& training, TcsOptions options = {});

  [[nodiscard]] Result<discovery::Ranking> Search(
      const std::string& query,
      const discovery::DiscoveryOptions& options) const override;
  std::string name() const override { return "TCS"; }

  static constexpr size_t kNumFeatures = 6;

 private:
  TcsSearcher(std::shared_ptr<const CorpusFieldStats> stats,
              std::shared_ptr<const embed::SemanticEncoder> encoder,
              TcsOptions options);

  std::vector<double> Features(const std::vector<std::string>& tokens,
                               const vecmath::Vec& query_embedding,
                               size_t table_index) const;

  std::shared_ptr<const CorpusFieldStats> stats_;
  std::shared_ptr<const embed::SemanticEncoder> encoder_;
  TcsOptions options_;
  /// One (truncated) embedding per table.
  vecmath::Matrix table_embeddings_;
  ml::RandomForest forest_;
};

}  // namespace mira::baselines

#endif  // MIRA_BASELINES_TCS_H_
