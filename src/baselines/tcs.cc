#include "baselines/tcs.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "vecmath/vector_ops.h"

namespace mira::baselines {

namespace {

// tf-idf cosine between the query tokens and a table body bag.
double TfIdfCosine(const text::CorpusStats& stats,
                   const std::vector<int32_t>& query_ids,
                   const text::TermBag& doc) {
  std::unordered_map<int32_t, double> query_tf;
  for (int32_t id : query_ids) {
    if (id >= 0) query_tf[id] += 1.0;
  }
  double dot = 0.0, qnorm = 0.0;
  for (const auto& [id, tf] : query_tf) {
    double idf = stats.Idf(id);
    double qw = tf * idf;
    qnorm += qw * qw;
    double dw = static_cast<double>(doc.Count(id)) * idf;
    dot += qw * dw;
  }
  double dnorm = 0.0;
  for (const auto& [id, tf] : doc.counts) {
    double dw = static_cast<double>(tf) * stats.Idf(id);
    dnorm += dw * dw;
  }
  if (qnorm <= 0.0 || dnorm <= 0.0) return 0.0;
  return dot / (std::sqrt(qnorm) * std::sqrt(dnorm));
}

}  // namespace

TcsSearcher::TcsSearcher(std::shared_ptr<const CorpusFieldStats> stats,
                         std::shared_ptr<const embed::SemanticEncoder> encoder,
                         TcsOptions options)
    : stats_(std::move(stats)),
      encoder_(std::move(encoder)),
      options_(options) {}

std::vector<double> TcsSearcher::Features(
    const std::vector<std::string>& tokens, const vecmath::Vec& query_embedding,
    size_t table_index) const {
  const TableFieldData& table = stats_->tables[table_index];
  std::vector<int32_t> body_ids =
      CorpusFieldStats::QueryIds(stats_->body_stats, tokens);
  std::vector<int32_t> caption_ids =
      CorpusFieldStats::QueryIds(stats_->caption_stats, tokens);
  std::vector<int32_t> title_ids =
      CorpusFieldStats::QueryIds(stats_->title_stats, tokens);
  double qlen = std::max<double>(1.0, static_cast<double>(tokens.size()));

  // One similarity per "semantic space".
  return {
      TfIdfCosine(stats_->body_stats, body_ids, table.body),
      static_cast<double>(vecmath::CosineSimilarity(
          query_embedding.data(), table_embeddings_.Row(table_index),
          table_embeddings_.cols())),
      stats_->body_stats.Bm25(body_ids, table.body) / qlen,
      stats_->caption_stats.Bm25(caption_ids, table.caption) / qlen,
      stats_->title_stats.Bm25(title_ids, table.title) / qlen,
      std::log1p(qlen),
  };
}

Result<std::unique_ptr<TcsSearcher>> TcsSearcher::Build(
    std::shared_ptr<const CorpusFieldStats> stats,
    std::shared_ptr<const embed::SemanticEncoder> encoder,
    const table::Federation& federation,
    const std::vector<TrainingPair>& training, TcsOptions options) {
  if (stats == nullptr || encoder == nullptr) {
    return Status::InvalidArgument("tcs: null stats/encoder");
  }
  if (training.empty()) return Status::InvalidArgument("tcs: no training pairs");

  std::unique_ptr<TcsSearcher> searcher(
      new TcsSearcher(std::move(stats), std::move(encoder), options));

  // Table-level embeddings of the consolidated text (truncated).
  text::Tokenizer tokenizer = BaselineTokenizer();
  searcher->table_embeddings_ =
      vecmath::Matrix(federation.size(), searcher->encoder_->dim());
  for (size_t t = 0; t < federation.size(); ++t) {
    std::vector<std::string> tokens =
        tokenizer.Tokenize(federation.relation(t).ConsolidatedText());
    if (tokens.size() > options.table_embedding_tokens) {
      tokens.resize(options.table_embedding_tokens);
    }
    searcher->table_embeddings_.SetRow(
        t, searcher->encoder_->EncodeTokens(tokens));
  }

  ml::RegressionData data;
  for (const TrainingPair& pair : training) {
    if (pair.relation >= searcher->stats_->tables.size()) {
      return Status::InvalidArgument("tcs: training pair out of range");
    }
    std::vector<std::string> tokens = tokenizer.Tokenize(pair.query);
    vecmath::Vec query_embedding = searcher->encoder_->EncodeTokens(tokens);
    MIRA_RETURN_NOT_OK(
        data.Add(searcher->Features(tokens, query_embedding, pair.relation),
                 static_cast<double>(pair.grade)));
  }
  MIRA_ASSIGN_OR_RETURN(searcher->forest_,
                        ml::RandomForest::Fit(data, options.forest));
  return searcher;
}

Result<discovery::Ranking> TcsSearcher::Search(
    const std::string& query,
    const discovery::DiscoveryOptions& options) const {
  text::Tokenizer tokenizer = BaselineTokenizer();
  std::vector<std::string> tokens = tokenizer.Tokenize(query);
  vecmath::Vec query_embedding = encoder_->EncodeTokens(tokens);

  discovery::Ranking ranking;
  ranking.reserve(stats_->tables.size());
  for (size_t t = 0; t < stats_->tables.size(); ++t) {
    double score = forest_.Predict(Features(tokens, query_embedding, t));
    ranking.push_back({static_cast<table::RelationId>(t),
                       static_cast<float>(score)});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const discovery::DiscoveryHit& a,
               const discovery::DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  if (ranking.size() > options.top_k) ranking.resize(options.top_k);
  return ranking;
}

}  // namespace mira::baselines
