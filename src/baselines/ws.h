#ifndef MIRA_BASELINES_WS_H_
#define MIRA_BASELINES_WS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_common.h"
#include "common/result.h"
#include "discovery/types.h"
#include "ml/linear_regression.h"

namespace mira::baselines {

/// WebTable System (Cafarella et al. [6]): hand-crafted per-pair features
/// combined by a linear regression model trained on judged pairs. The
/// features are classic web-table signals (BM25 over the body, field hit
/// counts, table shape statistics); being manually engineered, they cannot
/// capture semantic relatedness beyond exact token overlap.
class WsSearcher final : public discovery::Searcher {
 public:
  /// Trains the linear model on `training` and retains the field stats.
  [[nodiscard]] static Result<std::unique_ptr<WsSearcher>> Build(
      std::shared_ptr<const CorpusFieldStats> stats,
      const std::vector<TrainingPair>& training);

  [[nodiscard]] Result<discovery::Ranking> Search(
      const std::string& query,
      const discovery::DiscoveryOptions& options) const override;
  std::string name() const override { return "WS"; }

  /// The per-pair feature vector (exposed for tests).
  static std::vector<double> Features(const CorpusFieldStats& stats,
                                      const std::vector<std::string>& tokens,
                                      size_t table_index);
  static constexpr size_t kNumFeatures = 10;

 private:
  WsSearcher(std::shared_ptr<const CorpusFieldStats> stats,
             ml::LinearRegression model);

  std::shared_ptr<const CorpusFieldStats> stats_;
  ml::LinearRegression model_;
};

}  // namespace mira::baselines

#endif  // MIRA_BASELINES_WS_H_
