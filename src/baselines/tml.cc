#include "baselines/tml.h"

#include "common/logging.h"

#include <algorithm>

#include "baselines/adh.h"
#include "vecmath/vector_ops.h"

namespace mira::baselines {

TmlSearcher::TmlSearcher(const table::Federation& federation,
                         std::shared_ptr<const CorpusFieldStats> stats,
                         std::shared_ptr<const embed::SemanticEncoder> encoder,
                         TmlOptions options)
    : stats_(std::move(stats)),
      encoder_(std::move(encoder)),
      options_(options) {
  MIRA_CHECK(stats_ != nullptr && encoder_ != nullptr);
  (void)federation;

  const size_t num_tables = std::max<size_t>(1, stats_->tables.size());
  tokens_per_table_ = std::clamp(options_.total_context_tokens / num_tables,
                                 options_.min_tokens_per_table,
                                 options_.max_tokens_per_table);

  const size_t dim = encoder_->dim();
  table_token_vectors_.resize(stats_->tables.size());
  table_pooled_.resize(stats_->tables.size());
  for (size_t t = 0; t < stats_->tables.size(); ++t) {
    const auto& tokens = stats_->tables[t].serialized_tokens;
    size_t visible = std::min(tokens.size(), tokens_per_table_);
    auto& flat = table_token_vectors_[t];
    flat.resize(visible * dim);
    for (size_t i = 0; i < visible; ++i) {
      vecmath::Vec v = encoder_->EncodeToken(tokens[i]);
      std::copy(v.begin(), v.end(), flat.begin() + i * dim);
    }
    std::vector<std::string> visible_tokens(tokens.begin(),
                                            tokens.begin() + visible);
    table_pooled_[t] = encoder_->EncodeTokens(visible_tokens);
  }
}

Result<discovery::Ranking> TmlSearcher::Search(
    const std::string& query,
    const discovery::DiscoveryOptions& options) const {
  text::Tokenizer tokenizer = BaselineTokenizer();
  std::vector<std::string> tokens = tokenizer.Tokenize(query);
  if (tokens.size() > options_.query_token_budget) {
    tokens.resize(options_.query_token_budget);
  }
  const size_t dim = encoder_->dim();
  std::vector<float> query_tokens(tokens.size() * dim);
  for (size_t i = 0; i < tokens.size(); ++i) {
    vecmath::Vec v = encoder_->EncodeToken(tokens[i]);
    std::copy(v.begin(), v.end(), query_tokens.begin() + i * dim);
  }

  vecmath::Vec query_pooled = encoder_->EncodeTokens(tokens);

  discovery::Ranking ranking;
  ranking.reserve(table_token_vectors_.size());
  for (size_t t = 0; t < table_token_vectors_.size(); ++t) {
    const auto& flat = table_token_vectors_[t];
    size_t table_rows = flat.size() / dim;
    // Bidirectional soft matching (query->table and table->query) blended
    // with the sequence-level similarity.
    float forward = MeanMaxTokenSimilarity(query_tokens.data(), tokens.size(),
                                           flat.data(), table_rows, dim);
    float backward = MeanMaxTokenSimilarity(flat.data(), table_rows,
                                            query_tokens.data(), tokens.size(),
                                            dim);
    float interaction = 0.5f * (forward + backward);
    float pooled = vecmath::CosineSimilarity(query_pooled, table_pooled_[t]);
    ranking.push_back({static_cast<table::RelationId>(t),
                       options_.pooled_weight * pooled +
                           (1.0f - options_.pooled_weight) * interaction});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const discovery::DiscoveryHit& a,
               const discovery::DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  discovery::ApplyThresholdAndTopK(&ranking, options);
  return ranking;
}

}  // namespace mira::baselines
