#ifndef MIRA_BASELINES_TML_H_
#define MIRA_BASELINES_TML_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_common.h"
#include "discovery/types.h"
#include "embed/encoder.h"

namespace mira::baselines {

struct TmlOptions {
  /// Total serialization budget shared by the *whole corpus* — the LLM
  /// context window. Each table gets total_context_tokens / num_tables
  /// tokens of its serialization (caption and schema first). On small
  /// corpora every table fits and TML shines; on large corpora each table is
  /// reduced to a stub — reproducing the scalability cliff the paper
  /// observes for token-limited models (§5.2).
  size_t total_context_tokens = 24000;
  /// Per-table serialization is never longer than this even when the corpus
  /// is tiny.
  size_t max_tokens_per_table = 256;
  /// At least caption+schema survive.
  size_t min_tokens_per_table = 8;
  size_t query_token_budget = 128;
  /// Blend of sequence-level (pooled) and token-interaction scoring, as for
  /// AdH; LLM judgments lean more on fine-grained token evidence.
  float pooled_weight = 0.45f;
};

/// Table Meets LLM (Sui et al. [45]): serializes tables into an LLM's
/// context and asks the model to match them against the query. Modeled as a
/// bidirectional token soft-matcher over the serialized (budget-truncated)
/// tables: mean-of-max similarity in both directions, which is more
/// expensive per pair than AdH's one-directional scoring — mirroring TML's
/// higher query latency.
class TmlSearcher final : public discovery::Searcher {
 public:
  TmlSearcher(const table::Federation& federation,
              std::shared_ptr<const CorpusFieldStats> stats,
              std::shared_ptr<const embed::SemanticEncoder> encoder,
              TmlOptions options = {});

  [[nodiscard]] Result<discovery::Ranking> Search(
      const std::string& query,
      const discovery::DiscoveryOptions& options) const override;
  std::string name() const override { return "TML"; }

  /// Tokens each table actually received under the shared context budget.
  size_t tokens_per_table() const { return tokens_per_table_; }

 private:
  std::shared_ptr<const CorpusFieldStats> stats_;
  std::shared_ptr<const embed::SemanticEncoder> encoder_;
  TmlOptions options_;
  size_t tokens_per_table_ = 0;
  std::vector<std::vector<float>> table_token_vectors_;
  std::vector<vecmath::Vec> table_pooled_;
};

}  // namespace mira::baselines

#endif  // MIRA_BASELINES_TML_H_
