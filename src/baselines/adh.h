#ifndef MIRA_BASELINES_ADH_H_
#define MIRA_BASELINES_ADH_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_common.h"
#include "discovery/types.h"
#include "embed/encoder.h"

namespace mira::baselines {

struct AdhOptions {
  /// BERT-style input cap: only the first `input_token_budget` tokens of the
  /// serialized table (caption, schema, then cells row-major) are visible to
  /// the model. Cells beyond the cap are truncated away — the limitation the
  /// paper repeatedly attributes AdH's losses to. (BERT's 512 scaled to this
  /// corpus's table sizes.)
  size_t input_token_budget = 16;
  /// Query tokens beyond this are dropped too.
  size_t query_token_budget = 64;
  /// Score blend: a BERT cross-encoder pools the whole (truncated) input, so
  /// the sequence-level representation dominates; fine-grained token
  /// interactions contribute the remainder.
  float pooled_weight = 0.6f;
};

/// Ad-Hoc Table Retrieval (Chen et al. [7]): BERT-based table ranking via
/// content selectors. Modeled as a cross-encoder-style token matcher: the
/// score is the mean over query tokens of their best similarity to any
/// visible table token. Contextual (token embeddings bridge synonyms via the
/// encoder) but input-truncated, and evaluated per query-table pair at query
/// time — hence both its quality ceiling and its latency in the paper.
class AdhSearcher final : public discovery::Searcher {
 public:
  AdhSearcher(const table::Federation& federation,
              std::shared_ptr<const CorpusFieldStats> stats,
              std::shared_ptr<const embed::SemanticEncoder> encoder,
              AdhOptions options = {});

  [[nodiscard]] Result<discovery::Ranking> Search(
      const std::string& query,
      const discovery::DiscoveryOptions& options) const override;
  std::string name() const override { return "AdH"; }

 private:
  std::shared_ptr<const CorpusFieldStats> stats_;
  std::shared_ptr<const embed::SemanticEncoder> encoder_;
  AdhOptions options_;
  /// Per-table visible-token embedding matrices (truncated), flattened.
  std::vector<std::vector<float>> table_token_vectors_;
  /// Pooled embedding of each table's visible tokens.
  std::vector<vecmath::Vec> table_pooled_;
};

/// Soft token matching: mean over rows of A of the max dot product against
/// rows of B (both row-major, unit-normalized, dim `dim`).
float MeanMaxTokenSimilarity(const float* a, size_t a_rows, const float* b,
                             size_t b_rows, size_t dim);

}  // namespace mira::baselines

#endif  // MIRA_BASELINES_ADH_H_
