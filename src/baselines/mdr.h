#ifndef MIRA_BASELINES_MDR_H_
#define MIRA_BASELINES_MDR_H_

#include <memory>
#include <string>

#include "baselines/baseline_common.h"
#include "discovery/types.h"

namespace mira::baselines {

/// Field mixture weights and smoothing of the MDR ranker.
struct MdrOptions {
  double w_title = 0.25;
  double w_section = 0.05;
  double w_caption = 0.30;
  double w_schema = 0.15;
  double w_body = 0.25;
  /// Dirichlet smoothing mass.
  double mu = 300.0;
};

/// Multi-field Document Ranking (Pimplikar & Sarawagi [36]): a table is a
/// structured document whose fields (page title, section title, caption,
/// schema, body) are scored independently with Dirichlet-smoothed query
/// likelihood and combined with a weighted mixture. Purely lexical: no
/// embedding can bridge vocabulary mismatch, which is exactly the weakness
/// the paper's semantic methods exploit.
class MdrSearcher final : public discovery::Searcher {
 public:
  MdrSearcher(std::shared_ptr<const CorpusFieldStats> stats,
              MdrOptions options = {});

  [[nodiscard]] Result<discovery::Ranking> Search(
      const std::string& query,
      const discovery::DiscoveryOptions& options) const override;
  std::string name() const override { return "MDR"; }

 private:
  std::shared_ptr<const CorpusFieldStats> stats_;
  MdrOptions options_;
};

}  // namespace mira::baselines

#endif  // MIRA_BASELINES_MDR_H_
