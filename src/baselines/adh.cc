#include "baselines/adh.h"

#include "common/logging.h"

#include <algorithm>

#include "vecmath/vector_ops.h"

namespace mira::baselines {

float MeanMaxTokenSimilarity(const float* a, size_t a_rows, const float* b,
                             size_t b_rows, size_t dim) {
  if (a_rows == 0 || b_rows == 0) return 0.f;
  float total = 0.f;
  for (size_t i = 0; i < a_rows; ++i) {
    float best = -1.f;
    const float* ai = a + i * dim;
    for (size_t j = 0; j < b_rows; ++j) {
      float sim = vecmath::Dot(ai, b + j * dim, dim);
      if (sim > best) best = sim;
    }
    total += best;
  }
  return total / static_cast<float>(a_rows);
}

AdhSearcher::AdhSearcher(const table::Federation& federation,
                         std::shared_ptr<const CorpusFieldStats> stats,
                         std::shared_ptr<const embed::SemanticEncoder> encoder,
                         AdhOptions options)
    : stats_(std::move(stats)),
      encoder_(std::move(encoder)),
      options_(options) {
  MIRA_CHECK(stats_ != nullptr && encoder_ != nullptr);

  // Pre-embed each table's visible tokens (the "offline" BERT encoding).
  // AdH's content selectors feed *row/column/cell content* to BERT, so the
  // serialization is body-first: when the input cap truncates, it is table
  // content that gets lost — the failure mode the paper attributes AdH's
  // losses to.
  text::Tokenizer tokenizer = BaselineTokenizer();
  const size_t dim = encoder_->dim();
  table_token_vectors_.resize(stats_->tables.size());
  table_pooled_.resize(stats_->tables.size());
  for (size_t t = 0; t < stats_->tables.size(); ++t) {
    const table::Relation& relation = federation.relation(t);
    std::vector<std::string> tokens;
    for (const auto& row : relation.rows) {
      for (const auto& cell : row) {
        for (auto& token : tokenizer.Tokenize(cell)) {
          tokens.push_back(std::move(token));
        }
      }
    }
    for (const auto& column : relation.schema) {
      for (auto& token : tokenizer.Tokenize(column)) {
        tokens.push_back(std::move(token));
      }
    }
    for (auto& token : tokenizer.Tokenize(relation.caption)) {
      tokens.push_back(std::move(token));
    }
    size_t visible = std::min(tokens.size(), options_.input_token_budget);
    auto& flat = table_token_vectors_[t];
    flat.resize(visible * dim);
    for (size_t i = 0; i < visible; ++i) {
      vecmath::Vec v = encoder_->EncodeToken(tokens[i]);
      std::copy(v.begin(), v.end(), flat.begin() + i * dim);
    }
    std::vector<std::string> visible_tokens(tokens.begin(),
                                            tokens.begin() + visible);
    table_pooled_[t] = encoder_->EncodeTokens(visible_tokens);
  }
}

Result<discovery::Ranking> AdhSearcher::Search(
    const std::string& query,
    const discovery::DiscoveryOptions& options) const {
  text::Tokenizer tokenizer = BaselineTokenizer();
  std::vector<std::string> tokens = tokenizer.Tokenize(query);
  if (tokens.size() > options_.query_token_budget) {
    tokens.resize(options_.query_token_budget);
  }
  const size_t dim = encoder_->dim();
  std::vector<float> query_tokens(tokens.size() * dim);
  for (size_t i = 0; i < tokens.size(); ++i) {
    vecmath::Vec v = encoder_->EncodeToken(tokens[i]);
    std::copy(v.begin(), v.end(), query_tokens.begin() + i * dim);
  }

  vecmath::Vec query_pooled = encoder_->EncodeTokens(tokens);

  discovery::Ranking ranking;
  ranking.reserve(table_token_vectors_.size());
  for (size_t t = 0; t < table_token_vectors_.size(); ++t) {
    const auto& flat = table_token_vectors_[t];
    float interaction = MeanMaxTokenSimilarity(
        query_tokens.data(), tokens.size(), flat.data(), flat.size() / dim, dim);
    float pooled = vecmath::CosineSimilarity(query_pooled, table_pooled_[t]);
    float score = options_.pooled_weight * pooled +
                  (1.0f - options_.pooled_weight) * interaction;
    ranking.push_back({static_cast<table::RelationId>(t), score});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const discovery::DiscoveryHit& a,
               const discovery::DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  discovery::ApplyThresholdAndTopK(&ranking, options);
  return ranking;
}

}  // namespace mira::baselines
