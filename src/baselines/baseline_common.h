#ifndef MIRA_BASELINES_BASELINE_COMMON_H_
#define MIRA_BASELINES_BASELINE_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "table/relation.h"
#include "text/corpus_stats.h"
#include "text/tokenizer.h"

namespace mira::baselines {

/// A labeled (query, table, grade) example used to train the learning-to-
/// rank baselines (the paper splits its 3,117 judged pairs into 1,918
/// training and 1,199 evaluation pairs).
struct TrainingPair {
  std::string query;
  table::RelationId relation = 0;
  int grade = 0;
};

/// Per-table tokenized field data shared by every baseline.
struct TableFieldData {
  text::TermBag title;
  text::TermBag section;
  text::TermBag caption;
  text::TermBag schema;
  text::TermBag body;
  /// Serialization order used by the token-budget baselines (AdH/TML):
  /// caption, schema, then cells row-major — truncation drops late cells.
  std::vector<std::string> serialized_tokens;
  size_t num_rows = 0;
  size_t num_cols = 0;
  double numeric_fraction = 0.0;
};

/// Field-wise corpus statistics: one CorpusStats (vocabulary + collection
/// model) per field plus per-table term bags. Built once per federation and
/// shared (read-only) by MDR, WS and TCS.
struct CorpusFieldStats {
  text::CorpusStats title_stats;
  text::CorpusStats section_stats;
  text::CorpusStats caption_stats;
  text::CorpusStats schema_stats;
  text::CorpusStats body_stats;
  std::vector<TableFieldData> tables;

  static std::shared_ptr<const CorpusFieldStats> Build(
      const table::Federation& federation);

  /// Tokenizes a query into ids of a field's vocabulary (-1 for OOV).
  static std::vector<int32_t> QueryIds(const text::CorpusStats& stats,
                                       const std::vector<std::string>& tokens);
};

/// Shared tokenizer configuration of the baselines.
text::Tokenizer BaselineTokenizer();

}  // namespace mira::baselines

#endif  // MIRA_BASELINES_BASELINE_COMMON_H_
