#include "baselines/baseline_common.h"

namespace mira::baselines {

text::Tokenizer BaselineTokenizer() {
  text::TokenizerOptions options;
  options.lowercase = true;
  options.keep_numbers = true;
  return text::Tokenizer(options);
}

std::shared_ptr<const CorpusFieldStats> CorpusFieldStats::Build(
    const table::Federation& federation) {
  auto stats = std::make_shared<CorpusFieldStats>();
  text::Tokenizer tokenizer = BaselineTokenizer();
  stats->tables.reserve(federation.size());

  for (const auto& relation : federation.relations()) {
    TableFieldData data;
    data.num_rows = relation.num_rows();
    data.num_cols = relation.num_columns();
    data.numeric_fraction = relation.NumericCellFraction();

    std::vector<std::string> title_tokens = tokenizer.Tokenize(relation.page_title);
    std::vector<std::string> section_tokens =
        tokenizer.Tokenize(relation.section_title);
    std::vector<std::string> caption_tokens = tokenizer.Tokenize(relation.caption);
    // EDP-style corpora use descriptions; fold them into the caption field.
    if (!relation.description.empty()) {
      for (auto& token : tokenizer.Tokenize(relation.description)) {
        caption_tokens.push_back(std::move(token));
      }
    }
    std::vector<std::string> schema_tokens;
    for (const auto& column : relation.schema) {
      for (auto& token : tokenizer.Tokenize(column)) {
        schema_tokens.push_back(std::move(token));
      }
    }
    std::vector<std::string> body_tokens;
    for (const auto& row : relation.rows) {
      for (const auto& cell : row) {
        for (auto& token : tokenizer.Tokenize(cell)) {
          body_tokens.push_back(std::move(token));
        }
      }
    }

    // Serialization for the token-budget baselines.
    data.serialized_tokens.reserve(caption_tokens.size() +
                                   schema_tokens.size() + body_tokens.size());
    for (const auto& t : caption_tokens) data.serialized_tokens.push_back(t);
    for (const auto& t : schema_tokens) data.serialized_tokens.push_back(t);
    for (const auto& t : body_tokens) data.serialized_tokens.push_back(t);

    data.title = stats->title_stats.AddDocument(title_tokens);
    data.section = stats->section_stats.AddDocument(section_tokens);
    data.caption = stats->caption_stats.AddDocument(caption_tokens);
    data.schema = stats->schema_stats.AddDocument(schema_tokens);
    data.body = stats->body_stats.AddDocument(body_tokens);
    stats->tables.push_back(std::move(data));
  }
  return stats;
}

std::vector<int32_t> CorpusFieldStats::QueryIds(
    const text::CorpusStats& stats, const std::vector<std::string>& tokens) {
  std::vector<int32_t> ids;
  ids.reserve(tokens.size());
  for (const auto& token : tokens) {
    ids.push_back(stats.vocab().GetId(token));
  }
  return ids;
}

}  // namespace mira::baselines
