#include "baselines/mdr.h"

#include "common/logging.h"

#include <algorithm>

namespace mira::baselines {

MdrSearcher::MdrSearcher(std::shared_ptr<const CorpusFieldStats> stats,
                         MdrOptions options)
    : stats_(std::move(stats)), options_(options) {
  MIRA_CHECK(stats_ != nullptr);
}

Result<discovery::Ranking> MdrSearcher::Search(
    const std::string& query,
    const discovery::DiscoveryOptions& options) const {
  text::Tokenizer tokenizer = BaselineTokenizer();
  std::vector<std::string> tokens = tokenizer.Tokenize(query);
  if (tokens.empty()) return discovery::Ranking{};

  std::vector<int32_t> title_ids =
      CorpusFieldStats::QueryIds(stats_->title_stats, tokens);
  std::vector<int32_t> section_ids =
      CorpusFieldStats::QueryIds(stats_->section_stats, tokens);
  std::vector<int32_t> caption_ids =
      CorpusFieldStats::QueryIds(stats_->caption_stats, tokens);
  std::vector<int32_t> schema_ids =
      CorpusFieldStats::QueryIds(stats_->schema_stats, tokens);
  std::vector<int32_t> body_ids =
      CorpusFieldStats::QueryIds(stats_->body_stats, tokens);

  discovery::Ranking ranking;
  ranking.reserve(stats_->tables.size());
  for (size_t t = 0; t < stats_->tables.size(); ++t) {
    const TableFieldData& table = stats_->tables[t];
    double score =
        options_.w_title * stats_->title_stats.DirichletLogLikelihood(
                               title_ids, table.title, options_.mu) +
        options_.w_section * stats_->section_stats.DirichletLogLikelihood(
                                 section_ids, table.section, options_.mu) +
        options_.w_caption * stats_->caption_stats.DirichletLogLikelihood(
                                 caption_ids, table.caption, options_.mu) +
        options_.w_schema * stats_->schema_stats.DirichletLogLikelihood(
                                schema_ids, table.schema, options_.mu) +
        options_.w_body * stats_->body_stats.DirichletLogLikelihood(
                              body_ids, table.body, options_.mu);
    // Normalize by query length so scores are comparable across queries
    // (thresholding semantics), then squash to a bounded range.
    score /= static_cast<double>(tokens.size());
    ranking.push_back({static_cast<table::RelationId>(t),
                       static_cast<float>(score)});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const discovery::DiscoveryHit& a,
               const discovery::DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  // The threshold h is defined on cosine-like scores; for the lexical
  // baselines only top-k truncation applies.
  if (ranking.size() > options.top_k) ranking.resize(options.top_k);
  return ranking;
}

}  // namespace mira::baselines
