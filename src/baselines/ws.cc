#include "baselines/ws.h"

#include <algorithm>
#include <cmath>

namespace mira::baselines {

namespace {

// Count of query tokens present in a field bag (per-field hit counts are the
// classic hand-crafted signals).
double HitCount(const text::CorpusStats& stats, const text::TermBag& bag,
                const std::vector<std::string>& tokens) {
  double hits = 0.0;
  for (const auto& token : tokens) {
    int32_t id = stats.vocab().GetId(token);
    if (id >= 0 && bag.Count(id) > 0) hits += 1.0;
  }
  return hits;
}

}  // namespace

std::vector<double> WsSearcher::Features(const CorpusFieldStats& stats,
                                         const std::vector<std::string>& tokens,
                                         size_t table_index) {
  const TableFieldData& table = stats.tables[table_index];
  std::vector<int32_t> body_ids =
      CorpusFieldStats::QueryIds(stats.body_stats, tokens);
  std::vector<int32_t> title_ids =
      CorpusFieldStats::QueryIds(stats.title_stats, tokens);
  double qlen = std::max<double>(1.0, static_cast<double>(tokens.size()));
  return {
      stats.body_stats.Bm25(body_ids, table.body) / qlen,
      stats.body_stats.DirichletLogLikelihood(body_ids, table.body, 300.0) / qlen,
      stats.title_stats.DirichletLogLikelihood(title_ids, table.title, 300.0) / qlen,
      HitCount(stats.title_stats, table.title, tokens) / qlen,
      HitCount(stats.caption_stats, table.caption, tokens) / qlen,
      HitCount(stats.schema_stats, table.schema, tokens) / qlen,
      std::log1p(static_cast<double>(table.num_rows)),
      std::log1p(static_cast<double>(table.num_cols)),
      table.numeric_fraction,
      std::log1p(qlen),
  };
}

WsSearcher::WsSearcher(std::shared_ptr<const CorpusFieldStats> stats,
                       ml::LinearRegression model)
    : stats_(std::move(stats)), model_(std::move(model)) {}

Result<std::unique_ptr<WsSearcher>> WsSearcher::Build(
    std::shared_ptr<const CorpusFieldStats> stats,
    const std::vector<TrainingPair>& training) {
  if (stats == nullptr) return Status::InvalidArgument("ws: null stats");
  if (training.empty()) return Status::InvalidArgument("ws: no training pairs");

  text::Tokenizer tokenizer = BaselineTokenizer();
  ml::RegressionData data;
  for (const TrainingPair& pair : training) {
    if (pair.relation >= stats->tables.size()) {
      return Status::InvalidArgument("ws: training pair out of range");
    }
    std::vector<std::string> tokens = tokenizer.Tokenize(pair.query);
    MIRA_RETURN_NOT_OK(data.Add(Features(*stats, tokens, pair.relation),
                                static_cast<double>(pair.grade)));
  }
  MIRA_ASSIGN_OR_RETURN(ml::LinearRegression model,
                        ml::LinearRegression::Fit(data));
  return std::unique_ptr<WsSearcher>(
      new WsSearcher(std::move(stats), std::move(model)));
}

Result<discovery::Ranking> WsSearcher::Search(
    const std::string& query,
    const discovery::DiscoveryOptions& options) const {
  text::Tokenizer tokenizer = BaselineTokenizer();
  std::vector<std::string> tokens = tokenizer.Tokenize(query);
  discovery::Ranking ranking;
  ranking.reserve(stats_->tables.size());
  for (size_t t = 0; t < stats_->tables.size(); ++t) {
    double score = model_.Predict(Features(*stats_, tokens, t));
    ranking.push_back({static_cast<table::RelationId>(t),
                       static_cast<float>(score)});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const discovery::DiscoveryHit& a,
               const discovery::DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  if (ranking.size() > options.top_k) ranking.resize(options.top_k);
  return ranking;
}

}  // namespace mira::baselines
