#include "datagen/corpus_generator.h"

#include <algorithm>

#include "common/string_util.h"

namespace mira::datagen {

namespace {

enum class ColumnRole { kTopical, kNumeric, kFiller, kOffTopic };

// A numeric regime per column so values within a column are coherent
// (years vs quantities vs rates), mirroring real tables.
std::string SampleNumeric(Rng* rng, int regime) {
  switch (regime % 3) {
    case 0:  // year-like
      return std::to_string(1900 + rng->NextBounded(131));
    case 1:  // integer quantity with skewed magnitude
      return std::to_string(1 + rng->NextBounded(
                                    1ULL << (2 + rng->NextBounded(16))));
    default: {  // rate/percentage
      return StrFormat("%.2f", rng->NextUniform(0.0, 100.0));
    }
  }
}

const std::string& PickSurface(const std::vector<std::string>& pool, Rng* rng) {
  return pool[rng->NextBounded(pool.size())];
}

}  // namespace

CorpusOptions WikiTablesCorpusOptions() {
  CorpusOptions options;
  options.numeric_column_fraction = 0.25;  // ~26.9% numeric cells in [55]
  options.edp_style = false;
  return options;
}

CorpusOptions EdpCorpusOptions() {
  CorpusOptions options;
  options.numeric_column_fraction = 0.55;  // ~55.3% numeric cells reported
  options.topical_column_fraction = 0.3;
  options.min_rows = 3;
  options.max_rows = 8;
  options.edp_style = true;
  options.seed = 404;
  return options;
}

GeneratedCorpus GenerateCorpus(const ConceptBank& bank,
                               const CorpusOptions& options) {
  GeneratedCorpus corpus;
  Rng rng(options.seed);
  const size_t num_topics = bank.num_topics();
  const size_t aspects_per_topic = bank.options().aspects_per_topic;

  for (size_t t = 0; t < options.num_tables; ++t) {
    int32_t topic =
        static_cast<int32_t>(rng.NextZipf(num_topics, options.topic_skew));
    int32_t aspect = bank.AspectOf(topic, rng.NextBounded(aspects_per_topic));

    if (rng.NextBernoulli(options.stub_table_probability)) {
      // Generic topic stub: 1-2 columns, few rows; cells are topic labels and
      // surfaces scattered across the topic's aspects. No aspect focus.
      table::Relation stub;
      stub.name = StrFormat("table_%05zu", t);
      size_t cols = 1 + rng.NextBounded(2);
      size_t rows = 3 + rng.NextBounded(4);
      for (size_t c = 0; c < cols; ++c) {
        stub.schema.push_back(bank.SampleFiller(&rng));
      }
      for (size_t r = 0; r < rows; ++r) {
        std::vector<std::string> row(cols);
        for (size_t c = 0; c < cols; ++c) {
          if (rng.NextBernoulli(0.35)) {
            row[c] = bank.SampleFiller(&rng);
          } else if (rng.NextBernoulli(0.4)) {
            row[c] = PickSurface(bank.TopicTableSurfaces(topic), &rng);
          } else {
            int32_t any_aspect =
                bank.AspectOf(topic, rng.NextBounded(aspects_per_topic));
            row[c] = PickSurface(bank.TableSurfaces(any_aspect), &rng);
          }
        }
        stub.AddRow(std::move(row)).Abort("corpus generator");
      }
      if (options.edp_style) {
        stub.description = PickSurface(bank.TopicTableSurfaces(topic), &rng);
      } else {
        stub.page_title = PickSurface(bank.TopicTableSurfaces(topic), &rng);
        stub.caption = bank.SampleFiller(&rng);
      }
      corpus.federation.AddRelation(std::move(stub));
      corpus.table_topic.push_back(topic);
      corpus.table_aspect.push_back(-1);
      corpus.table_is_stub.push_back(true);
      corpus.table_secondary_aspect.push_back(-1);
      continue;
    }

    size_t cols = options.min_cols +
                  rng.NextBounded(options.max_cols - options.min_cols + 1);
    size_t rows = options.min_rows +
                  rng.NextBounded(options.max_rows - options.min_rows + 1);

    // Assign column roles. At least one topical column always exists —
    // a table about nothing is unjudgeable. The topical density varies per
    // table around the configured mean.
    std::vector<ColumnRole> roles(cols, ColumnRole::kFiller);
    double density = options.topical_column_fraction * rng.NextUniform(0.5, 1.5);
    size_t topical =
        std::max<size_t>(1, static_cast<size_t>(density * cols + 0.5));
    size_t numeric =
        static_cast<size_t>(options.numeric_column_fraction * cols + 0.5);
    size_t assigned = 0;
    for (size_t c = 0; c < topical && assigned < cols; ++c) {
      roles[assigned++] = ColumnRole::kTopical;
    }
    for (size_t c = 0; c < numeric && assigned < cols; ++c) {
      roles[assigned++] = ColumnRole::kNumeric;
    }
    bool has_offtopic = false;
    if (assigned < cols && rng.NextBernoulli(options.offtopic_column_probability)) {
      roles[assigned++] = ColumnRole::kOffTopic;
      has_offtopic = true;
    }
    rng.Shuffle(&roles);

    // Off-topic columns pull from one other random topic (coherent noise).
    int32_t offtopic_aspect = bank.AspectOf(
        static_cast<int32_t>((topic + 1 + rng.NextBounded(num_topics - 1)) %
                             num_topics),
        rng.NextBounded(aspects_per_topic));

    table::Relation relation;
    relation.name = StrFormat("table_%05zu", t);
    std::vector<int> numeric_regimes(cols);
    for (size_t c = 0; c < cols; ++c) {
      numeric_regimes[c] = static_cast<int>(rng.NextBounded(3));
      switch (roles[c]) {
        case ColumnRole::kTopical:
        case ColumnRole::kOffTopic:
          relation.schema.push_back(bank.SampleFiller(&rng) + "_" +
                                    bank.SampleFiller(&rng));
          break;
        case ColumnRole::kNumeric:
          relation.schema.push_back(bank.SampleFiller(&rng) + "_count");
          break;
        case ColumnRole::kFiller:
          relation.schema.push_back(bank.SampleFiller(&rng));
          break;
      }
    }

    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row(cols);
      for (size_t c = 0; c < cols; ++c) {
        switch (roles[c]) {
          case ColumnRole::kTopical: {
            bool leak = rng.NextBernoulli(options.query_surface_leak);
            const auto& pool =
                leak ? bank.QuerySurfaces(aspect) : bank.TableSurfaces(aspect);
            row[c] = PickSurface(pool, &rng);
            break;
          }
          case ColumnRole::kOffTopic:
            row[c] = PickSurface(bank.TableSurfaces(offtopic_aspect), &rng);
            break;
          case ColumnRole::kNumeric:
            row[c] = SampleNumeric(&rng, numeric_regimes[c]);
            break;
          case ColumnRole::kFiller:
            row[c] = bank.SampleFiller(&rng) + " " + bank.SampleFiller(&rng);
            break;
        }
      }
      relation.AddRow(std::move(row)).Abort("corpus generator");
    }

    // Context fields.
    if (options.edp_style) {
      relation.description =
          PickSurface(bank.TopicTableSurfaces(topic), &rng) + " " +
          bank.SampleFiller(&rng) + " " + bank.SampleFiller(&rng);
    } else {
      relation.page_title = PickSurface(bank.TopicTableSurfaces(topic), &rng) +
                            " " + bank.SampleFiller(&rng);
      relation.section_title = bank.SampleFiller(&rng);
      if (rng.NextBernoulli(options.caption_topic_probability)) {
        relation.caption = PickSurface(bank.TableSurfaces(aspect), &rng) + " " +
                           bank.SampleFiller(&rng);
      } else {
        relation.caption =
            bank.SampleFiller(&rng) + " " + bank.SampleFiller(&rng);
      }
    }

    corpus.federation.AddRelation(std::move(relation));
    corpus.table_topic.push_back(topic);
    corpus.table_aspect.push_back(aspect);
    corpus.table_is_stub.push_back(false);
    corpus.table_secondary_aspect.push_back(has_offtopic ? offtopic_aspect : -1);
  }
  return corpus;
}

}  // namespace mira::datagen
