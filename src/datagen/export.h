#ifndef MIRA_DATAGEN_EXPORT_H_
#define MIRA_DATAGEN_EXPORT_H_

#include <string>

#include "common/status.h"
#include "datagen/workload.h"

namespace mira::datagen {

/// Materializes a generated workload as files, so external tools (or the
/// csv_search_cli example) can consume it:
///   <dir>/tables/table_00000.csv ...  one CSV per relation (header = schema)
///   <dir>/queries.tsv                 id <TAB> class <TAB> text
///   <dir>/qrels.txt                   trec_eval qrels (qid 0 docid grade)
///   <dir>/ground_truth.tsv            table id, topic, aspect, is_stub
/// Existing files are overwritten. The directory is created if needed.
[[nodiscard]] Status ExportWorkload(const Workload& workload, const std::string& dir);

}  // namespace mira::datagen

#endif  // MIRA_DATAGEN_EXPORT_H_
