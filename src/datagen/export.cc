#include "datagen/export.h"

#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "ir/trec_io.h"

namespace mira::datagen {

namespace {

// Quotes a CSV field when needed (commas, quotes, newlines).
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace

Status ExportWorkload(const Workload& workload, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(dir) / "tables", ec);
  if (ec) return Status::IoError("cannot create " + dir);

  // Tables.
  const auto& federation = workload.corpus.federation;
  for (table::RelationId rid = 0; rid < federation.size(); ++rid) {
    const table::Relation& relation = federation.relation(rid);
    std::string path =
        StrFormat("%s/tables/table_%05u.csv", dir.c_str(), rid);
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + path);
    for (size_t c = 0; c < relation.schema.size(); ++c) {
      out << (c ? "," : "") << CsvField(relation.schema[c]);
    }
    out << '\n';
    for (const auto& row : relation.rows) {
      for (size_t c = 0; c < row.size(); ++c) {
        out << (c ? "," : "") << CsvField(row[c]);
      }
      out << '\n';
    }
    if (!out.good()) return Status::IoError("write failed: " + path);
  }

  // Queries.
  {
    std::string path = dir + "/queries.tsv";
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + path);
    for (const auto& query : workload.queries) {
      out << query.id << '\t' << QueryClassToString(query.cls) << '\t'
          << query.text << '\n';
    }
    if (!out.good()) return Status::IoError("write failed: " + path);
  }

  // Qrels in trec_eval format.
  MIRA_RETURN_NOT_OK(ir::WriteQrelsFile(dir + "/qrels.txt", workload.qrels));

  // Hidden ground truth (for analysis, not for models).
  {
    std::string path = dir + "/ground_truth.tsv";
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + path);
    out << "table\ttopic\taspect\tis_stub\n";
    for (size_t t = 0; t < workload.corpus.table_topic.size(); ++t) {
      out << t << '\t' << workload.corpus.table_topic[t] << '\t'
          << workload.corpus.table_aspect[t] << '\t'
          << (workload.corpus.table_is_stub[t] ? 1 : 0) << '\n';
    }
    if (!out.good()) return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace mira::datagen
