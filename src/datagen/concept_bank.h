#ifndef MIRA_DATAGEN_CONCEPT_BANK_H_
#define MIRA_DATAGEN_CONCEPT_BANK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "embed/lexicon.h"

namespace mira::datagen {

/// Shape of the synthetic semantic inventory.
struct ConceptBankOptions {
  /// Topics ("COVID vaccines", "European climate", ...).
  size_t num_topics = 32;
  /// Aspects per topic — the granularity of full relevance (grade 2 =
  /// same aspect, grade 1 = same topic).
  size_t aspects_per_topic = 4;
  /// Concepts per aspect ("Comirnaty", "dosage schedule", ...).
  size_t concepts_per_aspect = 5;
  /// Surface forms (synonyms) per concept. Split between table-side and
  /// query-side so that queries and relevant tables usually share *meaning*
  /// but not *strings* — the phenomenon the paper's semantic matching
  /// exploits and keyword baselines miss.
  size_t surfaces_per_concept = 6;
  /// Non-topical vocabulary used as noise everywhere.
  size_t filler_vocab = 400;
  uint64_t seed = 101;
};

/// A generated world of topics/aspects/concepts/surfaces plus the Lexicon
/// that teaches the encoder their relationships. This is the ground truth
/// against which relevance is judged.
class ConceptBank {
 public:
  static ConceptBank Generate(const ConceptBankOptions& options);

  const std::shared_ptr<const embed::Lexicon>& lexicon() const {
    return lexicon_;
  }
  const ConceptBankOptions& options() const { return options_; }

  size_t num_topics() const { return options_.num_topics; }
  size_t num_aspects() const {
    return options_.num_topics * options_.aspects_per_topic;
  }
  int32_t AspectOf(int32_t topic, size_t aspect_in_topic) const {
    return topic * static_cast<int32_t>(options_.aspects_per_topic) +
           static_cast<int32_t>(aspect_in_topic);
  }
  int32_t TopicOfAspect(int32_t aspect) const {
    return aspect / static_cast<int32_t>(options_.aspects_per_topic);
  }

  /// Surfaces intended for table cells of the aspect.
  const std::vector<std::string>& TableSurfaces(int32_t aspect) const;
  /// Surfaces intended for query text about the aspect.
  const std::vector<std::string>& QuerySurfaces(int32_t aspect) const;

  /// Table-side / query-side label surfaces of a whole topic.
  const std::vector<std::string>& TopicTableSurfaces(int32_t topic) const;
  const std::vector<std::string>& TopicQuerySurfaces(int32_t topic) const;

  /// Non-topical filler vocabulary.
  const std::vector<std::string>& filler() const { return filler_; }

  /// Uniform filler word.
  const std::string& SampleFiller(Rng* rng) const;

 private:
  ConceptBankOptions options_;
  std::shared_ptr<const embed::Lexicon> lexicon_;
  /// Indexed by global aspect id.
  std::vector<std::vector<std::string>> aspect_table_surfaces_;
  std::vector<std::vector<std::string>> aspect_query_surfaces_;
  /// Indexed by topic.
  std::vector<std::vector<std::string>> topic_table_surfaces_;
  std::vector<std::vector<std::string>> topic_query_surfaces_;
  std::vector<std::string> filler_;
};

/// Deterministic pronounceable pseudo-word of `syllables` CV syllables.
std::string MakePseudoWord(Rng* rng, size_t syllables);

}  // namespace mira::datagen

#endif  // MIRA_DATAGEN_CONCEPT_BANK_H_
