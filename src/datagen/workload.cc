#include "datagen/workload.h"

#include <unordered_map>

namespace mira::datagen {

WorkloadOptions WikiTablesWorkload(size_t num_tables) {
  WorkloadOptions options;
  options.corpus = WikiTablesCorpusOptions();
  options.corpus.num_tables = num_tables;
  return options;
}

WorkloadOptions EdpWorkload(size_t num_tables) {
  WorkloadOptions options;
  options.bank.seed = 707;
  options.corpus = EdpCorpusOptions();
  options.corpus.num_tables = num_tables;
  options.queries.seed = 808;
  options.qrels.seed = 909;
  return options;
}

Workload Workload::Generate(const WorkloadOptions& options) {
  Workload workload;
  workload.bank = ConceptBank::Generate(options.bank);
  workload.corpus = GenerateCorpus(workload.bank, options.corpus);
  workload.queries = GenerateQueries(workload.bank, options.queries);
  workload.qrels = MakeQrels(workload.corpus, workload.queries, options.qrels);
  return workload;
}

std::vector<GeneratedQuery> Workload::QueriesOf(QueryClass cls) const {
  std::vector<GeneratedQuery> out;
  for (const auto& query : queries) {
    if (query.cls == cls) out.push_back(query);
  }
  return out;
}

Workload::View Workload::MakeView(double fraction, uint64_t seed) const {
  View view;
  view.federation =
      corpus.federation.Subset(fraction, seed, &view.original_ids);
  view.table_topic.reserve(view.original_ids.size());
  view.table_aspect.reserve(view.original_ids.size());
  for (table::RelationId orig : view.original_ids) {
    view.table_topic.push_back(corpus.table_topic[orig]);
    view.table_aspect.push_back(corpus.table_aspect[orig]);
    view.table_is_stub.push_back(corpus.table_is_stub[orig]);
  }
  // Remap qrels to view-local ids; judgments on dropped tables vanish.
  std::unordered_map<table::RelationId, table::RelationId> to_view;
  to_view.reserve(view.original_ids.size());
  for (table::RelationId v = 0; v < view.original_ids.size(); ++v) {
    to_view.emplace(view.original_ids[v], v);
  }
  for (const auto& query : queries) {
    for (table::RelationId v = 0; v < view.original_ids.size(); ++v) {
      int grade = qrels.Grade(query.id, view.original_ids[v]);
      // Preserve explicit zero judgments only when originally judged; the
      // Grade API cannot distinguish, so re-derive from ground truth:
      if (grade > 0) {
        view.qrels.Add(query.id, v, grade);
      }
    }
    // Explicit grade-0 pool entries are immaterial for the metrics; skip.
  }
  return view;
}

}  // namespace mira::datagen
