#ifndef MIRA_DATAGEN_CORPUS_GENERATOR_H_
#define MIRA_DATAGEN_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/concept_bank.h"
#include "table/relation.h"

namespace mira::datagen {

/// Shape of a generated table corpus.
struct CorpusOptions {
  size_t num_tables = 1200;
  size_t min_rows = 4;
  size_t max_rows = 12;
  size_t min_cols = 3;
  size_t max_cols = 6;
  /// Mean fraction of columns carrying the table's aspect concepts; the
  /// actual fraction varies per table in [0.5x, 1.5x] of this, so relevant
  /// tables differ in how diluted their signal is — the spread that separates
  /// focused retrieval (ANNS/CTS) from whole-table averaging (ExS).
  double topical_column_fraction = 0.4;
  /// Probability a table is a "generic topic stub": a small table of
  /// topic-label and scattered cross-aspect surfaces with no concrete aspect
  /// content (navigation/index tables). Judges grade these irrelevant (0) for
  /// specific information needs, yet under whole-table score averaging their
  /// uniformly-moderate similarity lets them outrank diluted truly-relevant
  /// tables — the §5.3 dilution phenomenon.
  double stub_table_probability = 0.06;
  /// Fraction of columns carrying numeric data. The remainder is filler,
  /// except for a possible off-topic column (below).
  double numeric_column_fraction = 0.25;
  /// Probability a table gets one column of surfaces from an unrelated
  /// topic (cross-topic noise; what dilutes ExS).
  double offtopic_column_probability = 0.35;
  /// Probability a topical cell uses a *query-side* surface — the small
  /// lexical overlap that keeps keyword baselines above zero.
  double query_surface_leak = 0.5;
  /// Probability the caption names the topic with a table-side label.
  double caption_topic_probability = 0.6;
  /// Zipf skew of topic popularity (0 = uniform).
  double topic_skew = 0.4;
  /// EDP-style corpora have more numeric data and descriptions instead of
  /// page/section context.
  bool edp_style = false;
  uint64_t seed = 202;
};

/// WikiTables-like preset (26.9% numeric cells, rich context fields).
CorpusOptions WikiTablesCorpusOptions();
/// European Data Portal-like preset (55.3% numeric cells, description-only
/// context, smaller tables).
CorpusOptions EdpCorpusOptions();

/// A generated corpus with its hidden ground truth.
struct GeneratedCorpus {
  table::Federation federation;
  /// Topic / global-aspect id per table (aligned with RelationId).
  std::vector<int32_t> table_topic;
  std::vector<int32_t> table_aspect;
  /// Generic topic stubs: lexically topical, semantically content-free;
  /// always judged grade 0.
  std::vector<bool> table_is_stub;
  /// Aspect of the table's off-topic column (-1 when absent). A table whose
  /// side column carries aspect X genuinely *contains* X content, so judges
  /// grade it partially relevant for X queries.
  std::vector<int32_t> table_secondary_aspect;
};

/// Samples `options.num_tables` relations from the concept bank.
GeneratedCorpus GenerateCorpus(const ConceptBank& bank,
                               const CorpusOptions& options);

}  // namespace mira::datagen

#endif  // MIRA_DATAGEN_CORPUS_GENERATOR_H_
