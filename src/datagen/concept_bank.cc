#include "datagen/concept_bank.h"

#include <unordered_set>

#include "common/logging.h"

namespace mira::datagen {

namespace {

constexpr char kConsonants[] = "bcdfghjklmnprstvz";
constexpr char kVowels[] = "aeiou";

}  // namespace

std::string MakePseudoWord(Rng* rng, size_t syllables) {
  std::string word;
  word.reserve(syllables * 2 + 1);
  for (size_t s = 0; s < syllables; ++s) {
    word.push_back(kConsonants[rng->NextBounded(sizeof(kConsonants) - 1)]);
    word.push_back(kVowels[rng->NextBounded(sizeof(kVowels) - 1)]);
  }
  // Occasional trailing consonant for variety.
  if (rng->NextBernoulli(0.35)) {
    word.push_back(kConsonants[rng->NextBounded(sizeof(kConsonants) - 1)]);
  }
  return word;
}

ConceptBank ConceptBank::Generate(const ConceptBankOptions& options) {
  ConceptBank bank;
  bank.options_ = options;
  Rng rng(options.seed);
  auto lexicon = std::make_shared<embed::Lexicon>();

  std::unordered_set<std::string> used;
  auto fresh_word = [&](size_t syllables) {
    for (;;) {
      std::string word = MakePseudoWord(&rng, syllables);
      if (used.insert(word).second) return word;
    }
  };

  const size_t num_aspects = options.num_topics * options.aspects_per_topic;
  bank.aspect_table_surfaces_.resize(num_aspects);
  bank.aspect_query_surfaces_.resize(num_aspects);
  bank.topic_table_surfaces_.resize(options.num_topics);
  bank.topic_query_surfaces_.resize(options.num_topics);

  for (size_t t = 0; t < options.num_topics; ++t) {
    int32_t topic_id = lexicon->AddTopic(fresh_word(3));

    // A label concept per topic: surfaces usable in captions/queries to name
    // the topic as a whole.
    int32_t label_concept = lexicon->AddConcept(topic_id, fresh_word(3));
    for (size_t s = 0; s < options.surfaces_per_concept; ++s) {
      std::string surface = fresh_word(2 + rng.NextBounded(2));
      lexicon->AddSurface(label_concept, surface);
      if (s < (options.surfaces_per_concept + 1) / 2) {
        bank.topic_table_surfaces_[t].push_back(surface);
      } else {
        bank.topic_query_surfaces_[t].push_back(surface);
      }
    }

    for (size_t a = 0; a < options.aspects_per_topic; ++a) {
      size_t aspect = t * options.aspects_per_topic + a;
      // Aspects are registered topic-major, so the lexicon's aspect ids
      // coincide with the bank's global aspect ids.
      int32_t lex_aspect = lexicon->AddAspect(topic_id, fresh_word(3));
      MIRA_CHECK(lex_aspect == static_cast<int32_t>(aspect));
      for (size_t c = 0; c < options.concepts_per_aspect; ++c) {
        int32_t concept_id =
            lexicon->AddConcept(topic_id, fresh_word(3), lex_aspect);
        for (size_t s = 0; s < options.surfaces_per_concept; ++s) {
          std::string surface = fresh_word(2 + rng.NextBounded(2));
          lexicon->AddSurface(concept_id, surface);
          // First half of the surfaces appear in tables, the second half in
          // queries: semantically identical, lexically disjoint.
          if (s < (options.surfaces_per_concept + 1) / 2) {
            bank.aspect_table_surfaces_[aspect].push_back(surface);
          } else {
            bank.aspect_query_surfaces_[aspect].push_back(surface);
          }
        }
      }
    }
  }

  bank.filler_.reserve(options.filler_vocab);
  for (size_t i = 0; i < options.filler_vocab; ++i) {
    bank.filler_.push_back(fresh_word(1 + rng.NextBounded(3)));
  }

  bank.lexicon_ = std::move(lexicon);
  return bank;
}

const std::vector<std::string>& ConceptBank::TableSurfaces(int32_t aspect) const {
  MIRA_CHECK(aspect >= 0 &&
             static_cast<size_t>(aspect) < aspect_table_surfaces_.size());
  return aspect_table_surfaces_[aspect];
}

const std::vector<std::string>& ConceptBank::QuerySurfaces(int32_t aspect) const {
  MIRA_CHECK(aspect >= 0 &&
             static_cast<size_t>(aspect) < aspect_query_surfaces_.size());
  return aspect_query_surfaces_[aspect];
}

const std::vector<std::string>& ConceptBank::TopicTableSurfaces(
    int32_t topic) const {
  MIRA_CHECK(topic >= 0 &&
             static_cast<size_t>(topic) < topic_table_surfaces_.size());
  return topic_table_surfaces_[topic];
}

const std::vector<std::string>& ConceptBank::TopicQuerySurfaces(
    int32_t topic) const {
  MIRA_CHECK(topic >= 0 &&
             static_cast<size_t>(topic) < topic_query_surfaces_.size());
  return topic_query_surfaces_[topic];
}

const std::string& ConceptBank::SampleFiller(Rng* rng) const {
  // Zipfian usage, as in natural language: a few filler words are extremely
  // common (and thus carry ~zero IDF for the lexical baselines), most are
  // rare.
  return filler_[rng->NextZipf(filler_.size(), 1.05)];
}

}  // namespace mira::datagen
