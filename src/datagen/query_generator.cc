#include "datagen/query_generator.h"

#include <algorithm>

#include "common/string_util.h"

namespace mira::datagen {

namespace {

void AppendWord(std::string* text, const std::string& word) {
  if (!text->empty()) text->push_back(' ');
  text->append(word);
}

GeneratedQuery MakeQuery(const ConceptBank& bank, QueryClass cls,
                         size_t min_kw, size_t max_kw,
                         double table_surface_probability, Rng* rng) {
  GeneratedQuery query;
  query.cls = cls;
  query.topic = static_cast<int32_t>(rng->NextBounded(bank.num_topics()));
  query.aspect = bank.AspectOf(
      query.topic, rng->NextBounded(bank.options().aspects_per_topic));

  size_t budget = min_kw + rng->NextBounded(max_kw - min_kw + 1);
  // Users mix their own wording (query-side surfaces) with vocabulary they
  // have seen in data (table-side surfaces).
  auto aspect_word = [&](int32_t aspect) -> const std::string& {
    const auto& pool = rng->NextBernoulli(table_surface_probability)
                           ? bank.TableSurfaces(aspect)
                           : bank.QuerySurfaces(aspect);
    return pool[rng->NextBounded(pool.size())];
  };
  auto topic_word = [&]() -> const std::string& {
    const auto& pool = rng->NextBernoulli(table_surface_probability)
                           ? bank.TopicTableSurfaces(query.topic)
                           : bank.TopicQuerySurfaces(query.topic);
    return pool[rng->NextBounded(pool.size())];
  };

  std::string text;
  size_t used = 0;
  switch (cls) {
    case QueryClass::kShort: {
      // 2-3 keywords: concept surfaces, maybe the topic label.
      AppendWord(&text, aspect_word(query.aspect));
      ++used;
      while (used < budget) {
        if (rng->NextBernoulli(0.4)) {
          AppendWord(&text, topic_word());
        } else {
          AppendWord(&text, aspect_word(query.aspect));
        }
        ++used;
      }
      break;
    }
    case QueryClass::kModerate: {
      // Sentence-like: several aspect surfaces, the topic label, filler glue.
      size_t signal = std::max<size_t>(3, (2 * budget) / 5);
      for (size_t i = 0; i < signal && used < budget; ++i, ++used) {
        if (i == 1) {
          AppendWord(&text, topic_word());
        } else {
          AppendWord(&text, aspect_word(query.aspect));
        }
      }
      while (used < budget) {
        AppendWord(&text, bank.SampleFiller(rng));
        ++used;
      }
      break;
    }
    case QueryClass::kLong: {
      // Full-text: aspect signal, sibling-aspect drift, cross-topic
      // digressions, heavy filler. The drift and digressions blur the pooled
      // embedding across and beyond the topic — the reason long queries
      // score lowest across all methods (§5.2).
      size_t signal = std::max<size_t>(4, budget / 9);
      size_t drift = std::max<size_t>(4, budget / 8);
      size_t digression = std::max<size_t>(3, budget / 6);
      for (size_t i = 0; i < signal && used < budget; ++i, ++used) {
        AppendWord(&text, aspect_word(query.aspect));
      }
      for (size_t i = 0; i < drift && used < budget; ++i, ++used) {
        int32_t sibling = bank.AspectOf(
            query.topic, rng->NextBounded(bank.options().aspects_per_topic));
        AppendWord(&text, aspect_word(sibling));
      }
      // The digression is *coherent*: one foreign theme, as in real
      // multi-theme documents. It steers part of the embedding toward an
      // unrelated topic whose tables are all judged irrelevant.
      int32_t other_topic = static_cast<int32_t>(
          (query.topic + 1 + rng->NextBounded(bank.num_topics() - 1)) %
          bank.num_topics());
      int32_t foreign = bank.AspectOf(
          other_topic, rng->NextBounded(bank.options().aspects_per_topic));
      const auto& foreign_pool = bank.QuerySurfaces(foreign);
      for (size_t i = 0; i < digression && used < budget; ++i, ++used) {
        AppendWord(&text, foreign_pool[rng->NextBounded(foreign_pool.size())]);
      }
      if (used < budget) {
        AppendWord(&text, topic_word());
        ++used;
      }
      while (used < budget) {
        AppendWord(&text, bank.SampleFiller(rng));
        ++used;
      }
      break;
    }
  }
  query.text = std::move(text);
  query.num_keywords = used;
  return query;
}

}  // namespace

std::string_view QueryClassToString(QueryClass cls) {
  switch (cls) {
    case QueryClass::kShort:
      return "short";
    case QueryClass::kModerate:
      return "moderate";
    case QueryClass::kLong:
      return "long";
  }
  return "?";
}

std::vector<GeneratedQuery> GenerateQueries(const ConceptBank& bank,
                                            const QuerySetOptions& options) {
  std::vector<GeneratedQuery> queries;
  Rng rng(options.seed);
  ir::QueryId next_id = 0;
  struct ClassSpec {
    QueryClass cls;
    size_t min_kw;
    size_t max_kw;
  };
  const ClassSpec specs[] = {
      {QueryClass::kShort, options.short_min, options.short_max},
      {QueryClass::kModerate, options.moderate_min, options.moderate_max},
      {QueryClass::kLong, options.long_min, options.long_max},
  };
  for (const auto& spec : specs) {
    for (size_t i = 0; i < options.per_class; ++i) {
      GeneratedQuery query =
          MakeQuery(bank, spec.cls, spec.min_kw, spec.max_kw,
                    options.table_surface_probability, &rng);
      query.id = next_id++;
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

ir::Qrels MakeQrels(const GeneratedCorpus& corpus,
                    const std::vector<GeneratedQuery>& queries,
                    const QrelsOptions& options) {
  ir::Qrels qrels;
  Rng rng(options.seed);
  const size_t num_tables = corpus.table_topic.size();
  for (const auto& query : queries) {
    std::vector<ir::DocId> partial;
    std::vector<ir::DocId> irrelevant;
    for (size_t t = 0; t < num_tables; ++t) {
      if (corpus.table_is_stub[t]) {
        // Generic stubs never satisfy a specific information need.
        irrelevant.push_back(static_cast<ir::DocId>(t));
      } else if (corpus.table_aspect[t] == query.aspect) {
        qrels.Add(query.id, static_cast<ir::DocId>(t), 2);
      } else if (corpus.table_secondary_aspect[t] == query.aspect) {
        // Judges grade by content: a side column about the query's aspect
        // makes the table partially relevant even under another main topic.
        qrels.Add(query.id, static_cast<ir::DocId>(t), 1);
      } else if (corpus.table_topic[t] == query.topic) {
        partial.push_back(static_cast<ir::DocId>(t));
      } else {
        irrelevant.push_back(static_cast<ir::DocId>(t));
      }
    }
    rng.Shuffle(&partial);
    for (size_t i = 0; i < partial.size() && i < options.max_partial_per_query;
         ++i) {
      qrels.Add(query.id, partial[i], 1);
    }
    rng.Shuffle(&irrelevant);
    for (size_t i = 0;
         i < irrelevant.size() && i < options.max_irrelevant_per_query; ++i) {
      qrels.Add(query.id, irrelevant[i], 0);
    }
  }
  return qrels;
}

}  // namespace mira::datagen
