#ifndef MIRA_DATAGEN_QUERY_GENERATOR_H_
#define MIRA_DATAGEN_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/concept_bank.h"
#include "datagen/corpus_generator.h"
#include "ir/metrics.h"

namespace mira::datagen {

/// The paper's three query-length classes (§5 [Queries]).
enum class QueryClass { kShort, kModerate, kLong };

std::string_view QueryClassToString(QueryClass cls);

struct GeneratedQuery {
  ir::QueryId id = 0;
  std::string text;
  QueryClass cls = QueryClass::kShort;
  /// Hidden intent.
  int32_t topic = 0;
  int32_t aspect = 0;
  size_t num_keywords = 0;
};

struct QuerySetOptions {
  /// Queries generated per class (the paper uses 60 total).
  size_t per_class = 20;
  /// Keyword budgets per class, matching §5: SQ <= 3, MQ <= 30, LQ 30..300.
  size_t short_min = 2, short_max = 3;
  size_t moderate_min = 8, moderate_max = 26;
  size_t long_min = 35, long_max = 120;
  /// Probability a signal token uses a *table-side* surface form: users know
  /// some of the exact vocabulary of the data they seek, which is what keeps
  /// purely lexical baselines (MDR, WS) in the game at all.
  double table_surface_probability = 0.6;
  uint64_t seed = 303;
};

/// Generates queries with hidden topic/aspect intents. Short queries are a
/// few query-side concept surfaces; moderate queries are sentence-like with
/// filler; long queries additionally drift into sibling aspects of the same
/// topic, diluting their embedding — the mechanism behind the paper's
/// short > moderate > long quality ordering.
std::vector<GeneratedQuery> GenerateQueries(const ConceptBank& bank,
                                            const QuerySetOptions& options);

struct QrelsOptions {
  /// All same-aspect tables are judged fully relevant (grade 2). Same-topic
  /// tables are judged partially relevant (grade 1) up to this cap per query.
  size_t max_partial_per_query = 6;
  /// Explicit grade-0 judgments sampled per query (pool realism; metrics
  /// treat unjudged as irrelevant anyway).
  size_t max_irrelevant_per_query = 15;
  uint64_t seed = 505;
};

/// Derives graded relevance judgments from the hidden topic/aspect ground
/// truth of corpus and queries.
ir::Qrels MakeQrels(const GeneratedCorpus& corpus,
                    const std::vector<GeneratedQuery>& queries,
                    const QrelsOptions& options);

}  // namespace mira::datagen

#endif  // MIRA_DATAGEN_QUERY_GENERATOR_H_
