#ifndef MIRA_DATAGEN_WORKLOAD_H_
#define MIRA_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "datagen/concept_bank.h"
#include "datagen/corpus_generator.h"
#include "datagen/query_generator.h"

namespace mira::datagen {

/// End-to-end workload configuration.
struct WorkloadOptions {
  ConceptBankOptions bank;
  CorpusOptions corpus;
  QuerySetOptions queries;
  QrelsOptions qrels;
};

/// WikiTables-flavored workload at a table-count scale.
WorkloadOptions WikiTablesWorkload(size_t num_tables);
/// EDP-flavored workload at a table-count scale.
WorkloadOptions EdpWorkload(size_t num_tables);

/// A complete experiment input: concept bank (with lexicon), corpus with
/// ground truth, query sets, and graded qrels.
struct Workload {
  ConceptBank bank;
  GeneratedCorpus corpus;
  std::vector<GeneratedQuery> queries;
  ir::Qrels qrels;

  static Workload Generate(const WorkloadOptions& options);

  /// Queries of one length class.
  std::vector<GeneratedQuery> QueriesOf(QueryClass cls) const;

  /// A scaled-down federation view (the paper's SD/MD/LD partitions): the
  /// subset federation plus qrels remapped to the subset's RelationIds.
  /// Judgments for dropped tables are discarded.
  struct View {
    table::Federation federation;
    ir::Qrels qrels;
    /// View RelationId -> original RelationId.
    std::vector<table::RelationId> original_ids;
    /// Topic/aspect ground truth aligned with the view's RelationIds.
    std::vector<int32_t> table_topic;
    std::vector<int32_t> table_aspect;
    std::vector<bool> table_is_stub;
  };
  View MakeView(double fraction, uint64_t seed) const;
};

}  // namespace mira::datagen

#endif  // MIRA_DATAGEN_WORKLOAD_H_
