// Runtime-dispatched SIMD kernels behind the vector_ops.h / simd.h API. This
// is the only translation unit in the tree allowed to include raw intrinsic
// headers (tools/mira_lint.py enforces it); every consumer goes through the
// dispatch tables so scalar-only hosts keep working and parity stays testable.
//
// The AVX2 bodies carry `target("avx2,fma")` attributes instead of the whole
// file being built with -mavx2: the compiler may only emit AVX2 instructions
// inside those functions, so the binary still runs on pre-AVX2 CPUs where
// dispatch selects the scalar table.

#include "vecmath/simd.h"

#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define MIRA_SIMD_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define MIRA_SIMD_NEON 1
#endif

namespace mira::vecmath {
namespace simd_internal {

namespace scalar {

// Four partial accumulators give the compiler room to vectorize without
// reassociation flags. The summation order is the contract: DotBatch and
// CosineSimilarity below reproduce it term for term, so the scalar tier is
// bit-for-bit reproducible across the single/batched/fused entry points.
float Dot(const float* a, const float* b, size_t n) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float SquaredL2(const float* a, const float* b, size_t n) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    float d2 = a[i + 2] - b[i + 2];
    float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

// Single fused pass with three accumulator sets: one read of each vector
// instead of the three passes Dot + Norm + Norm used to make. The per-term
// order matches the separate passes, so results are unchanged.
float CosineSimilarity(const float* a, const float* b, size_t n) {
  float d0 = 0.f, d1 = 0.f, d2 = 0.f, d3 = 0.f;
  float na0 = 0.f, na1 = 0.f, na2 = 0.f, na3 = 0.f;
  float nb0 = 0.f, nb1 = 0.f, nb2 = 0.f, nb3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    d2 += a[i + 2] * b[i + 2];
    d3 += a[i + 3] * b[i + 3];
    na0 += a[i] * a[i];
    na1 += a[i + 1] * a[i + 1];
    na2 += a[i + 2] * a[i + 2];
    na3 += a[i + 3] * a[i + 3];
    nb0 += b[i] * b[i];
    nb1 += b[i + 1] * b[i + 1];
    nb2 += b[i + 2] * b[i + 2];
    nb3 += b[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) {
    d0 += a[i] * b[i];
    na0 += a[i] * a[i];
    nb0 += b[i] * b[i];
  }
  float dot = (d0 + d1) + (d2 + d3);
  float na = std::sqrt((na0 + na1) + (na2 + na3));
  float nb = std::sqrt((nb0 + nb1) + (nb2 + nb3));
  if (na <= 0.f || nb <= 0.f) return 0.f;
  return dot / (na * nb);
}

void Axpy(float* a, const float* b, float scale, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += scale * b[i];
}

void DotBatch(const float* query, const float* rows, size_t num_rows,
              size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = Dot(query, rows + r * dim, dim);
  }
}

void SquaredL2Batch(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = SquaredL2(query, rows + r * dim, dim);
  }
}

// Portable reference for the 4-bit fast-scan layout (see simd.h for the
// block format). All-integer arithmetic: the SIMD tiers must reproduce these
// sums bit for bit, so this is the parity anchor and what a forced-scalar
// (offline / pinned) run executes.
void Adc4Batch(const uint8_t* lut, const uint8_t* codes, size_t num_blocks,
               size_t num_sub, uint16_t* out) {
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = codes + b * num_sub * 16;
    uint16_t acc[32] = {0};
    const uint8_t* t = lut;
    for (size_t s = 0; s < num_sub; ++s, t += 16) {
      const uint8_t* group = block + s * 16;
      for (size_t j = 0; j < 16; ++j) {
        acc[j] += t[group[j] & 0x0F];
        acc[16 + j] += t[group[j] >> 4];
      }
    }
    uint16_t* o = out + b * 32;
    for (size_t j = 0; j < 32; ++j) o[j] = acc[j];
  }
}

}  // namespace scalar

#if defined(MIRA_SIMD_X86)

namespace avx2 {

__attribute__((target("avx2,fma"))) static inline float HSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

__attribute__((target("avx2,fma"))) float Dot(const float* a, const float* b,
                                              size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float sum = HSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) float SquaredL2(const float* a,
                                                    const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float sum = HSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2,fma"))) float CosineSimilarity(const float* a,
                                                           const float* b,
                                                           size_t n) {
  __m256 dot = _mm256_setzero_ps();
  __m256 na = _mm256_setzero_ps();
  __m256 nb = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  float sd = HSum(dot);
  float sa = HSum(na);
  float sb = HSum(nb);
  for (; i < n; ++i) {
    sd += a[i] * b[i];
    sa += a[i] * a[i];
    sb += b[i] * b[i];
  }
  float norm_a = std::sqrt(sa);
  float norm_b = std::sqrt(sb);
  if (norm_a <= 0.f || norm_b <= 0.f) return 0.f;
  return sd / (norm_a * norm_b);
}

__attribute__((target("avx2,fma"))) void Axpy(float* a, const float* b,
                                              float scale, size_t n) {
  __m256 vs = _mm256_set1_ps(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    va = _mm256_fmadd_ps(vs, _mm256_loadu_ps(b + i), va);
    _mm256_storeu_ps(a + i, va);
  }
  for (; i < n; ++i) a[i] += scale * b[i];
}

// Scans eight rows per iteration with one accumulator per row: the query
// slab is loaded once per 8 lanes and reused across all eight rows (one
// query load amortized over eight FMAs), and the next row group is
// prefetched while the current one is in flight. Eight accumulators plus
// the query and a row temporary stay within the sixteen YMM registers.
__attribute__((target("avx2,fma"))) void DotBatch(const float* query,
                                                  const float* rows,
                                                  size_t num_rows, size_t dim,
                                                  float* out) {
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    const float* r4 = r3 + dim;
    const float* r5 = r4 + dim;
    const float* r6 = r5 + dim;
    const float* r7 = r6 + dim;
    if (r + 16 <= num_rows) {
      const float* next = rows + (r + 8) * dim;
      for (size_t p = 0; p < 8; ++p) {
        _mm_prefetch(reinterpret_cast<const char*>(next + p * dim),
                     _MM_HINT_T0);
      }
    }
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    __m256 a4 = _mm256_setzero_ps();
    __m256 a5 = _mm256_setzero_ps();
    __m256 a6 = _mm256_setzero_ps();
    __m256 a7 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      __m256 q = _mm256_loadu_ps(query + i);
      a0 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r0 + i), a0);
      a1 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r1 + i), a1);
      a2 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r2 + i), a2);
      a3 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r3 + i), a3);
      a4 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r4 + i), a4);
      a5 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r5 + i), a5);
      a6 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r6 + i), a6);
      a7 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r7 + i), a7);
    }
    float s0 = HSum(a0);
    float s1 = HSum(a1);
    float s2 = HSum(a2);
    float s3 = HSum(a3);
    float s4 = HSum(a4);
    float s5 = HSum(a5);
    float s6 = HSum(a6);
    float s7 = HSum(a7);
    for (; i < dim; ++i) {
      float q = query[i];
      s0 += q * r0[i];
      s1 += q * r1[i];
      s2 += q * r2[i];
      s3 += q * r3[i];
      s4 += q * r4[i];
      s5 += q * r5[i];
      s6 += q * r6[i];
      s7 += q * r7[i];
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
    out[r + 4] = s4;
    out[r + 5] = s5;
    out[r + 6] = s6;
    out[r + 7] = s7;
  }
  for (; r < num_rows; ++r) out[r] = Dot(query, rows + r * dim, dim);
}

__attribute__((target("avx2,fma"))) void SquaredL2Batch(const float* query,
                                                        const float* rows,
                                                        size_t num_rows,
                                                        size_t dim,
                                                        float* out) {
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    const float* r4 = r3 + dim;
    const float* r5 = r4 + dim;
    const float* r6 = r5 + dim;
    const float* r7 = r6 + dim;
    if (r + 16 <= num_rows) {
      const float* next = rows + (r + 8) * dim;
      for (size_t p = 0; p < 8; ++p) {
        _mm_prefetch(reinterpret_cast<const char*>(next + p * dim),
                     _MM_HINT_T0);
      }
    }
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    __m256 a4 = _mm256_setzero_ps();
    __m256 a5 = _mm256_setzero_ps();
    __m256 a6 = _mm256_setzero_ps();
    __m256 a7 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      __m256 q = _mm256_loadu_ps(query + i);
      __m256 d0 = _mm256_sub_ps(q, _mm256_loadu_ps(r0 + i));
      __m256 d1 = _mm256_sub_ps(q, _mm256_loadu_ps(r1 + i));
      __m256 d2 = _mm256_sub_ps(q, _mm256_loadu_ps(r2 + i));
      __m256 d3 = _mm256_sub_ps(q, _mm256_loadu_ps(r3 + i));
      a0 = _mm256_fmadd_ps(d0, d0, a0);
      a1 = _mm256_fmadd_ps(d1, d1, a1);
      a2 = _mm256_fmadd_ps(d2, d2, a2);
      a3 = _mm256_fmadd_ps(d3, d3, a3);
      __m256 d4 = _mm256_sub_ps(q, _mm256_loadu_ps(r4 + i));
      __m256 d5 = _mm256_sub_ps(q, _mm256_loadu_ps(r5 + i));
      __m256 d6 = _mm256_sub_ps(q, _mm256_loadu_ps(r6 + i));
      __m256 d7 = _mm256_sub_ps(q, _mm256_loadu_ps(r7 + i));
      a4 = _mm256_fmadd_ps(d4, d4, a4);
      a5 = _mm256_fmadd_ps(d5, d5, a5);
      a6 = _mm256_fmadd_ps(d6, d6, a6);
      a7 = _mm256_fmadd_ps(d7, d7, a7);
    }
    float s0 = HSum(a0);
    float s1 = HSum(a1);
    float s2 = HSum(a2);
    float s3 = HSum(a3);
    float s4 = HSum(a4);
    float s5 = HSum(a5);
    float s6 = HSum(a6);
    float s7 = HSum(a7);
    for (; i < dim; ++i) {
      float q = query[i];
      float d0 = q - r0[i];
      float d1 = q - r1[i];
      float d2 = q - r2[i];
      float d3 = q - r3[i];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
      float d4 = q - r4[i];
      float d5 = q - r5[i];
      float d6 = q - r6[i];
      float d7 = q - r7[i];
      s4 += d4 * d4;
      s5 += d5 * d5;
      s6 += d6 * d6;
      s7 += d7 * d7;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
    out[r + 4] = s4;
    out[r + 5] = s5;
    out[r + 6] = s6;
    out[r + 7] = s7;
  }
  for (; r < num_rows; ++r) out[r] = SquaredL2(query, rows + r * dim, dim);
}

// The register-resident LUT kernel of the 4-bit fast-scan: each
// sub-quantizer's 16 uint8 LUT entries are broadcast into both 128-bit lanes
// of a YMM register, the 16 packed code bytes of a 32-vector block are split
// into low/high nibbles (32 byte-indexes), and one vpshufb resolves all 32
// lookups — versus 32 serial L1 gathers in the 8-bit float path. Sums
// accumulate in uint16 lanes (two accumulators; num_sub <= 257 cannot
// overflow), and two permutes restore vector order before the store.
// Integer arithmetic throughout: results are bit-identical to the scalar
// reference.
__attribute__((target("avx2"))) void Adc4Batch(const uint8_t* lut,
                                               const uint8_t* codes,
                                               size_t num_blocks,
                                               size_t num_sub, uint16_t* out) {
  const __m128i low_mask = _mm_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();
  const size_t block_bytes = num_sub * 16;
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = codes + b * block_bytes;
    if (b + 1 < num_blocks) {
      const uint8_t* next = block + block_bytes;
      for (size_t p = 0; p < block_bytes; p += 64) {
        _mm_prefetch(reinterpret_cast<const char*>(next + p), _MM_HINT_T0);
      }
    }
    // acc_lo: vectors 0..7 (lane 0) and 16..23 (lane 1);
    // acc_hi: vectors 8..15 and 24..31 — the in-lane interleave of
    // unpack{lo,hi}_epi8, undone by the permutes at the end of the block.
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (size_t s = 0; s < num_sub; ++s) {
      __m128i packed = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(block + s * 16));
      __m128i lo = _mm_and_si128(packed, low_mask);
      __m128i hi = _mm_and_si128(_mm_srli_epi16(packed, 4), low_mask);
      // Lane 0 indexes vectors 0..15, lane 1 vectors 16..31.
      __m256i idx = _mm256_set_m128i(hi, lo);
      __m256i table = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(lut + s * 16)));
      __m256i vals = _mm256_shuffle_epi8(table, idx);
      acc_lo = _mm256_add_epi16(acc_lo, _mm256_unpacklo_epi8(vals, zero));
      acc_hi = _mm256_add_epi16(acc_hi, _mm256_unpackhi_epi8(vals, zero));
    }
    __m256i first = _mm256_permute2x128_si256(acc_lo, acc_hi, 0x20);
    __m256i second = _mm256_permute2x128_si256(acc_lo, acc_hi, 0x31);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b * 32), first);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b * 32 + 16), second);
  }
}

}  // namespace avx2

#elif defined(MIRA_SIMD_NEON)

namespace neon {

static inline float HSum(float32x4_t v) { return vaddvq_f32(v); }

float Dot(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.f);
  float32x4_t acc1 = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum = HSum(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float SquaredL2(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.f);
  float32x4_t acc1 = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc0 = vfmaq_f32(acc0, d0, d0);
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  for (; i + 4 <= n; i += 4) {
    float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d, d);
  }
  float sum = HSum(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float CosineSimilarity(const float* a, const float* b, size_t n) {
  float32x4_t dot = vdupq_n_f32(0.f);
  float32x4_t na = vdupq_n_f32(0.f);
  float32x4_t nb = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t va = vld1q_f32(a + i);
    float32x4_t vb = vld1q_f32(b + i);
    dot = vfmaq_f32(dot, va, vb);
    na = vfmaq_f32(na, va, va);
    nb = vfmaq_f32(nb, vb, vb);
  }
  float sd = HSum(dot);
  float sa = HSum(na);
  float sb = HSum(nb);
  for (; i < n; ++i) {
    sd += a[i] * b[i];
    sa += a[i] * a[i];
    sb += b[i] * b[i];
  }
  float norm_a = std::sqrt(sa);
  float norm_b = std::sqrt(sb);
  if (norm_a <= 0.f || norm_b <= 0.f) return 0.f;
  return sd / (norm_a * norm_b);
}

void Axpy(float* a, const float* b, float scale, size_t n) {
  float32x4_t vs = vdupq_n_f32(scale);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t va = vld1q_f32(a + i);
    va = vfmaq_f32(va, vs, vld1q_f32(b + i));
    vst1q_f32(a + i, va);
  }
  for (; i < n; ++i) a[i] += scale * b[i];
}

void DotBatch(const float* query, const float* rows, size_t num_rows,
              size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    if (r + 8 <= num_rows) {
      __builtin_prefetch(rows + (r + 4) * dim);
      __builtin_prefetch(rows + (r + 5) * dim);
      __builtin_prefetch(rows + (r + 6) * dim);
      __builtin_prefetch(rows + (r + 7) * dim);
    }
    float32x4_t a0 = vdupq_n_f32(0.f);
    float32x4_t a1 = vdupq_n_f32(0.f);
    float32x4_t a2 = vdupq_n_f32(0.f);
    float32x4_t a3 = vdupq_n_f32(0.f);
    size_t i = 0;
    for (; i + 4 <= dim; i += 4) {
      float32x4_t q = vld1q_f32(query + i);
      a0 = vfmaq_f32(a0, q, vld1q_f32(r0 + i));
      a1 = vfmaq_f32(a1, q, vld1q_f32(r1 + i));
      a2 = vfmaq_f32(a2, q, vld1q_f32(r2 + i));
      a3 = vfmaq_f32(a3, q, vld1q_f32(r3 + i));
    }
    float s0 = HSum(a0);
    float s1 = HSum(a1);
    float s2 = HSum(a2);
    float s3 = HSum(a3);
    for (; i < dim; ++i) {
      float q = query[i];
      s0 += q * r0[i];
      s1 += q * r1[i];
      s2 += q * r2[i];
      s3 += q * r3[i];
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < num_rows; ++r) out[r] = Dot(query, rows + r * dim, dim);
}

void SquaredL2Batch(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    if (r + 8 <= num_rows) {
      __builtin_prefetch(rows + (r + 4) * dim);
      __builtin_prefetch(rows + (r + 5) * dim);
      __builtin_prefetch(rows + (r + 6) * dim);
      __builtin_prefetch(rows + (r + 7) * dim);
    }
    float32x4_t a0 = vdupq_n_f32(0.f);
    float32x4_t a1 = vdupq_n_f32(0.f);
    float32x4_t a2 = vdupq_n_f32(0.f);
    float32x4_t a3 = vdupq_n_f32(0.f);
    size_t i = 0;
    for (; i + 4 <= dim; i += 4) {
      float32x4_t q = vld1q_f32(query + i);
      float32x4_t d0 = vsubq_f32(q, vld1q_f32(r0 + i));
      float32x4_t d1 = vsubq_f32(q, vld1q_f32(r1 + i));
      float32x4_t d2 = vsubq_f32(q, vld1q_f32(r2 + i));
      float32x4_t d3 = vsubq_f32(q, vld1q_f32(r3 + i));
      a0 = vfmaq_f32(a0, d0, d0);
      a1 = vfmaq_f32(a1, d1, d1);
      a2 = vfmaq_f32(a2, d2, d2);
      a3 = vfmaq_f32(a3, d3, d3);
    }
    float s0 = HSum(a0);
    float s1 = HSum(a1);
    float s2 = HSum(a2);
    float s3 = HSum(a3);
    for (; i < dim; ++i) {
      float q = query[i];
      float d0 = q - r0[i];
      float d1 = q - r1[i];
      float d2 = q - r2[i];
      float d3 = q - r3[i];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < num_rows; ++r) out[r] = SquaredL2(query, rows + r * dim, dim);
}

// NEON variant of the 4-bit fast-scan: vqtbl1q_u8 is the 16-way table
// shuffle (16 lookups per instruction); low/high nibbles of the packed
// block feed two shuffles, and vaddw_u8 widens into four uint16x8
// accumulators that already sit in vector order — no final permute needed.
// Integer arithmetic: bit-identical to the scalar reference.
void Adc4Batch(const uint8_t* lut, const uint8_t* codes, size_t num_blocks,
               size_t num_sub, uint16_t* out) {
  const uint8x16_t low_mask = vdupq_n_u8(0x0F);
  const size_t block_bytes = num_sub * 16;
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = codes + b * block_bytes;
    if (b + 1 < num_blocks) {
      const uint8_t* next = block + block_bytes;
      for (size_t p = 0; p < block_bytes; p += 64) {
        __builtin_prefetch(next + p);
      }
    }
    uint16x8_t acc0 = vdupq_n_u16(0);  // vectors 0..7
    uint16x8_t acc1 = vdupq_n_u16(0);  // vectors 8..15
    uint16x8_t acc2 = vdupq_n_u16(0);  // vectors 16..23
    uint16x8_t acc3 = vdupq_n_u16(0);  // vectors 24..31
    for (size_t s = 0; s < num_sub; ++s) {
      uint8x16_t packed = vld1q_u8(block + s * 16);
      uint8x16_t lo = vandq_u8(packed, low_mask);  // vectors 0..15
      uint8x16_t hi = vshrq_n_u8(packed, 4);       // vectors 16..31
      uint8x16_t table = vld1q_u8(lut + s * 16);
      uint8x16_t vals_lo = vqtbl1q_u8(table, lo);
      uint8x16_t vals_hi = vqtbl1q_u8(table, hi);
      acc0 = vaddw_u8(acc0, vget_low_u8(vals_lo));
      acc1 = vaddw_u8(acc1, vget_high_u8(vals_lo));
      acc2 = vaddw_u8(acc2, vget_low_u8(vals_hi));
      acc3 = vaddw_u8(acc3, vget_high_u8(vals_hi));
    }
    vst1q_u16(out + b * 32, acc0);
    vst1q_u16(out + b * 32 + 8, acc1);
    vst1q_u16(out + b * 32 + 16, acc2);
    vst1q_u16(out + b * 32 + 24, acc3);
  }
}

}  // namespace neon

#endif  // MIRA_SIMD_X86 / MIRA_SIMD_NEON

SimdTier ResolveTier() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- getenv races only with
  // setenv/putenv, which this process never calls.
  const char* force = std::getenv("MIRA_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') return SimdTier::kScalar;
#if defined(MIRA_SIMD_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdTier::kAvx2;
  }
#elif defined(MIRA_SIMD_NEON)
  return SimdTier::kNeon;
#endif
  return SimdTier::kScalar;
}

const KernelTable& ScalarKernels() {
  static const KernelTable kTable = {
      scalar::Dot,      scalar::SquaredL2,      scalar::CosineSimilarity,
      scalar::Axpy,     scalar::DotBatch,       scalar::SquaredL2Batch,
      scalar::Adc4Batch,
  };
  return kTable;
}

const KernelTable& KernelsForTier(SimdTier tier) {
#if defined(MIRA_SIMD_X86)
  if (tier == SimdTier::kAvx2 && ResolveTier() != SimdTier::kScalar) {
    static const KernelTable kTable = {
        avx2::Dot,  avx2::SquaredL2, avx2::CosineSimilarity,
        avx2::Axpy, avx2::DotBatch,  avx2::SquaredL2Batch,
        avx2::Adc4Batch,
    };
    return kTable;
  }
#elif defined(MIRA_SIMD_NEON)
  if (tier == SimdTier::kNeon) {
    static const KernelTable kTable = {
        neon::Dot,  neon::SquaredL2, neon::CosineSimilarity,
        neon::Axpy, neon::DotBatch,  neon::SquaredL2Batch,
        neon::Adc4Batch,
    };
    return kTable;
  }
#else
  (void)tier;
#endif
  return ScalarKernels();
}

const KernelTable& ActiveKernels() {
  static const KernelTable& kActive = KernelsForTier(ActiveSimdTier());
  return kActive;
}

}  // namespace simd_internal

SimdTier ActiveSimdTier() {
  static const SimdTier kTier = simd_internal::ResolveTier();
  return kTier;
}

std::string_view SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
  }
  return "unknown";
}

void DotBatch(const float* query, const float* rows, size_t num_rows,
              size_t dim, float* out) {
  simd_internal::ActiveKernels().dot_batch(query, rows, num_rows, dim, out);
}

void SquaredL2Batch(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out) {
  simd_internal::ActiveKernels().squared_l2_batch(query, rows, num_rows, dim,
                                                  out);
}

void Adc4Batch(const uint8_t* lut, const uint8_t* codes, size_t num_blocks,
               size_t num_sub, uint16_t* out) {
  simd_internal::ActiveKernels().adc4_batch(lut, codes, num_blocks, num_sub,
                                            out);
}

float ScalarDot(const float* a, const float* b, size_t n) {
  return simd_internal::ScalarKernels().dot(a, b, n);
}

float ScalarSquaredL2(const float* a, const float* b, size_t n) {
  return simd_internal::ScalarKernels().squared_l2(a, b, n);
}

void ScalarSquaredL2Batch(const float* query, const float* rows,
                          size_t num_rows, size_t dim, float* out) {
  simd_internal::ScalarKernels().squared_l2_batch(query, rows, num_rows, dim,
                                                  out);
}

}  // namespace mira::vecmath
