#ifndef MIRA_VECMATH_MATRIX_H_
#define MIRA_VECMATH_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "vecmath/vector_ops.h"

namespace mira::vecmath {

/// Row-major dense float matrix used as the vector storage layout of indexes
/// and reducers. Rows are fixed-width embedding vectors.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  float* Row(size_t r) {
    MIRA_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    MIRA_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& At(size_t r, size_t c) {
    MIRA_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    MIRA_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Copies a row out as a Vec.
  Vec RowVec(size_t r) const {
    const float* p = Row(r);
    return Vec(p, p + cols_);
  }

  /// Overwrites a row. `v.size()` must equal cols().
  void SetRow(size_t r, const Vec& v) {
    MIRA_DCHECK(v.size() == cols_);
    std::copy(v.begin(), v.end(), Row(r));
  }

  /// Appends a row (grows the matrix by one).
  void AppendRow(const Vec& v) {
    if (rows_ == 0 && cols_ == 0) {
      cols_ = v.size();
      if (pending_reserve_rows_ > 0) {
        data_.reserve(pending_reserve_rows_ * cols_);
        pending_reserve_rows_ = 0;
      }
    }
    MIRA_DCHECK(v.size() == cols_);
    data_.insert(data_.end(), v.begin(), v.end());
    ++rows_;
  }

  /// Pre-allocates storage for `rows` total rows so repeated AppendRow calls
  /// don't reallocate per row. If the column width isn't known yet (empty
  /// matrix), the reservation is deferred until the first AppendRow fixes it.
  void Reserve(size_t rows) {
    if (cols_ > 0) {
      data_.reserve(rows * cols_);
    } else {
      pending_reserve_rows_ = rows;
    }
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t pending_reserve_rows_ = 0;
  std::vector<float> data_;
};

}  // namespace mira::vecmath

#endif  // MIRA_VECMATH_MATRIX_H_
