#ifndef MIRA_VECMATH_SIMD_H_
#define MIRA_VECMATH_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mira::vecmath {

/// Instruction-set tier the vecmath kernels run on. Resolved once per process
/// from CPU feature detection; MIRA_FORCE_SCALAR=1 pins the scalar tier (used
/// by parity tests and to make scalar-only CI runs explicit in bench output).
enum class SimdTier {
  kScalar,
  kAvx2,  // x86-64 AVX2 + FMA
  kNeon,  // aarch64 Advanced SIMD
};

/// The tier selected at first use; stable for the process lifetime.
SimdTier ActiveSimdTier();

std::string_view SimdTierName(SimdTier tier);

/// Scores one query against `num_rows` contiguous row-major vectors:
/// out[r] = dot(query, rows + r * dim). `rows` is a dense slab such as
/// Matrix::Row(0); SIMD tiers scan a group of rows per iteration (eight on
/// AVX2, four on NEON) with one independent accumulator per row, the query
/// loaded once per lane group, and upcoming rows prefetched.
void DotBatch(const float* query, const float* rows, size_t num_rows,
              size_t dim, float* out);

/// Batched squared Euclidean distance: out[r] = |query - row_r|^2.
void SquaredL2Batch(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out);

/// 4-bit PQ fast-scan ADC (FAISS-style): sums quantized 16-entry lookup
/// tables over blocked 4-bit codes entirely in registers.
///
/// Layout contract (the "pq4 blocked" format, produced by
/// index::Pack4BitCodesBlocked):
///   - Codes are grouped in blocks of 32 vectors. `codes` holds
///     `num_blocks * num_sub * 16` bytes.
///   - Within a block, bytes are sub-quantizer-major: sub-quantizer `s`
///     owns the 16 bytes at `block + s * 16`.
///   - Byte `j` of a sub-quantizer's group packs two codes: the low nibble
///     is the code of vector `j`, the high nibble the code of vector
///     `j + 16` (vector indexes within the block).
///
/// `lut` is `num_sub * 16` uint8 entries — the per-query float distance
/// table quantized to uint8 (see ProductQuantizer::QuantizeDistanceTable).
/// One 16-entry row fits a SIMD register, so AVX2 `vpshufb` / NEON `tbl`
/// resolve 32 (resp. 16) lookups per instruction instead of one gather
/// each. `out[b * 32 + j]` is the uint16 sum of the `num_sub` lookups of
/// vector `j` of block `b`.
///
/// Arithmetic is integral, so every tier returns bit-identical sums —
/// unlike the float kernels there is no reassociation tolerance; parity
/// tests compare with EXPECT_EQ. Callers must keep
/// `num_sub * 255 <= 65535` (num_sub <= 257) to avoid uint16 overflow;
/// ProductQuantizer::Train enforces this for nbits=4.
void Adc4Batch(const uint8_t* lut, const uint8_t* codes, size_t num_blocks,
               size_t num_sub, uint16_t* out);

/// Bit-reproducible forms of the kernels above: always the portable scalar
/// reference, regardless of the active tier. The offline build pipeline
/// (PCA projection, UMAP layout, HDBSCAN, k-means, medoid selection, PQ
/// encoding) uses these so a given corpus builds to bit-identical indexes
/// on every CPU — SIMD reassociation otherwise feeds different rounding
/// into the iterative optimizers, which amplify it into machine-dependent
/// clusterings and codebooks. Query-time scans stay on the active tier.
float ScalarDot(const float* a, const float* b, size_t n);
float ScalarSquaredL2(const float* a, const float* b, size_t n);
void ScalarSquaredL2Batch(const float* query, const float* rows,
                          size_t num_rows, size_t dim, float* out);

namespace simd_internal {

/// Per-tier kernel entry points. vector_ops.cc routes the public scalar API
/// through the active table; tests compare tables against each other.
struct KernelTable {
  float (*dot)(const float* a, const float* b, size_t n);
  float (*squared_l2)(const float* a, const float* b, size_t n);
  float (*cosine_similarity)(const float* a, const float* b, size_t n);
  void (*axpy)(float* a, const float* b, float scale, size_t n);
  void (*dot_batch)(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out);
  void (*squared_l2_batch)(const float* query, const float* rows,
                           size_t num_rows, size_t dim, float* out);
  void (*adc4_batch)(const uint8_t* lut, const uint8_t* codes,
                     size_t num_blocks, size_t num_sub, uint16_t* out);
};

/// Kernels of the tier reported by ActiveSimdTier().
const KernelTable& ActiveKernels();

/// The portable reference kernels (always available; the dispatch fallback
/// and the baseline parity tests compare against).
const KernelTable& ScalarKernels();

/// Kernels for an explicit tier; returns ScalarKernels() when `tier` is not
/// available on this CPU/build.
const KernelTable& KernelsForTier(SimdTier tier);

/// Re-runs feature detection and the MIRA_FORCE_SCALAR env lookup. Testing
/// hook: ActiveSimdTier() caches its first result, this never caches.
SimdTier ResolveTier();

}  // namespace simd_internal

}  // namespace mira::vecmath

#endif  // MIRA_VECMATH_SIMD_H_
