#ifndef MIRA_VECMATH_TOP_K_H_
#define MIRA_VECMATH_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace mira::vecmath {

/// One retrieval hit: an item id with its score. Ordering helpers sort by
/// descending score with ascending id as a deterministic tie-break.
struct ScoredId {
  uint64_t id = 0;
  float score = 0.f;

  friend bool operator==(const ScoredId& a, const ScoredId& b) {
    return a.id == b.id && a.score == b.score;
  }
};

/// `a` ranks before `b` (higher score first, then lower id).
inline bool RanksBefore(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Bounded collector of the k best-scoring items (max-score semantics).
/// Push is O(log k); Take returns items best-first.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Push(uint64_t id, float score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push(ScoredId{id, score});
    } else if (RanksBefore(ScoredId{id, score}, heap_.top())) {
      heap_.pop();
      heap_.push(ScoredId{id, score});
    }
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// The currently-worst retained score; only meaningful when full().
  float WorstScore() const { return heap_.empty() ? 0.f : heap_.top().score; }
  bool full() const { return heap_.size() == k_; }

  /// Empties the collector, returning hits best-first.
  std::vector<ScoredId> Take() {
    std::vector<ScoredId> out(heap_.size());
    for (size_t i = heap_.size(); i > 0; --i) {
      out[i - 1] = heap_.top();
      heap_.pop();
    }
    return out;
  }

 private:
  struct WorstFirst {
    bool operator()(const ScoredId& a, const ScoredId& b) const {
      // priority_queue keeps the *largest* under this comparator on top; we
      // want the worst-ranked on top so it can be evicted.
      return RanksBefore(a, b);
    }
  };

  size_t k_;
  std::priority_queue<ScoredId, std::vector<ScoredId>, WorstFirst> heap_;
};

/// Sorts hits best-first in place (descending score, ascending id ties).
inline void SortByScoreDesc(std::vector<ScoredId>* hits) {
  std::sort(hits->begin(), hits->end(), RanksBefore);
}

}  // namespace mira::vecmath

#endif  // MIRA_VECMATH_TOP_K_H_
