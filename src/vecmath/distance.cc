#include "vecmath/distance.h"

namespace mira::vecmath {

std::string_view MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kCosine:
      return "cosine";
    case Metric::kDot:
      return "dot";
    case Metric::kL2:
      return "l2";
  }
  return "unknown";
}

float MetricDistance(Metric metric, const float* a, const float* b, size_t n) {
  switch (metric) {
    case Metric::kCosine:
      return 1.0f - CosineSimilarity(a, b, n);
    case Metric::kDot:
      return -Dot(a, b, n);
    case Metric::kL2:
      return SquaredL2(a, b, n);
  }
  return 0.f;
}

float MetricSimilarity(Metric metric, const float* a, const float* b, size_t n) {
  switch (metric) {
    case Metric::kCosine:
      return CosineSimilarity(a, b, n);
    case Metric::kDot:
      return Dot(a, b, n);
    case Metric::kL2:
      return -SquaredL2(a, b, n);
  }
  return 0.f;
}

float DistanceToSimilarity(Metric metric, float distance) {
  switch (metric) {
    case Metric::kCosine:
      return 1.0f - distance;
    case Metric::kDot:
      return -distance;
    case Metric::kL2:
      return -distance;
  }
  return 0.f;
}

}  // namespace mira::vecmath
