#ifndef MIRA_VECMATH_DISTANCE_H_
#define MIRA_VECMATH_DISTANCE_H_

#include <cstddef>
#include <string_view>

#include "vecmath/vector_ops.h"

namespace mira::vecmath {

/// Distance/similarity metric used by indexes and the vector database. The
/// paper uses cosine similarity throughout (§4.2) but notes dot product and
/// Euclidean distance are interchangeable; all three are supported.
enum class Metric {
  kCosine,
  kDot,
  kL2,
};

std::string_view MetricToString(Metric metric);

/// A *dissimilarity* for the given metric: lower is closer. For kCosine this
/// is (1 - cosine), for kDot it is -dot, for kL2 the squared distance.
float MetricDistance(Metric metric, const float* a, const float* b, size_t n);
inline float MetricDistance(Metric metric, const Vec& a, const Vec& b) {
  return MetricDistance(metric, a.data(), b.data(), a.size());
}

/// A *similarity* for the given metric: higher is closer. For kCosine this is
/// the cosine in [-1,1], for kDot the dot product, for kL2 the negated
/// squared distance.
float MetricSimilarity(Metric metric, const float* a, const float* b, size_t n);
inline float MetricSimilarity(Metric metric, const Vec& a, const Vec& b) {
  return MetricSimilarity(metric, a.data(), b.data(), a.size());
}

/// Converts a distance produced by MetricDistance back to the corresponding
/// similarity.
float DistanceToSimilarity(Metric metric, float distance);

}  // namespace mira::vecmath

#endif  // MIRA_VECMATH_DISTANCE_H_
