#include "vecmath/vector_ops.h"

#include <cmath>

#include "vecmath/simd.h"

namespace mira::vecmath {

// The element-wise kernels live in simd.cc behind a per-tier dispatch table
// (scalar / AVX2 / NEON, resolved once per process). This file keeps the
// public API and the cheap derived operations.

float Dot(const float* a, const float* b, size_t n) {
  return simd_internal::ActiveKernels().dot(a, b, n);
}

float SquaredL2(const float* a, const float* b, size_t n) {
  return simd_internal::ActiveKernels().squared_l2(a, b, n);
}

float Norm(const float* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

void NormalizeInPlace(float* a, size_t n) {
  float norm = Norm(a, n);
  if (norm <= 0.f) return;
  float inv = 1.0f / norm;
  for (size_t i = 0; i < n; ++i) a[i] *= inv;
}

Vec Normalized(const Vec& a) {
  Vec out = a;
  NormalizeInPlace(&out);
  return out;
}

void AddInPlace(float* a, const float* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += b[i];
}

void AxpyInPlace(float* a, const float* b, float scale, size_t n) {
  simd_internal::ActiveKernels().axpy(a, b, scale, n);
}

void ScaleInPlace(float* a, float scale, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] *= scale;
}

float CosineSimilarity(const float* a, const float* b, size_t n) {
  return simd_internal::ActiveKernels().cosine_similarity(a, b, n);
}

}  // namespace mira::vecmath
