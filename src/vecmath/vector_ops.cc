#include "vecmath/vector_ops.h"

#include <cmath>

namespace mira::vecmath {

float Dot(const float* a, const float* b, size_t n) {
  // Four partial accumulators give the compiler room to vectorize without
  // reassociation flags.
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float SquaredL2(const float* a, const float* b, size_t n) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    float d2 = a[i + 2] - b[i + 2];
    float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

float Norm(const float* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

void NormalizeInPlace(float* a, size_t n) {
  float norm = Norm(a, n);
  if (norm <= 0.f) return;
  float inv = 1.0f / norm;
  for (size_t i = 0; i < n; ++i) a[i] *= inv;
}

Vec Normalized(const Vec& a) {
  Vec out = a;
  NormalizeInPlace(&out);
  return out;
}

void AddInPlace(float* a, const float* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += b[i];
}

void AxpyInPlace(float* a, const float* b, float scale, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += scale * b[i];
}

void ScaleInPlace(float* a, float scale, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] *= scale;
}

float CosineSimilarity(const float* a, const float* b, size_t n) {
  float dot = Dot(a, b, n);
  float na = Norm(a, n);
  float nb = Norm(b, n);
  if (na <= 0.f || nb <= 0.f) return 0.f;
  return dot / (na * nb);
}

}  // namespace mira::vecmath
