#ifndef MIRA_VECMATH_VECTOR_OPS_H_
#define MIRA_VECMATH_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace mira::vecmath {

/// Dense float vector; the embedding currency of the whole library.
using Vec = std::vector<float>;

/// Dot product of two equally-sized spans.
float Dot(const float* a, const float* b, size_t n);
inline float Dot(const Vec& a, const Vec& b) {
  return Dot(a.data(), b.data(), a.size());
}

/// Squared Euclidean distance.
float SquaredL2(const float* a, const float* b, size_t n);
inline float SquaredL2(const Vec& a, const Vec& b) {
  return SquaredL2(a.data(), b.data(), a.size());
}

/// Euclidean norm.
float Norm(const float* a, size_t n);
inline float Norm(const Vec& a) { return Norm(a.data(), a.size()); }

/// In-place L2 normalization; zero vectors are left untouched.
void NormalizeInPlace(float* a, size_t n);
inline void NormalizeInPlace(Vec* a) { NormalizeInPlace(a->data(), a->size()); }

/// Returns a normalized copy.
Vec Normalized(const Vec& a);

/// a += b.
void AddInPlace(float* a, const float* b, size_t n);
inline void AddInPlace(Vec* a, const Vec& b) {
  AddInPlace(a->data(), b.data(), a->size());
}

/// a += scale * b.
void AxpyInPlace(float* a, const float* b, float scale, size_t n);
inline void AxpyInPlace(Vec* a, const Vec& b, float scale) {
  AxpyInPlace(a->data(), b.data(), scale, a->size());
}

/// a *= scale.
void ScaleInPlace(float* a, float scale, size_t n);
inline void ScaleInPlace(Vec* a, float scale) {
  ScaleInPlace(a->data(), scale, a->size());
}

/// Cosine similarity in [-1, 1]; 0 if either vector is zero.
float CosineSimilarity(const float* a, const float* b, size_t n);
inline float CosineSimilarity(const Vec& a, const Vec& b) {
  return CosineSimilarity(a.data(), b.data(), a.size());
}

}  // namespace mira::vecmath

#endif  // MIRA_VECMATH_VECTOR_OPS_H_
