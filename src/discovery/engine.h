#ifndef MIRA_DISCOVERY_ENGINE_H_
#define MIRA_DISCOVERY_ENGINE_H_

#include <memory>
#include <string>

#include "common/threadpool.h"
#include "discovery/anns_search.h"
#include "discovery/cts_search.h"
#include "discovery/exhaustive_search.h"
#include "discovery/types.h"
#include "embed/encoder.h"
#include "table/relation.h"

namespace mira::discovery {

/// Which of the paper's three methods answers a query.
enum class Method { kExhaustive, kAnns, kCts };

std::string_view MethodToString(Method method);

/// Engine-level configuration.
struct EngineOptions {
  embed::EncoderOptions encoder;
  ExsOptions exs;
  AnnsOptions anns;
  CtsOptions cts;
  /// Build the ANNS vector database (disable to save build time when only
  /// ExS/CTS are exercised).
  bool build_anns = true;
  /// Build the CTS cluster structures.
  bool build_cts = true;
  /// Threads for corpus embedding; 0 = hardware concurrency, 1 = serial.
  size_t embed_threads = 0;
};

/// One-stop facade over the full pipeline of Figure 2: encode the federation
/// once, then answer keyword queries with any of ExS / ANNS / CTS.
///
/// Typical use:
///
///     auto engine = DiscoveryEngine::Build(federation, lexicon, options);
///     auto ranking = engine->Search(Method::kCts, "covid vaccine", {});
class DiscoveryEngine {
 public:
  /// Builds every enabled search structure over `federation`. The federation
  /// is copied into the engine (it must outlive nothing).
  [[nodiscard]] static Result<std::unique_ptr<DiscoveryEngine>> Build(
      table::Federation federation,
      std::shared_ptr<const embed::Lexicon> lexicon,
      const EngineOptions& options = {});

  /// Builds from previously cached cell embeddings (CorpusEmbeddings::Save /
  /// Load), skipping the embedding pass — the dominant indexing cost. The
  /// federation must be the one the corpus was embedded from and the encoder
  /// options must match the original build (ExS re-encodes at query time and
  /// its scores would drift otherwise).
  [[nodiscard]] static Result<std::unique_ptr<DiscoveryEngine>> BuildWithCorpus(
      table::Federation federation,
      std::shared_ptr<const embed::Lexicon> lexicon, CorpusEmbeddings corpus,
      const EngineOptions& options = {});

  /// Answers a keyword query with the chosen method.
  [[nodiscard]] Result<Ranking> Search(Method method, const std::string& query,
                         const DiscoveryOptions& options) const;

  /// Access to an individual searcher (null if not built).
  const Searcher* searcher(Method method) const;

  const table::Federation& federation() const { return federation_; }
  const embed::SemanticEncoder& encoder() const { return *encoder_; }
  const CorpusEmbeddings& corpus() const { return *corpus_; }

 private:
  DiscoveryEngine() = default;

  /// Builds the three searchers once corpus embeddings exist.
  [[nodiscard]] Status FinishBuild(const EngineOptions& options);

  table::Federation federation_;
  std::shared_ptr<const embed::SemanticEncoder> encoder_;
  std::shared_ptr<const CorpusEmbeddings> corpus_;
  std::unique_ptr<ExhaustiveSearcher> exhaustive_;
  std::unique_ptr<AnnsSearcher> anns_;
  std::unique_ptr<CtsSearcher> cts_;
};

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_ENGINE_H_
