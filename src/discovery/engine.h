#ifndef MIRA_DISCOVERY_ENGINE_H_
#define MIRA_DISCOVERY_ENGINE_H_

#include <array>
#include <memory>
#include <string>

#include "common/threadpool.h"
#include "discovery/anns_search.h"
#include "discovery/cts_search.h"
#include "discovery/exhaustive_search.h"
#include "discovery/types.h"
#include "embed/encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/relation.h"

namespace mira::discovery {

/// Which of the paper's three methods answers a query.
enum class Method { kExhaustive, kAnns, kCts };

std::string_view MethodToString(Method method);

/// Structured summary of what Build() did: stage wall times, corpus shape,
/// and the size of every index the build produced. Logged once at kInfo when
/// the engine finishes building and mirrored into `mira.build.*` gauges.
struct BuildReport {
  size_t num_relations = 0;
  size_t num_cells = 0;
  size_t dim = 0;
  /// True for BuildWithCorpus (the embedding pass was skipped).
  bool reused_corpus = false;
  double embed_ms = 0.0;
  double anns_build_ms = 0.0;
  double cts_build_ms = 0.0;
  double total_ms = 0.0;
  size_t anns_index_bytes = 0;
  size_t cts_index_bytes = 0;
  size_t cts_clusters = 0;

  /// Compact one-line summary for logs.
  std::string ToString() const;
  std::string ToJson() const;
};

/// Result of SearchTraced: the ranking plus the query's span tree. The trace
/// is empty when tracing is compiled out (MIRA_OBS=OFF) or the query was not
/// sampled (obs::SetTraceSampling).
struct TracedRanking {
  Ranking ranking;
  obs::QueryTrace trace;
};

/// Engine-level configuration.
struct EngineOptions {
  embed::EncoderOptions encoder;
  ExsOptions exs;
  AnnsOptions anns;
  CtsOptions cts;
  /// Build the ANNS vector database (disable to save build time when only
  /// ExS/CTS are exercised).
  bool build_anns = true;
  /// Build the CTS cluster structures.
  bool build_cts = true;
  /// Threads for corpus embedding; 0 = hardware concurrency, 1 = serial.
  size_t embed_threads = 0;
};

/// One-stop facade over the full pipeline of Figure 2: encode the federation
/// once, then answer keyword queries with any of ExS / ANNS / CTS.
///
/// Typical use:
///
///     auto engine = DiscoveryEngine::Build(federation, lexicon, options);
///     auto ranking = engine->Search(Method::kCts, "covid vaccine", {});
///
/// Deadline behavior (DiscoveryOptions::control): searchers first
/// self-degrade (ANNS shrinks ef, CTS probes fewer clusters). If the primary
/// method still runs out of budget, the engine walks a fallback ladder —
/// CTS, then ANNS (each skipped when it is the failed primary or was not
/// built), then a partial exhaustive scan that always produces a ranking —
/// so a deadline-bounded query returns a flagged, degraded ranking instead
/// of an error whenever any method can answer at all. Cancellation is
/// different: kCancelled means the caller walked away, so it propagates
/// immediately with no fallback. See docs/ROBUSTNESS.md.
class DiscoveryEngine {
 public:
  /// Builds every enabled search structure over `federation`. The federation
  /// is copied into the engine (it must outlive nothing).
  [[nodiscard]] static Result<std::unique_ptr<DiscoveryEngine>> Build(
      table::Federation federation,
      std::shared_ptr<const embed::Lexicon> lexicon,
      const EngineOptions& options = {});

  /// Builds from previously cached cell embeddings (CorpusEmbeddings::Save /
  /// Load), skipping the embedding pass — the dominant indexing cost. The
  /// federation must be the one the corpus was embedded from and the encoder
  /// options must match the original build (ExS re-encodes at query time and
  /// its scores would drift otherwise).
  [[nodiscard]] static Result<std::unique_ptr<DiscoveryEngine>> BuildWithCorpus(
      table::Federation federation,
      std::shared_ptr<const embed::Lexicon> lexicon, CorpusEmbeddings corpus,
      const EngineOptions& options = {});

  /// Answers a keyword query with the chosen method.
  [[nodiscard]] Result<Ranking> Search(Method method, const std::string& query,
                         const DiscoveryOptions& options) const;

  /// Like Search(), but also collects the per-query span tree (wall time plus
  /// method-specific counters for every instrumented stage). Subject to the
  /// runtime sampling knob; see docs/OBSERVABILITY.md.
  [[nodiscard]] Result<TracedRanking> SearchTraced(
      Method method, const std::string& query,
      const DiscoveryOptions& options) const;

  /// Access to an individual searcher (null if not built).
  const Searcher* searcher(Method method) const;

  /// What the build did and what it cost (populated by Build /
  /// BuildWithCorpus).
  const BuildReport& build_report() const { return build_report_; }

  /// Refreshes the `mira.mem.*` (corpus / ANNS / CTS resident bytes, from
  /// the Collection and index MemoryUsage() breakdowns) and `mira.pool.*`
  /// (ExS scan-pool queue depth / utilization) gauges. Pull-style: call
  /// before a scrape, or register as an obs::StatsReporter collector. No-op
  /// when observability is compiled out.
  void PublishResourceMetrics() const;

  const table::Federation& federation() const { return federation_; }
  const embed::SemanticEncoder& encoder() const { return *encoder_; }
  const CorpusEmbeddings& corpus() const { return *corpus_; }

 private:
  DiscoveryEngine() = default;

  /// Builds the three searchers once corpus embeddings exist.
  [[nodiscard]] Status FinishBuild(const EngineOptions& options);

  /// Search + the deadline fallback ladder; shared by Search/SearchTraced.
  [[nodiscard]] Result<Ranking> SearchWithFallback(
      Method method, const std::string& query,
      const DiscoveryOptions& options) const;

  /// Bumps the per-method query counters / latency histograms.
  /// `query_log_id` (when non-zero) is pinned to the latency histogram as an
  /// exemplar, so a tail quantile on /metricsz links to the query behind it.
  void RecordQueryMetrics(Method method, double millis, bool ok,
                          uint64_t query_log_id) const;

  /// Bumps the mira.query.degraded.* counters for a returned ranking.
  void RecordDegradation(const Ranking& ranking, bool fell_back) const;

  /// Appends one entry to obs::QueryLog::Global() (and promotes the full
  /// trace when the query crossed the slow threshold). `ranking` is null for
  /// failed queries, `trace` for untraced ones. Returns the log entry's id
  /// (0 when the log is disabled at compile time).
  uint64_t RecordQueryLog(Method method, const DiscoveryOptions& options,
                          double millis, const Ranking* ranking,
                          const obs::QueryTrace* trace) const;

  /// Registry metrics cached once per engine so the per-query fast path is
  /// pure atomics. Indexed by Method's enumerator order.
  struct MethodMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency_ms = nullptr;
  };

  /// mira.query.degraded.* counters, cached like MethodMetrics.
  struct DegradedMetrics {
    obs::Counter* count = nullptr;     ///< rankings returned degraded
    obs::Counter* partial = nullptr;   ///< ... of which partial-coverage
    obs::Counter* fallback = nullptr;  ///< ... answered by a fallback method
  };

  table::Federation federation_;
  std::shared_ptr<const embed::SemanticEncoder> encoder_;
  std::shared_ptr<const CorpusEmbeddings> corpus_;
  std::unique_ptr<ExhaustiveSearcher> exhaustive_;
  std::unique_ptr<AnnsSearcher> anns_;
  std::unique_ptr<CtsSearcher> cts_;
  /// Last rung of the deadline ladder: a serial cached-corpus exhaustive
  /// scanner in allow_partial mode. Construction is cheap (it shares
  /// corpus_), and it always returns *something* — even a pre-expired
  /// budget scans one block.
  std::unique_ptr<ExhaustiveSearcher> fallback_exs_;
  BuildReport build_report_;
  std::array<MethodMetrics, 3> method_metrics_{};
  DegradedMetrics degraded_metrics_{};
};

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_ENGINE_H_
