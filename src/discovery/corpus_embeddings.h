#ifndef MIRA_DISCOVERY_CORPUS_EMBEDDINGS_H_
#define MIRA_DISCOVERY_CORPUS_EMBEDDINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/threadpool.h"
#include "embed/encoder.h"
#include "table/relation.h"
#include "vecmath/matrix.h"

namespace mira::discovery {

/// Which cell of which relation a corpus vector came from.
struct CellRef {
  table::RelationId relation = 0;
  uint32_t row = 0;
  uint32_t col = 0;
};

/// The semantic representation of a federation (§4): one embedding per
/// attribute value, computed query-independently and shared by all three
/// search methods. Vectors are L2-normalized (cosine = dot).
struct CorpusEmbeddings {
  /// One row per non-empty cell.
  vecmath::Matrix vectors;
  /// Provenance of each row.
  std::vector<CellRef> refs;
  /// Number of embedded cells per relation (indexed by RelationId).
  std::vector<uint32_t> cells_per_relation;
  size_t num_relations = 0;

  size_t num_cells() const { return refs.size(); }
  size_t dim() const { return vectors.cols(); }

  /// Embeds every attribute value of every relation. With a thread pool the
  /// work is parallelized over relations (the encoder is thread-safe).
  [[nodiscard]] static Result<CorpusEmbeddings> Build(const table::Federation& federation,
                                        const embed::SemanticEncoder& encoder,
                                        ThreadPool* pool = nullptr);

  /// Persists the embeddings to a binary file. Embedding is the dominant
  /// indexing cost, so caching it lets a federation be re-opened in seconds
  /// (the derived ANN/cluster structures are rebuilt).
  ///
  /// Crash-safe: the bytes go to `path + ".tmp"`, are fsync'd, and the tmp
  /// file is atomically renamed over `path` — a crash or failure mid-write
  /// never clobbers an existing good file (the interrupted tmp is left
  /// behind for post-mortem). The header carries checksums of itself and of
  /// the payload so Load can tell corruption from format drift.
  [[nodiscard]] Status Save(const std::string& path) const;

  /// Restores embeddings written by Save(). Distinguishes failure classes:
  /// a file that cannot be opened is kIoError (possibly transient); one
  /// that opens but is truncated, corrupted, or checksum-mismatched is
  /// kDataLoss (retrying cannot help — re-embed or restore from backup).
  [[nodiscard]] static Result<CorpusEmbeddings> Load(const std::string& path);

  /// Load() wrapped in RetryPolicy: transient errors (kIoError,
  /// kUnavailable) retry with jittered exponential backoff; kDataLoss and
  /// other typed failures return immediately. `control` (nullable) bounds
  /// the whole loop.
  [[nodiscard]] static Result<CorpusEmbeddings> LoadWithRetry(
      const std::string& path, const RetryOptions& retry = {},
      const QueryControl* control = nullptr);
};

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_CORPUS_EMBEDDINGS_H_
