#ifndef MIRA_DISCOVERY_CORPUS_EMBEDDINGS_H_
#define MIRA_DISCOVERY_CORPUS_EMBEDDINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/threadpool.h"
#include "embed/encoder.h"
#include "table/relation.h"
#include "vecmath/matrix.h"

namespace mira::discovery {

/// Which cell of which relation a corpus vector came from.
struct CellRef {
  table::RelationId relation = 0;
  uint32_t row = 0;
  uint32_t col = 0;
};

/// The semantic representation of a federation (§4): one embedding per
/// attribute value, computed query-independently and shared by all three
/// search methods. Vectors are L2-normalized (cosine = dot).
struct CorpusEmbeddings {
  /// One row per non-empty cell.
  vecmath::Matrix vectors;
  /// Provenance of each row.
  std::vector<CellRef> refs;
  /// Number of embedded cells per relation (indexed by RelationId).
  std::vector<uint32_t> cells_per_relation;
  size_t num_relations = 0;

  size_t num_cells() const { return refs.size(); }
  size_t dim() const { return vectors.cols(); }

  /// Embeds every attribute value of every relation. With a thread pool the
  /// work is parallelized over relations (the encoder is thread-safe).
  [[nodiscard]] static Result<CorpusEmbeddings> Build(const table::Federation& federation,
                                        const embed::SemanticEncoder& encoder,
                                        ThreadPool* pool = nullptr);

  /// Persists the embeddings to a binary file. Embedding is the dominant
  /// indexing cost, so caching it lets a federation be re-opened in seconds
  /// (the derived ANN/cluster structures are rebuilt).
  [[nodiscard]] Status Save(const std::string& path) const;

  /// Restores embeddings written by Save().
  [[nodiscard]] static Result<CorpusEmbeddings> Load(const std::string& path);
};

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_CORPUS_EMBEDDINGS_H_
