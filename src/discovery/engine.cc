#include "discovery/engine.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/query_log.h"

namespace mira::discovery {

std::string_view MethodToString(Method method) {
  switch (method) {
    case Method::kExhaustive:
      return "ExS";
    case Method::kAnns:
      return "ANNS";
    case Method::kCts:
      return "CTS";
  }
  return "?";
}

std::string BuildReport::ToString() const {
  return StrFormat(
      "relations=%zu cells=%zu dim=%zu embed=%.1fms%s anns=%.1fms (%.1f MiB) "
      "cts=%.1fms (%.1f MiB, %zu clusters) total=%.1fms",
      num_relations, num_cells, dim, embed_ms,
      reused_corpus ? " (cached corpus)" : "", anns_build_ms,
      static_cast<double>(anns_index_bytes) / (1024.0 * 1024.0), cts_build_ms,
      static_cast<double>(cts_index_bytes) / (1024.0 * 1024.0), cts_clusters,
      total_ms);
}

std::string BuildReport::ToJson() const {
  return StrFormat(
      "{\"num_relations\": %zu, \"num_cells\": %zu, \"dim\": %zu, "
      "\"reused_corpus\": %s, \"embed_ms\": %.3f, \"anns_build_ms\": %.3f, "
      "\"cts_build_ms\": %.3f, \"total_ms\": %.3f, \"anns_index_bytes\": %zu, "
      "\"cts_index_bytes\": %zu, \"cts_clusters\": %zu}",
      num_relations, num_cells, dim, reused_corpus ? "true" : "false",
      embed_ms, anns_build_ms, cts_build_ms, total_ms, anns_index_bytes,
      cts_index_bytes, cts_clusters);
}

namespace {

// Encoder with corpus-driven SIF weights over the federation's text.
std::shared_ptr<embed::SemanticEncoder> MakeEngineEncoder(
    const table::Federation& federation,
    std::shared_ptr<const embed::Lexicon> lexicon,
    const EngineOptions& options) {
  auto encoder = std::make_shared<embed::SemanticEncoder>(options.encoder,
                                                          std::move(lexicon));
  // Corpus unigram statistics drive the encoder's SIF pooling weights: very
  // frequent tokens contribute little to sentence embeddings.
  auto frequencies = std::make_shared<embed::TokenFrequencies>();
  for (const auto& relation : federation.relations()) {
    frequencies->AddText(relation.ConsolidatedText());
  }
  encoder->SetTokenFrequencies(std::move(frequencies));
  return encoder;
}

// Mirrors the build report into registry gauges so a metrics scrape sees the
// cost of the most recent build alongside the query-time series.
void PublishBuildMetrics(const BuildReport& report) {
  if constexpr (obs::kObsEnabled) {
    auto& registry = obs::MetricRegistry::Global();
    registry.GetGauge("mira.build.relations")
        .Set(static_cast<double>(report.num_relations));
    registry.GetGauge("mira.build.cells")
        .Set(static_cast<double>(report.num_cells));
    registry.GetGauge("mira.build.embed_ms").Set(report.embed_ms);
    registry.GetGauge("mira.build.anns_ms").Set(report.anns_build_ms);
    registry.GetGauge("mira.build.cts_ms").Set(report.cts_build_ms);
    registry.GetGauge("mira.build.total_ms").Set(report.total_ms);
    registry.GetGauge("mira.build.anns_index_bytes")
        .Set(static_cast<double>(report.anns_index_bytes));
    registry.GetGauge("mira.build.cts_index_bytes")
        .Set(static_cast<double>(report.cts_index_bytes));
    registry.GetGauge("mira.build.cts_clusters")
        .Set(static_cast<double>(report.cts_clusters));
  }
}

}  // namespace

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::Build(
    table::Federation federation, std::shared_ptr<const embed::Lexicon> lexicon,
    const EngineOptions& options) {
  if (lexicon == nullptr) {
    return Status::InvalidArgument("engine: null lexicon");
  }
  WallTimer total_timer;
  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->federation_ = std::move(federation);
  engine->encoder_ =
      MakeEngineEncoder(engine->federation_, std::move(lexicon), options);

  std::unique_ptr<ThreadPool> pool;
  if (options.embed_threads != 1) {
    pool = std::make_unique<ThreadPool>(options.embed_threads);
  }
  WallTimer embed_timer;
  MIRA_ASSIGN_OR_RETURN(
      CorpusEmbeddings corpus,
      CorpusEmbeddings::Build(engine->federation_, *engine->encoder_,
                              pool.get()));
  engine->build_report_.embed_ms = embed_timer.ElapsedMillis();
  engine->corpus_ = std::make_shared<const CorpusEmbeddings>(std::move(corpus));
  MIRA_RETURN_NOT_OK(engine->FinishBuild(options));
  engine->build_report_.total_ms = total_timer.ElapsedMillis();
  PublishBuildMetrics(engine->build_report_);
  MIRA_LOG_INFO() << "engine build: " << engine->build_report_.ToString();
  return engine;
}

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::BuildWithCorpus(
    table::Federation federation, std::shared_ptr<const embed::Lexicon> lexicon,
    CorpusEmbeddings corpus, const EngineOptions& options) {
  if (lexicon == nullptr) {
    return Status::InvalidArgument("engine: null lexicon");
  }
  if (corpus.num_relations != federation.size()) {
    return Status::InvalidArgument(
        "engine: cached corpus does not match the federation");
  }
  if (corpus.dim() != options.encoder.dim) {
    return Status::InvalidArgument(
        "engine: cached corpus dimension does not match encoder options");
  }
  WallTimer total_timer;
  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->federation_ = std::move(federation);
  engine->encoder_ =
      MakeEngineEncoder(engine->federation_, std::move(lexicon), options);
  engine->corpus_ = std::make_shared<const CorpusEmbeddings>(std::move(corpus));
  engine->build_report_.reused_corpus = true;
  MIRA_RETURN_NOT_OK(engine->FinishBuild(options));
  engine->build_report_.total_ms = total_timer.ElapsedMillis();
  PublishBuildMetrics(engine->build_report_);
  MIRA_LOG_INFO() << "engine build: " << engine->build_report_.ToString();
  return engine;
}

Status DiscoveryEngine::FinishBuild(const EngineOptions& options) {
  build_report_.num_relations = federation_.size();
  build_report_.num_cells = corpus_->num_cells();
  build_report_.dim = corpus_->dim();

  exhaustive_ = std::make_unique<ExhaustiveSearcher>(&federation_, corpus_,
                                                     encoder_, options.exs);
  ExsOptions fallback_exs;
  fallback_exs.reuse_corpus_embeddings = true;  // index-speed, shares corpus_
  fallback_exs.num_threads = 1;                 // partial mode runs serially
  fallback_exs.allow_partial = true;
  fallback_exs_ = std::make_unique<ExhaustiveSearcher>(&federation_, corpus_,
                                                       encoder_, fallback_exs);
  if (options.build_anns) {
    WallTimer timer;
    MIRA_ASSIGN_OR_RETURN(
        anns_, AnnsSearcher::Build(federation_, corpus_, encoder_,
                                   options.anns));
    build_report_.anns_build_ms = timer.ElapsedMillis();
    build_report_.anns_index_bytes = anns_->IndexMemoryBytes();
  }
  if (options.build_cts) {
    WallTimer timer;
    MIRA_ASSIGN_OR_RETURN(
        cts_, CtsSearcher::Build(federation_, corpus_, encoder_, options.cts));
    build_report_.cts_build_ms = timer.ElapsedMillis();
    build_report_.cts_index_bytes = cts_->IndexMemoryBytes();
    build_report_.cts_clusters = cts_->num_clusters();
  }

  if constexpr (obs::kObsEnabled) {
    auto& registry = obs::MetricRegistry::Global();
    for (Method method :
         {Method::kExhaustive, Method::kAnns, Method::kCts}) {
      const std::string suffix = ToLower(MethodToString(method));
      MethodMetrics& metrics = method_metrics_[static_cast<size_t>(method)];
      metrics.queries = &registry.GetCounter("mira.query.count." + suffix);
      metrics.errors = &registry.GetCounter("mira.query.errors." + suffix);
      metrics.latency_ms =
          &registry.GetHistogram("mira.query.latency_ms." + suffix);
    }
    degraded_metrics_.count =
        &registry.GetCounter("mira.query.degraded.count");
    degraded_metrics_.partial =
        &registry.GetCounter("mira.query.degraded.partial");
    degraded_metrics_.fallback =
        &registry.GetCounter("mira.query.degraded.fallback");
  }
  return Status::OK();
}

const Searcher* DiscoveryEngine::searcher(Method method) const {
  switch (method) {
    case Method::kExhaustive:
      return exhaustive_.get();
    case Method::kAnns:
      return anns_.get();
    case Method::kCts:
      return cts_.get();
  }
  return nullptr;
}

void DiscoveryEngine::RecordQueryMetrics(Method method, double millis, bool ok,
                                         uint64_t query_log_id) const {
  if constexpr (obs::kObsEnabled) {
    const MethodMetrics& metrics =
        method_metrics_[static_cast<size_t>(method)];
    if (metrics.queries == nullptr) return;
    metrics.queries->Increment();
    if (!ok) metrics.errors->Increment();
    metrics.latency_ms->RecordWithExemplar(millis, query_log_id);
  } else {
    (void)method;
    (void)millis;
    (void)ok;
    (void)query_log_id;
  }
}

void DiscoveryEngine::RecordDegradation(const Ranking& ranking,
                                        bool fell_back) const {
  if constexpr (obs::kObsEnabled) {
    if (degraded_metrics_.count == nullptr) return;
    if (ranking.degraded) degraded_metrics_.count->Increment();
    if (ranking.partial) degraded_metrics_.partial->Increment();
    if (fell_back) degraded_metrics_.fallback->Increment();
  } else {
    (void)ranking;
    (void)fell_back;
  }
}

uint64_t DiscoveryEngine::RecordQueryLog(Method method,
                                         const DiscoveryOptions& options,
                                         double millis, const Ranking* ranking,
                                         const obs::QueryTrace* trace) const {
  if constexpr (obs::kObsEnabled) {
    obs::QueryLogEntry entry;
    entry.SetMethod(MethodToString(method));
    entry.ok = ranking != nullptr;
    entry.k = static_cast<uint32_t>(options.top_k);
    entry.duration_ms = millis;
    if (ranking != nullptr) {
      entry.result_count = static_cast<uint32_t>(ranking->size());
      entry.degraded = ranking->degraded;
      entry.partial = ranking->partial;
    }
    if (!options.control.deadline.infinite()) {
      entry.budget_consumed =
          1.0 - options.control.deadline.FractionRemaining();
    }
    const bool traced = trace != nullptr && !trace->empty();
    if (traced) {
      entry.traced = true;
      entry.SetTopSpans(*trace);
    }
    obs::QueryLog& log = obs::QueryLog::Global();
    const uint64_t id = log.Record(entry);
    if (traced && log.IsSlow(millis)) {
      log.PromoteSlowTrace(id, millis, *trace);
    }
    return id;
  } else {
    (void)method;
    (void)options;
    (void)millis;
    (void)ranking;
    (void)trace;
    return 0;
  }
}

void DiscoveryEngine::PublishResourceMetrics() const {
  if constexpr (obs::kObsEnabled) {
    auto& registry = obs::MetricRegistry::Global();
    size_t total = 0;
    if (corpus_ != nullptr) {
      const size_t corpus_bytes =
          corpus_->vectors.data().size() * sizeof(float) +
          corpus_->refs.size() * sizeof(CellRef) +
          corpus_->cells_per_relation.size() * sizeof(uint32_t);
      registry.GetGauge("mira.mem.corpus_bytes")
          .Set(static_cast<double>(corpus_bytes));
      total += corpus_bytes;
    }
    const auto publish = [&registry, &total](
                             const std::string& prefix,
                             const vectordb::CollectionMemoryStats& stats) {
      registry.GetGauge(prefix + ".points_bytes")
          .Set(static_cast<double>(stats.points_bytes));
      registry.GetGauge(prefix + ".payload_index_bytes")
          .Set(static_cast<double>(stats.payload_index_bytes));
      registry.GetGauge(prefix + ".index_graph_bytes")
          .Set(static_cast<double>(stats.index.graph_bytes));
      registry.GetGauge(prefix + ".index_codes_bytes")
          .Set(static_cast<double>(stats.index.codes_bytes));
      registry.GetGauge(prefix + ".index_codebook_bytes")
          .Set(static_cast<double>(stats.index.codebook_bytes));
      registry.GetGauge(prefix + ".total_bytes")
          .Set(static_cast<double>(stats.total()));
      total += stats.total();
    };
    if (anns_ != nullptr) publish("mira.mem.anns", anns_->MemoryUsage());
    if (cts_ != nullptr) publish("mira.mem.cts", cts_->MemoryUsage());
    registry.GetGauge("mira.mem.total_bytes").Set(static_cast<double>(total));

    const ThreadPool* pool =
        exhaustive_ != nullptr ? exhaustive_->pool() : nullptr;
    if (pool != nullptr) {
      const ThreadPool::Stats stats = pool->GetStats();
      registry.GetGauge("mira.pool.exs.threads")
          .Set(static_cast<double>(stats.threads));
      registry.GetGauge("mira.pool.exs.queue_depth")
          .Set(static_cast<double>(stats.queued));
      registry.GetGauge("mira.pool.exs.running")
          .Set(static_cast<double>(stats.running));
      registry.GetGauge("mira.pool.exs.utilization")
          .Set(stats.threads == 0 ? 0.0
                                  : static_cast<double>(stats.running) /
                                        static_cast<double>(stats.threads));
    }
  }
}

Result<Ranking> DiscoveryEngine::SearchWithFallback(
    Method method, const std::string& query,
    const DiscoveryOptions& options) const {
  const Searcher* primary = this->searcher(method);
  if (primary == nullptr) {
    return Status::FailedPrecondition(
        std::string(MethodToString(method)) + " searcher was not built");
  }
  Result<Ranking> result = primary->Search(query, options);
  if (result.ok()) {
    RecordDegradation(*result, /*fell_back=*/false);
    return result;
  }
  // Only a deadline miss under an active control degrades; everything else
  // — including kCancelled, where the caller has walked away and any further
  // work is wasted — propagates as-is.
  if (!options.control.active() || !result.status().IsDeadlineExceeded()) {
    return result;
  }

  // Fallback ladder, cheapest first. Each rung still runs under the expired
  // budget, so it answers only if it can finish between two of its own
  // amortized checks (plausible for the pruned methods on modest corpora).
  constexpr Method kLadder[] = {Method::kCts, Method::kAnns};
  for (Method fb_method : kLadder) {
    if (fb_method == method) continue;
    const Searcher* fb = this->searcher(fb_method);
    if (fb == nullptr) continue;
    Result<Ranking> fb_result = fb->Search(query, options);
    if (fb_result.ok()) {
      fb_result->degraded = true;
      RecordDegradation(*fb_result, /*fell_back=*/true);
      return fb_result;
    }
    // Another deadline miss descends the ladder; anything else stops it.
    if (!fb_result.status().IsDeadlineExceeded()) return fb_result;
  }

  // Last resort: the partial exhaustive scan. Scans at least one block
  // regardless of budget, so it returns a (partial) ranking rather than an
  // error — the "always answer" floor of the ladder.
  Result<Ranking> partial = fallback_exs_->Search(query, options);
  if (!partial.ok()) return partial;
  partial->degraded = true;
  RecordDegradation(*partial, /*fell_back=*/true);
  return partial;
}

Result<Ranking> DiscoveryEngine::Search(Method method, const std::string& query,
                                        const DiscoveryOptions& options) const {
  WallTimer timer;
  Result<Ranking> result = SearchWithFallback(method, query, options);
  const double millis = timer.ElapsedMillis();
  // Log first: the entry id becomes the latency exemplar, so /metricsz tail
  // buckets point back at the query that filled them.
  const uint64_t id = RecordQueryLog(method, options, millis,
                                     result.ok() ? &*result : nullptr,
                                     /*trace=*/nullptr);
  RecordQueryMetrics(method, millis, result.ok(), id);
  return result;
}

Result<TracedRanking> DiscoveryEngine::SearchTraced(
    Method method, const std::string& query,
    const DiscoveryOptions& options) const {
  TracedRanking out;
  WallTimer timer;
  {
    obs::ScopedTrace collect(&out.trace);
    obs::TraceSpan root("query");
    root.SetLabel(MethodToString(method));
    Result<Ranking> result = SearchWithFallback(method, query, options);
    if (!result.ok()) {
      const double millis = timer.ElapsedMillis();
      const uint64_t id =
          RecordQueryLog(method, options, millis, nullptr, /*trace=*/nullptr);
      RecordQueryMetrics(method, millis, false, id);
      return result.status();
    }
    out.ranking = result.MoveValue();
    root.AddCounter("results", static_cast<int64_t>(out.ranking.size()));
    root.AddCounter("degraded", out.ranking.degraded ? 1 : 0);
  }
  // The ScopedTrace is closed: the trace is complete (including any worker
  // spans merged at ParallelFor joins), so the log entry can summarize it.
  const double millis = timer.ElapsedMillis();
  const uint64_t id =
      RecordQueryLog(method, options, millis, &out.ranking, &out.trace);
  RecordQueryMetrics(method, millis, true, id);
  return out;
}

}  // namespace mira::discovery
