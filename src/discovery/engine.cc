#include "discovery/engine.h"

namespace mira::discovery {

std::string_view MethodToString(Method method) {
  switch (method) {
    case Method::kExhaustive:
      return "ExS";
    case Method::kAnns:
      return "ANNS";
    case Method::kCts:
      return "CTS";
  }
  return "?";
}

namespace {

// Encoder with corpus-driven SIF weights over the federation's text.
std::shared_ptr<embed::SemanticEncoder> MakeEngineEncoder(
    const table::Federation& federation,
    std::shared_ptr<const embed::Lexicon> lexicon,
    const EngineOptions& options) {
  auto encoder = std::make_shared<embed::SemanticEncoder>(options.encoder,
                                                          std::move(lexicon));
  // Corpus unigram statistics drive the encoder's SIF pooling weights: very
  // frequent tokens contribute little to sentence embeddings.
  auto frequencies = std::make_shared<embed::TokenFrequencies>();
  for (const auto& relation : federation.relations()) {
    frequencies->AddText(relation.ConsolidatedText());
  }
  encoder->SetTokenFrequencies(std::move(frequencies));
  return encoder;
}

}  // namespace

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::Build(
    table::Federation federation, std::shared_ptr<const embed::Lexicon> lexicon,
    const EngineOptions& options) {
  if (lexicon == nullptr) {
    return Status::InvalidArgument("engine: null lexicon");
  }
  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->federation_ = std::move(federation);
  engine->encoder_ =
      MakeEngineEncoder(engine->federation_, std::move(lexicon), options);

  std::unique_ptr<ThreadPool> pool;
  if (options.embed_threads != 1) {
    pool = std::make_unique<ThreadPool>(options.embed_threads);
  }
  MIRA_ASSIGN_OR_RETURN(
      CorpusEmbeddings corpus,
      CorpusEmbeddings::Build(engine->federation_, *engine->encoder_,
                              pool.get()));
  engine->corpus_ = std::make_shared<const CorpusEmbeddings>(std::move(corpus));
  MIRA_RETURN_NOT_OK(engine->FinishBuild(options));
  return engine;
}

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::BuildWithCorpus(
    table::Federation federation, std::shared_ptr<const embed::Lexicon> lexicon,
    CorpusEmbeddings corpus, const EngineOptions& options) {
  if (lexicon == nullptr) {
    return Status::InvalidArgument("engine: null lexicon");
  }
  if (corpus.num_relations != federation.size()) {
    return Status::InvalidArgument(
        "engine: cached corpus does not match the federation");
  }
  if (corpus.dim() != options.encoder.dim) {
    return Status::InvalidArgument(
        "engine: cached corpus dimension does not match encoder options");
  }
  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->federation_ = std::move(federation);
  engine->encoder_ =
      MakeEngineEncoder(engine->federation_, std::move(lexicon), options);
  engine->corpus_ = std::make_shared<const CorpusEmbeddings>(std::move(corpus));
  MIRA_RETURN_NOT_OK(engine->FinishBuild(options));
  return engine;
}

Status DiscoveryEngine::FinishBuild(const EngineOptions& options) {
  exhaustive_ = std::make_unique<ExhaustiveSearcher>(&federation_, corpus_,
                                                     encoder_, options.exs);
  if (options.build_anns) {
    MIRA_ASSIGN_OR_RETURN(
        anns_, AnnsSearcher::Build(federation_, corpus_, encoder_,
                                   options.anns));
  }
  if (options.build_cts) {
    MIRA_ASSIGN_OR_RETURN(
        cts_, CtsSearcher::Build(federation_, corpus_, encoder_, options.cts));
  }
  return Status::OK();
}

const Searcher* DiscoveryEngine::searcher(Method method) const {
  switch (method) {
    case Method::kExhaustive:
      return exhaustive_.get();
    case Method::kAnns:
      return anns_.get();
    case Method::kCts:
      return cts_.get();
  }
  return nullptr;
}

Result<Ranking> DiscoveryEngine::Search(Method method, const std::string& query,
                                        const DiscoveryOptions& options) const {
  const Searcher* searcher = this->searcher(method);
  if (searcher == nullptr) {
    return Status::FailedPrecondition(
        std::string(MethodToString(method)) + " searcher was not built");
  }
  return searcher->Search(query, options);
}

}  // namespace mira::discovery
