#ifndef MIRA_DISCOVERY_EXHAUSTIVE_SEARCH_H_
#define MIRA_DISCOVERY_EXHAUSTIVE_SEARCH_H_

#include <memory>
#include <string>

#include "common/threadpool.h"
#include "discovery/corpus_embeddings.h"
#include "discovery/types.h"
#include "embed/encoder.h"

namespace mira::discovery {

struct ExsOptions {
  /// Algorithm 1 as published embeds every attribute value *inside the query
  /// loop* ("Embed v using a sentence transformer and obtain w") — the paper
  /// explicitly notes that storing the vectors in the vector database is the
  /// fundamental difference of ANNS (§4.2). The faithful default therefore
  /// re-encodes cells per query, which is what makes ExS orders of magnitude
  /// slower than ANNS/CTS in the paper's Figure 3. Set true to reuse the
  /// pre-built corpus embeddings instead (the "ExS-cached" ablation;
  /// identical scores, index-assisted speed).
  bool reuse_corpus_embeddings = false;
  /// Worker threads for the per-query scan (1 = serial, the paper's setup;
  /// >1 partitions relations across a thread pool — an engineering extension
  /// that preserves scores exactly).
  size_t num_threads = 1;
  /// How an active DiscoveryOptions::control firing mid-scan is handled.
  /// false (default): the scan aborts and Search returns
  /// kDeadlineExceeded/kCancelled. true: the scan stops where it is —
  /// after at least one block/relation, so even a pre-expired deadline
  /// yields hits — and Search returns the relations scanned so far with
  /// `partial` and `degraded` set, averaging each relation over its
  /// *scanned* cells only. The engine's last-resort fallback uses this
  /// mode; see docs/ROBUSTNESS.md.
  bool allow_partial = false;
};

/// Exhaustive Search — Algorithm 1 (§4.1).
///
/// The query embedding is compared against *every* cell embedding of every
/// relation; a relation's score is the average cosine similarity over all its
/// cells (avg_s). Thorough, query-time O(total cells), and — as the paper's
/// §5.3 case study shows — prone to diluting a relation's relevance with its
/// unrelated attributes.
class ExhaustiveSearcher final : public Searcher {
 public:
  /// Shares ownership of pre-built corpus embeddings. `federation` must
  /// outlive the searcher unless reuse_corpus_embeddings is true.
  ExhaustiveSearcher(const table::Federation* federation,
                     std::shared_ptr<const CorpusEmbeddings> corpus,
                     std::shared_ptr<const embed::SemanticEncoder> encoder,
                     ExsOptions options = {});

  [[nodiscard]] Result<Ranking> Search(const std::string& query,
                         const DiscoveryOptions& options) const override;
  std::string name() const override { return "ExS"; }

  /// The scan pool (null when num_threads <= 1). Resource-accounting gauges
  /// read its queue stats.
  const ThreadPool* pool() const { return pool_.get(); }

 private:
  const table::Federation* federation_;
  std::shared_ptr<const CorpusEmbeddings> corpus_;
  std::shared_ptr<const embed::SemanticEncoder> encoder_;
  ExsOptions options_;
  /// Present only when options_.num_threads > 1.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_EXHAUSTIVE_SEARCH_H_
