#ifndef MIRA_DISCOVERY_CTS_SEARCH_H_
#define MIRA_DISCOVERY_CTS_SEARCH_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/hdbscan.h"
#include "dimred/umap.h"
#include "discovery/corpus_embeddings.h"
#include "discovery/types.h"
#include "embed/encoder.h"
#include "vectordb/vector_db.h"

namespace mira::discovery {

/// Build/search knobs of the CTS method.
struct CtsOptions {
  /// UMAP configuration for the dimensionality-reduction step.
  dimred::UmapOptions umap;
  /// HDBSCAN configuration for the clustering step.
  cluster::HdbscanOptions hdbscan;
  /// Number of most-similar cluster medoids the query is matched against.
  size_t cluster_candidates = 20;
  /// Cell-level candidates retrieved inside the selected clusters.
  size_t cell_candidates = 768;
  /// Clustering cost ceiling: when the corpus has more cells, HDBSCAN runs
  /// on a deterministic sample of this size and the remaining cells are
  /// assigned to the cluster of their nearest medoid (in reduced space).
  size_t max_clustering_points = 20000;
  uint64_t seed = 7;

  CtsOptions() {
    umap.target_dim = 5;
    umap.n_neighbors = 15;
    umap.n_epochs = 150;
    hdbscan.min_cluster_size = 8;
  }
};

/// Clustered Targeted Search — Algorithm 3 (§4.3), the paper's central
/// contribution.
///
/// Build: cell embeddings -> UMAP reduction -> HDBSCAN clustering -> medoid
/// per cluster (HDBSCAN has no native centers, so medoids are computed
/// manually); cells and medoids live in vector-database collections, with
/// each cell tagged by its cluster and the medoids acting as the cluster
/// index. Search: the query is compared against the medoids, then an ANN
/// search runs *inside the top clusters only*, and relations are ranked by
/// the average similarity of their retrieved cells.
class CtsSearcher final : public Searcher {
 public:
  [[nodiscard]] static Result<std::unique_ptr<CtsSearcher>> Build(
      const table::Federation& federation,
      std::shared_ptr<const CorpusEmbeddings> corpus,
      std::shared_ptr<const embed::SemanticEncoder> encoder,
      const CtsOptions& options = {});

  [[nodiscard]] Result<Ranking> Search(const std::string& query,
                         const DiscoveryOptions& options) const override;
  std::string name() const override { return "CTS"; }

  size_t num_clusters() const { return num_clusters_; }
  /// Fraction of cells assigned to the largest cluster (diagnostic).
  double largest_cluster_fraction() const { return largest_cluster_fraction_; }
  size_t IndexMemoryBytes() const;
  /// Resident-byte breakdown summed over every cluster/medoid collection —
  /// feeds the `mira.mem.cts.*` gauges.
  vectordb::CollectionMemoryStats MemoryUsage() const;
  const CtsOptions& options() const { return options_; }

 private:
  explicit CtsSearcher(CtsOptions options);

  CtsOptions options_;
  std::shared_ptr<const embed::SemanticEncoder> encoder_;
  vectordb::VectorDb db_;
  size_t num_clusters_ = 0;
  double largest_cluster_fraction_ = 0.0;
};

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_CTS_SEARCH_H_
