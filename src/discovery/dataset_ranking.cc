#include "discovery/dataset_ranking.h"

#include <algorithm>
#include <unordered_map>

namespace mira::discovery {

DatasetRanking AggregateByDataset(const Ranking& ranking,
                                  const table::Federation& federation,
                                  const DiscoveryOptions& options,
                                  DatasetAggregation aggregation) {
  DatasetRanking hits;
  std::unordered_map<table::DatasetId, size_t> slot_of;

  for (const DiscoveryHit& hit : ranking) {
    table::DatasetId dataset = federation.DatasetOf(hit.relation);
    if (dataset == table::kNoDataset) {
      DatasetHit singleton;
      singleton.singleton_relation = hit.relation;
      singleton.score = hit.score;
      singleton.members.push_back(hit);
      hits.push_back(std::move(singleton));
      continue;
    }
    auto it = slot_of.find(dataset);
    if (it == slot_of.end()) {
      it = slot_of.emplace(dataset, hits.size()).first;
      DatasetHit fresh;
      fresh.dataset = dataset;
      hits.push_back(std::move(fresh));
    }
    hits[it->second].members.push_back(hit);
  }

  for (DatasetHit& hit : hits) {
    if (hit.is_singleton()) continue;
    double total = 0.0;
    float best = hit.members.front().score;
    for (const DiscoveryHit& member : hit.members) {
      total += member.score;
      best = std::max(best, member.score);
    }
    switch (aggregation) {
      case DatasetAggregation::kMax:
        hit.score = best;
        break;
      case DatasetAggregation::kMean:
        hit.score =
            static_cast<float>(total / static_cast<double>(hit.members.size()));
        break;
      case DatasetAggregation::kSum:
        hit.score = static_cast<float>(total);
        break;
    }
    std::sort(hit.members.begin(), hit.members.end(),
              [](const DiscoveryHit& a, const DiscoveryHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.relation < b.relation;
              });
  }

  std::sort(hits.begin(), hits.end(), [](const DatasetHit& a,
                                         const DatasetHit& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.dataset != b.dataset) return a.dataset < b.dataset;
    return a.singleton_relation < b.singleton_relation;
  });

  size_t keep = 0;
  for (const DatasetHit& hit : hits) {
    if (hit.score < options.threshold || keep >= options.top_k) break;
    ++keep;
  }
  hits.resize(keep);
  return hits;
}

}  // namespace mira::discovery
