#include "discovery/types.h"

namespace mira::discovery {

void ApplyThresholdAndTopK(Ranking* ranking, const DiscoveryOptions& options) {
  size_t keep = 0;
  for (const DiscoveryHit& hit : *ranking) {
    if (hit.score < options.threshold || keep >= options.top_k) break;
    ++keep;
  }
  ranking->resize(keep);
}

}  // namespace mira::discovery
