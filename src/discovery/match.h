#ifndef MIRA_DISCOVERY_MATCH_H_
#define MIRA_DISCOVERY_MATCH_H_

#include <string>

#include "embed/encoder.h"
#include "table/relation.h"

namespace mira::discovery {

/// The paper's match function (§3): match(R, Q) -> score — the average
/// cosine similarity between the query embedding and the embeddings of the
/// relation's attribute values. A relation is "related" iff
/// match(R, Q) >= h. This is the one-relation primitive that all three
/// search algorithms optimize the computation of; use it directly for spot
/// checks or tiny federations.
float MatchScore(const table::Relation& relation, const std::string& query,
                 const embed::SemanticEncoder& encoder);

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_MATCH_H_
