#include "discovery/cts_search.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/rng.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "vecmath/simd.h"
#include "vecmath/vector_ops.h"

namespace mira::discovery {

namespace {

constexpr char kMedoidCollection[] = "cts_medoids";

std::string ClusterCollectionName(size_t cluster) {
  return StrFormat("cluster_%zu", cluster);
}

// Nearest medoid (in the reduced space) of a reduced point. `dist` is a
// caller-owned scratch buffer (resized to the medoid count) so the per-cell
// assignment loop doesn't allocate per call.
size_t NearestMedoid(const vecmath::Matrix& medoid_reduced, const float* point,
                     size_t dim, std::vector<float>* dist) {
  const size_t rows = medoid_reduced.rows();
  dist->resize(rows);
  // Scalar-reference kernels: cluster assignment is part of the build and
  // must be bit-reproducible across SIMD tiers (see vecmath/simd.h).
  vecmath::ScalarSquaredL2Batch(point, medoid_reduced.Row(0), rows, dim,
                                dist->data());
  size_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (size_t m = 0; m < rows; ++m) {
    if ((*dist)[m] < best_d) {
      best_d = (*dist)[m];
      best = m;
    }
  }
  return best;
}

}  // namespace

CtsSearcher::CtsSearcher(CtsOptions options) : options_(options) {}

Result<std::unique_ptr<CtsSearcher>> CtsSearcher::Build(
    const table::Federation& federation,
    std::shared_ptr<const CorpusEmbeddings> corpus,
    std::shared_ptr<const embed::SemanticEncoder> encoder,
    const CtsOptions& options) {
  if (corpus == nullptr || encoder == nullptr) {
    return Status::InvalidArgument("cts: null corpus/encoder");
  }
  const size_t n = corpus->num_cells();
  std::unique_ptr<CtsSearcher> searcher(new CtsSearcher(options));
  searcher->encoder_ = encoder;

  // ---- Table vectorization + dimensionality reduction (Algorithm 3) ----
  // Corpora too small for a meaningful manifold collapse to one cluster.
  const size_t min_for_clustering =
      std::max<size_t>(32, options.hdbscan.min_cluster_size * 4);

  std::vector<int32_t> cell_cluster(n, 0);
  vecmath::Matrix medoid_full;  // one full-dim medoid vector per cluster
  size_t num_clusters = 1;

  if (n >= min_for_clustering) {
    MIRA_ASSIGN_OR_RETURN(dimred::UmapModel umap,
                          dimred::FitUmap(corpus->vectors, options.umap));
    const vecmath::Matrix& reduced = umap.embedding;
    const size_t rd = reduced.cols();

    // HDBSCAN on (a sample of) the reduced vectors.
    std::vector<size_t> sample_rows;
    if (n > options.max_clustering_points) {
      Rng rng(options.seed ^ 0xC7u);
      sample_rows =
          rng.SampleWithoutReplacement(n, options.max_clustering_points);
      std::sort(sample_rows.begin(), sample_rows.end());
    } else {
      sample_rows.resize(n);
      for (size_t i = 0; i < n; ++i) sample_rows[i] = i;
    }
    vecmath::Matrix sample(sample_rows.size(), rd);
    for (size_t i = 0; i < sample_rows.size(); ++i) {
      std::copy(reduced.Row(sample_rows[i]), reduced.Row(sample_rows[i]) + rd,
                sample.Row(i));
    }
    MIRA_ASSIGN_OR_RETURN(cluster::HdbscanResult clustering,
                          cluster::Hdbscan(sample, options.hdbscan));

    if (clustering.num_clusters() >= 2) {
      num_clusters = clustering.num_clusters();
      // Medoids are computed manually (HDBSCAN provides no centers, §4.3) in
      // the reduced space; keep both representations.
      std::vector<size_t> medoid_sample_rows =
          cluster::ComputeMedoids(sample, clustering);
      vecmath::Matrix medoid_reduced(num_clusters, rd);
      medoid_full = vecmath::Matrix(num_clusters, corpus->dim());
      for (size_t m = 0; m < num_clusters; ++m) {
        size_t corpus_row = sample_rows[medoid_sample_rows[m]];
        medoid_reduced.SetRow(m, reduced.RowVec(corpus_row));
        medoid_full.SetRow(m, corpus->vectors.RowVec(corpus_row));
      }

      // Cluster of each cell: HDBSCAN label for sampled+clustered cells,
      // nearest medoid (reduced space) for noise and out-of-sample cells.
      std::vector<int32_t> sample_label_of_row(n, cluster::kNoise);
      for (size_t i = 0; i < sample_rows.size(); ++i) {
        sample_label_of_row[sample_rows[i]] = clustering.labels[i];
      }
      std::vector<float> medoid_dist;
      for (size_t i = 0; i < n; ++i) {
        int32_t label = sample_label_of_row[i];
        cell_cluster[i] =
            label != cluster::kNoise
                ? label
                : static_cast<int32_t>(NearestMedoid(
                      medoid_reduced, reduced.Row(i), rd, &medoid_dist));
      }
    }
  }

  if (num_clusters == 1) {
    // Degenerate case: one cluster holding everything; its medoid is the
    // cell closest to the corpus centroid.
    vecmath::Vec centroid(corpus->dim(), 0.f);
    for (size_t i = 0; i < n; ++i) {
      vecmath::AddInPlace(centroid.data(), corpus->vectors.Row(i), corpus->dim());
    }
    vecmath::ScaleInPlace(&centroid, 1.0f / static_cast<float>(n));
    std::vector<float> dist(n);
    vecmath::ScalarSquaredL2Batch(centroid.data(), corpus->vectors.Row(0), n,
                                  corpus->dim(), dist.data());
    size_t best = 0;
    float best_d = std::numeric_limits<float>::max();
    for (size_t i = 0; i < n; ++i) {
      if (dist[i] < best_d) {
        best_d = dist[i];
        best = i;
      }
    }
    medoid_full = vecmath::Matrix(1, corpus->dim());
    medoid_full.SetRow(0, corpus->vectors.RowVec(best));
  }
  searcher->num_clusters_ = num_clusters;

  // ---- Store clusters in the vector database (§4.3: each cluster is a
  // collection; the medoids act as the retrieval index) ----
  std::vector<size_t> cluster_sizes(num_clusters, 0);
  for (size_t i = 0; i < n; ++i) {
    ++cluster_sizes[static_cast<size_t>(cell_cluster[i])];
  }
  searcher->largest_cluster_fraction_ =
      static_cast<double>(*std::max_element(cluster_sizes.begin(),
                                            cluster_sizes.end())) /
      static_cast<double>(n);

  for (size_t c = 0; c < num_clusters; ++c) {
    vectordb::CollectionParams params;
    params.dim = corpus->dim();
    params.metric = vecmath::Metric::kCosine;
    // Clusters are small by design; graph indexes only pay off past a few
    // thousand points.
    params.index_kind = cluster_sizes[c] >= 2048 ? vectordb::IndexKind::kHnsw
                                                 : vectordb::IndexKind::kFlat;
    params.seed = options.seed + c;
    MIRA_ASSIGN_OR_RETURN(auto* collection,
                          searcher->db_.CreateCollection(
                              ClusterCollectionName(c), params));
    (void)collection;
  }
  for (size_t i = 0; i < n; ++i) {
    const CellRef& ref = corpus->refs[i];
    vectordb::Point point;
    point.id = static_cast<uint64_t>(i);
    point.vector = corpus->vectors.RowVec(i);
    point.payload.SetInt("rel", static_cast<int64_t>(ref.relation));
    point.payload.SetString(
        "attr", federation.relation(ref.relation).schema[ref.col]);
    MIRA_ASSIGN_OR_RETURN(
        auto* collection,
        searcher->db_.GetCollection(
            ClusterCollectionName(static_cast<size_t>(cell_cluster[i]))));
    MIRA_RETURN_NOT_OK(collection->Upsert(std::move(point)));
  }
  for (size_t c = 0; c < num_clusters; ++c) {
    MIRA_ASSIGN_OR_RETURN(auto* collection,
                          searcher->db_.GetCollection(ClusterCollectionName(c)));
    MIRA_RETURN_NOT_OK(collection->BuildIndex());
  }

  vectordb::CollectionParams medoid_params;
  medoid_params.dim = corpus->dim();
  medoid_params.metric = vecmath::Metric::kCosine;
  medoid_params.index_kind = vectordb::IndexKind::kFlat;
  MIRA_ASSIGN_OR_RETURN(
      auto* medoids, searcher->db_.CreateCollection(kMedoidCollection,
                                                    medoid_params));
  for (size_t c = 0; c < num_clusters; ++c) {
    vectordb::Point point;
    point.id = static_cast<uint64_t>(c);
    point.vector = medoid_full.RowVec(c);
    point.payload.SetInt("cluster", static_cast<int64_t>(c));
    MIRA_RETURN_NOT_OK(medoids->Upsert(std::move(point)));
  }
  MIRA_RETURN_NOT_OK(medoids->BuildIndex());

  return searcher;
}

Result<Ranking> CtsSearcher::Search(const std::string& query,
                                    const DiscoveryOptions& options) const {
  vecmath::Vec q;
  {
    obs::TraceSpan span("embed_query");
    q = encoder_->EncodeText(query);
    vecmath::NormalizeInPlace(&q);
  }

  const QueryControl& control = options.control;
  const QueryControl* control_ptr = control.active() ? &control : nullptr;

  // Match the query against the cluster medoids and keep the top clusters.
  obs::TraceSpan medoid_span("cts.medoid_match");
  MIRA_ASSIGN_OR_RETURN(const vectordb::Collection* medoids,
                        db_.GetCollection(kMedoidCollection));
  MIRA_ASSIGN_OR_RETURN(
      auto medoid_hits,
      medoids->Search(q, options_.cluster_candidates, 0, {}, control_ptr));
  medoid_span.AddCounter("clusters_total", static_cast<int64_t>(num_clusters_));
  medoid_span.AddCounter("clusters_selected",
                         static_cast<int64_t>(medoid_hits.size()));
  medoid_span.AddCounter(
      "clusters_pruned",
      static_cast<int64_t>(num_clusters_ - medoid_hits.size()));
  medoid_span.Finish();

  // Targeted ANN search inside the selected clusters only.
  obs::TraceSpan cluster_span("cts.cluster_search");
  size_t per_cluster =
      std::max<size_t>(16, options_.cell_candidates /
                               std::max<size_t>(1, medoid_hits.size()));
  size_t cell_hits = 0;
  size_t clusters_searched = 0;
  bool degraded = false;
  std::unordered_map<table::RelationId, std::pair<double, uint32_t>> grouped;
  for (const auto& medoid_hit : medoid_hits) {
    // Degradation point: once at least one cluster has been probed, a spent
    // budget shrinks the probe set instead of failing the query. Scores stay
    // real (per-cluster searches are exact within their cluster); only
    // cluster coverage shrinks, so the ranking is flagged degraded+partial.
    if (clusters_searched > 0 && control.ShouldStop()) {
      degraded = true;
      break;
    }
    auto cluster_id = medoid_hit.payload->GetInt("cluster");
    if (!cluster_id.has_value()) continue;
    MIRA_ASSIGN_OR_RETURN(
        const vectordb::Collection* cells,
        db_.GetCollection(
            ClusterCollectionName(static_cast<size_t>(*cluster_id))));
    auto hits_result = cells->Search(q, per_cluster, 0, {}, control_ptr);
    if (!hits_result.ok()) {
      // A deadline firing mid-probe degrades to the clusters already
      // covered; cancellation and real errors always propagate.
      if (hits_result.status().IsDeadlineExceeded() && !grouped.empty()) {
        degraded = true;
        break;
      }
      return hits_result.status();
    }
    const auto& hits = *hits_result;
    ++clusters_searched;
    cell_hits += hits.size();
    for (const auto& hit : hits) {
      auto rel = hit.payload->GetInt("rel");
      if (!rel.has_value()) continue;
      auto& [sum, count] = grouped[static_cast<table::RelationId>(*rel)];
      sum += hit.score;
      ++count;
    }
  }
  cluster_span.AddCounter("clusters_searched",
                          static_cast<int64_t>(clusters_searched));
  cluster_span.AddCounter("per_cluster_k", static_cast<int64_t>(per_cluster));
  cluster_span.AddCounter("cell_hits", static_cast<int64_t>(cell_hits));
  cluster_span.AddCounter("relations", static_cast<int64_t>(grouped.size()));
  cluster_span.Finish();

  Ranking ranking;
  ranking.reserve(grouped.size());
  for (const auto& [rid, sum_count] : grouped) {
    ranking.push_back(
        {rid, static_cast<float>(sum_count.first / sum_count.second)});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const DiscoveryHit& a, const DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  ApplyThresholdAndTopK(&ranking, options);
  ranking.degraded = degraded;
  ranking.partial = degraded;  // skipped clusters = candidates never seen
  return ranking;
}

size_t CtsSearcher::IndexMemoryBytes() const {
  size_t total = 0;
  for (const auto& name : db_.ListCollections()) {
    auto collection = db_.GetCollection(name);
    if (collection.ok()) total += (*collection)->IndexMemoryBytes();
  }
  return total;
}

vectordb::CollectionMemoryStats CtsSearcher::MemoryUsage() const {
  vectordb::CollectionMemoryStats total;
  for (const auto& name : db_.ListCollections()) {
    auto collection = db_.GetCollection(name);
    if (!collection.ok()) continue;
    const vectordb::CollectionMemoryStats stats = (*collection)->MemoryUsage();
    total.points_bytes += stats.points_bytes;
    total.payload_index_bytes += stats.payload_index_bytes;
    total.index.vectors_bytes += stats.index.vectors_bytes;
    total.index.ids_bytes += stats.index.ids_bytes;
    total.index.graph_bytes += stats.index.graph_bytes;
    total.index.codes_bytes += stats.index.codes_bytes;
  }
  return total;
}

}  // namespace mira::discovery
