#ifndef MIRA_DISCOVERY_DATASET_RANKING_H_
#define MIRA_DISCOVERY_DATASET_RANKING_H_

#include <vector>

#include "discovery/types.h"
#include "table/relation.h"

namespace mira::discovery {

/// How relation-level scores combine into a multi-relation dataset score.
enum class DatasetAggregation {
  /// The dataset is as related as its best relation (the natural reading of
  /// the paper's match function for multi-relation datasets).
  kMax,
  /// Mean over the dataset's *retrieved* relations.
  kMean,
  /// Sum over retrieved relations (rewards datasets with broad coverage).
  kSum,
};

/// One discovered dataset.
struct DatasetHit {
  table::DatasetId dataset = table::kNoDataset;
  /// kNoDataset hits wrap a singleton relation (stored here).
  table::RelationId singleton_relation = 0;
  float score = 0.f;
  /// Retrieved member relations contributing to the score, best first.
  std::vector<DiscoveryHit> members;

  bool is_singleton() const { return dataset == table::kNoDataset; }
};

using DatasetRanking = std::vector<DatasetHit>;

/// Lifts a relation-level ranking to dataset level (§3's multi-relation
/// generalization): relations assigned to the same dataset merge into one
/// hit; unassigned relations stay as singleton hits. The result is sorted
/// best-first and truncated/thresholded with `options`.
DatasetRanking AggregateByDataset(const Ranking& ranking,
                                  const table::Federation& federation,
                                  const DiscoveryOptions& options,
                                  DatasetAggregation aggregation =
                                      DatasetAggregation::kMax);

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_DATASET_RANKING_H_
