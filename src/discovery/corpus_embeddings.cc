#include "discovery/corpus_embeddings.h"

#include <atomic>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "vecmath/vector_ops.h"

namespace mira::discovery {

Result<CorpusEmbeddings> CorpusEmbeddings::Build(
    const table::Federation& federation, const embed::SemanticEncoder& encoder,
    ThreadPool* pool) {
  if (federation.empty()) {
    return Status::InvalidArgument("corpus embeddings: empty federation");
  }

  CorpusEmbeddings corpus;
  corpus.num_relations = federation.size();
  corpus.cells_per_relation.assign(federation.size(), 0);

  // Pre-compute the cell list so rows can be written independently.
  struct PendingCell {
    CellRef ref;
    const std::string* text;
  };
  std::vector<PendingCell> pending;
  for (table::RelationId rid = 0; rid < federation.size(); ++rid) {
    const table::Relation& relation = federation.relation(rid);
    for (uint32_t r = 0; r < relation.num_rows(); ++r) {
      for (uint32_t c = 0; c < relation.num_columns(); ++c) {
        const std::string& cell = relation.rows[r][c];
        if (cell.empty()) continue;
        pending.push_back({CellRef{rid, r, c}, &cell});
        ++corpus.cells_per_relation[rid];
      }
    }
  }
  if (pending.empty()) {
    return Status::InvalidArgument("corpus embeddings: no non-empty cells");
  }

  corpus.vectors = vecmath::Matrix(pending.size(), encoder.dim());
  corpus.refs.resize(pending.size());

  auto embed_one = [&](size_t i) {
    vecmath::Vec v = encoder.EncodeText(*pending[i].text);
    vecmath::NormalizeInPlace(&v);
    corpus.vectors.SetRow(i, v);
    corpus.refs[i] = pending[i].ref;
  };

  if (pool != nullptr) {
    ParallelFor(pool, 0, pending.size(), embed_one);
  } else {
    for (size_t i = 0; i < pending.size(); ++i) embed_one(i);
  }
  return corpus;
}

namespace {
constexpr char kCorpusMagic[8] = {'M', 'I', 'R', 'A', 'C', 'O', 'R', '1'};
}  // namespace

Status CorpusEmbeddings::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  out.write(kCorpusMagic, sizeof(kCorpusMagic));
  uint64_t header[3] = {num_relations, vectors.rows(), vectors.cols()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(vectors.data().data()),
            static_cast<std::streamsize>(vectors.data().size() * sizeof(float)));
  out.write(reinterpret_cast<const char*>(refs.data()),
            static_cast<std::streamsize>(refs.size() * sizeof(CellRef)));
  out.write(reinterpret_cast<const char*>(cells_per_relation.data()),
            static_cast<std::streamsize>(cells_per_relation.size() *
                                         sizeof(uint32_t)));
  if (!out.good()) return Status::IoError("corpus embeddings write failed");
  return Status::OK();
}

Result<CorpusEmbeddings> CorpusEmbeddings::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kCorpusMagic, sizeof(kCorpusMagic)) != 0) {
    return Status::IoError("bad corpus embeddings magic");
  }
  uint64_t header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in.good()) return Status::IoError("truncated corpus embeddings");

  CorpusEmbeddings corpus;
  corpus.num_relations = header[0];
  corpus.vectors = vecmath::Matrix(header[1], header[2]);
  in.read(reinterpret_cast<char*>(corpus.vectors.data().data()),
          static_cast<std::streamsize>(corpus.vectors.data().size() *
                                       sizeof(float)));
  corpus.refs.resize(header[1]);
  in.read(reinterpret_cast<char*>(corpus.refs.data()),
          static_cast<std::streamsize>(corpus.refs.size() * sizeof(CellRef)));
  corpus.cells_per_relation.resize(corpus.num_relations);
  in.read(reinterpret_cast<char*>(corpus.cells_per_relation.data()),
          static_cast<std::streamsize>(corpus.cells_per_relation.size() *
                                       sizeof(uint32_t)));
  if (!in.good()) return Status::IoError("truncated corpus embeddings");
  return corpus;
}

}  // namespace mira::discovery
