#include "discovery/corpus_embeddings.h"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/checksum.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "vecmath/vector_ops.h"

namespace mira::discovery {

Result<CorpusEmbeddings> CorpusEmbeddings::Build(
    const table::Federation& federation, const embed::SemanticEncoder& encoder,
    ThreadPool* pool) {
  if (federation.empty()) {
    return Status::InvalidArgument("corpus embeddings: empty federation");
  }

  CorpusEmbeddings corpus;
  corpus.num_relations = federation.size();
  corpus.cells_per_relation.assign(federation.size(), 0);

  // Pre-compute the cell list so rows can be written independently.
  struct PendingCell {
    CellRef ref;
    const std::string* text;
  };
  std::vector<PendingCell> pending;
  for (table::RelationId rid = 0; rid < federation.size(); ++rid) {
    const table::Relation& relation = federation.relation(rid);
    for (uint32_t r = 0; r < relation.num_rows(); ++r) {
      for (uint32_t c = 0; c < relation.num_columns(); ++c) {
        const std::string& cell = relation.rows[r][c];
        if (cell.empty()) continue;
        pending.push_back({CellRef{rid, r, c}, &cell});
        ++corpus.cells_per_relation[rid];
      }
    }
  }
  if (pending.empty()) {
    return Status::InvalidArgument("corpus embeddings: no non-empty cells");
  }

  corpus.vectors = vecmath::Matrix(pending.size(), encoder.dim());
  corpus.refs.resize(pending.size());

  // Cancellable loop (runs inline when pool is null) so an injected encode
  // failure aborts the build with a typed Status instead of finishing with a
  // silently wrong row — first non-OK wins, remaining cells are skipped.
  auto embed_one = [&](size_t i) -> Status {
    MIRA_FAILPOINT("embed.encode");
    vecmath::Vec v = encoder.EncodeText(*pending[i].text);
    vecmath::NormalizeInPlace(&v);
    corpus.vectors.SetRow(i, v);
    corpus.refs[i] = pending[i].ref;
    return Status::OK();
  };
  MIRA_RETURN_NOT_OK(
      ParallelForCancellable(pool, 0, pending.size(), nullptr, embed_one));
  return corpus;
}

namespace {

// Format v2 ("MIRACOR2"): magic, then five little-endian uint64 header
// words {num_relations, rows, cols, payload_checksum, header_checksum},
// then the payload (vectors, refs, cells_per_relation). header_checksum
// covers the magic + the first four words; payload_checksum covers every
// payload byte in file order. v1 files (no checksums) are not readable —
// Load reports them as kDataLoss with the version in the message.
constexpr char kCorpusMagic[8] = {'M', 'I', 'R', 'A', 'C', 'O', 'R', '2'};
constexpr size_t kHeaderWords = 5;

}  // namespace

Status CorpusEmbeddings::Save(const std::string& path) const {
  MIRA_FAILPOINT("corpus.save");

  const size_t vectors_bytes = vectors.data().size() * sizeof(float);
  const size_t refs_bytes = refs.size() * sizeof(CellRef);
  const size_t counts_bytes = cells_per_relation.size() * sizeof(uint32_t);

  uint64_t header[kHeaderWords] = {num_relations, vectors.rows(),
                                   vectors.cols(), 0, 0};
  Checksum64 payload_sum;
  payload_sum.Update(vectors.data().data(), vectors_bytes);
  payload_sum.Update(refs.data(), refs_bytes);
  payload_sum.Update(cells_per_relation.data(), counts_bytes);
  header[3] = payload_sum.Digest();
  Checksum64 header_sum;
  header_sum.Update(kCorpusMagic, sizeof(kCorpusMagic));
  header_sum.Update(header, 4 * sizeof(uint64_t));
  header[4] = header_sum.Digest();

  // Write to a sibling tmp file, fsync, then atomically rename into place:
  // a crash (or injected fault) at any point leaves either the old good
  // file or no file at `path` — never a torn one. The interrupted tmp is
  // deliberately left behind for post-mortem inspection.
  const std::string tmp_path = path + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IoError(
        StrFormat("corpus save: cannot open '%s'", tmp_path.c_str()));
  }

  // Byte budget the partial-write failpoint can lower to simulate a writer
  // dying mid-stream (ENOSPC, power cut); unlimited when disarmed.
  size_t write_budget = SIZE_MAX;
  MIRA_FAILPOINT_PARTIAL("corpus.save.partial", write_budget);
  auto write_chunk = [&](const void* data, size_t len) {
    const size_t take = len < write_budget ? len : write_budget;
    const size_t written = std::fwrite(data, 1, take, out);
    write_budget -= written;
    return written == len;
  };

  bool ok = write_chunk(kCorpusMagic, sizeof(kCorpusMagic)) &&
            write_chunk(header, sizeof(header)) &&
            write_chunk(vectors.data().data(), vectors_bytes) &&
            write_chunk(refs.data(), refs_bytes) &&
            write_chunk(cells_per_relation.data(), counts_bytes);
  // fsync before close: rename-over is only atomic-durable if the tmp's
  // bytes reached the device first.
  if (ok) ok = std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
  const bool closed = std::fclose(out) == 0;
  if (!ok || !closed) {
    return Status::IoError(StrFormat(
        "corpus save: short write to '%s' (target untouched)",
        tmp_path.c_str()));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError(StrFormat("corpus save: rename to '%s' failed",
                                     path.c_str()));
  }
  return Status::OK();
}

Result<CorpusEmbeddings> CorpusEmbeddings::Load(const std::string& path) {
  MIRA_FAILPOINT("corpus.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(
        StrFormat("corpus load: cannot open '%s'", path.c_str()));
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kCorpusMagic, sizeof(kCorpusMagic)) != 0) {
    return Status::DataLoss(StrFormat(
        "corpus load: '%s' is not a MIRACOR2 file (corrupt, truncated, or "
        "pre-checksum format)",
        path.c_str()));
  }
  uint64_t header[kHeaderWords];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in.gcount() != sizeof(header)) {
    return Status::DataLoss(
        StrFormat("corpus load: '%s' truncated in header", path.c_str()));
  }
  Checksum64 header_sum;
  header_sum.Update(kCorpusMagic, sizeof(kCorpusMagic));
  header_sum.Update(header, 4 * sizeof(uint64_t));
  if (header_sum.Digest() != header[4]) {
    return Status::DataLoss(
        StrFormat("corpus load: '%s' header checksum mismatch", path.c_str()));
  }

  CorpusEmbeddings corpus;
  corpus.num_relations = header[0];
  corpus.vectors = vecmath::Matrix(header[1], header[2]);
  corpus.refs.resize(header[1]);
  corpus.cells_per_relation.resize(corpus.num_relations);

  const size_t vectors_bytes = corpus.vectors.data().size() * sizeof(float);
  const size_t refs_bytes = corpus.refs.size() * sizeof(CellRef);
  const size_t counts_bytes =
      corpus.cells_per_relation.size() * sizeof(uint32_t);
  auto read_chunk = [&](void* data, size_t len) {
    in.read(reinterpret_cast<char*>(data),
            static_cast<std::streamsize>(len));
    return static_cast<size_t>(in.gcount()) == len;
  };
  if (!read_chunk(corpus.vectors.data().data(), vectors_bytes) ||
      !read_chunk(corpus.refs.data(), refs_bytes) ||
      !read_chunk(corpus.cells_per_relation.data(), counts_bytes)) {
    return Status::DataLoss(
        StrFormat("corpus load: '%s' truncated in payload", path.c_str()));
  }
  Checksum64 payload_sum;
  payload_sum.Update(corpus.vectors.data().data(), vectors_bytes);
  payload_sum.Update(corpus.refs.data(), refs_bytes);
  payload_sum.Update(corpus.cells_per_relation.data(), counts_bytes);
  if (payload_sum.Digest() != header[3]) {
    return Status::DataLoss(StrFormat(
        "corpus load: '%s' payload checksum mismatch (flipped or torn bytes)",
        path.c_str()));
  }
  return corpus;
}

Result<CorpusEmbeddings> CorpusEmbeddings::LoadWithRetry(
    const std::string& path, const RetryOptions& retry,
    const QueryControl* control) {
  RetryPolicy policy(retry);
  return policy.RunResult<CorpusEmbeddings>(
      [&path]() { return Load(path); }, control);
}

}  // namespace mira::discovery
