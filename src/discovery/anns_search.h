#ifndef MIRA_DISCOVERY_ANNS_SEARCH_H_
#define MIRA_DISCOVERY_ANNS_SEARCH_H_

#include <memory>
#include <string>

#include "discovery/corpus_embeddings.h"
#include "discovery/types.h"
#include "embed/encoder.h"
#include "vectordb/vector_db.h"

namespace mira::discovery {

/// Build/search knobs of the ANNS method.
struct AnnsOptions {
  /// Cell-level nearest neighbors retrieved per query before grouping by
  /// relation. Larger finds more candidate relations but costs time.
  size_t cell_candidates = 288;
  /// HNSW beam width at query time. Deliberately moderate: ANNS trades a
  /// little accuracy for speed (§4.2); CTS searches its selected clusters
  /// exactly and recovers that accuracy.
  size_t ef_search = 96;
  /// HNSW graph degree / construction beam.
  size_t hnsw_m = 16;
  size_t hnsw_ef_construction = 200;
  /// PQ subquantizers (auto-adjusted to divide the dimension).
  size_t pq_subquantizers = 16;
  /// PQ code width in bits: 8 (default) or 4 (fast-scan codebooks, half the
  /// code storage at somewhat coarser quantization).
  size_t pq_nbits = 8;
  /// Disable PQ compression (ablation knob; the paper's method uses PQ).
  bool use_pq = true;
  uint64_t seed = 7;
};

/// Approximate Nearest Neighbors Search — Algorithm 2 (§4.2).
///
/// Build: every cell embedding is stored in a vector-database collection with
/// its metadata (relation id, attribute name), Product-Quantization
/// compressed and HNSW indexed. Search: embed the query, fetch the
/// approximate nearest cells, rank relations by the average similarity of
/// their retrieved cells.
class AnnsSearcher final : public Searcher {
 public:
  /// Builds the vector database from pre-computed corpus embeddings.
  [[nodiscard]] static Result<std::unique_ptr<AnnsSearcher>> Build(
      const table::Federation& federation,
      std::shared_ptr<const CorpusEmbeddings> corpus,
      std::shared_ptr<const embed::SemanticEncoder> encoder,
      const AnnsOptions& options = {});

  [[nodiscard]] Result<Ranking> Search(const std::string& query,
                         const DiscoveryOptions& options) const override;
  std::string name() const override { return "ANNS"; }

  /// Resident bytes of the vector index (storage-reduction reporting).
  size_t IndexMemoryBytes() const;

  /// Full resident-byte breakdown of the cell collection (points, payload
  /// index, vector index) — feeds the `mira.mem.anns.*` gauges.
  vectordb::CollectionMemoryStats MemoryUsage() const;
  const AnnsOptions& options() const { return options_; }

 private:
  AnnsSearcher(AnnsOptions options, size_t num_relations);

  AnnsOptions options_;
  size_t num_relations_;
  std::shared_ptr<const embed::SemanticEncoder> encoder_;
  vectordb::VectorDb db_;
};

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_ANNS_SEARCH_H_
