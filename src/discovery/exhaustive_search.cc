#include "discovery/exhaustive_search.h"

#include <algorithm>

#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vecmath/simd.h"
#include "vecmath/vector_ops.h"

namespace mira::discovery {

ExhaustiveSearcher::ExhaustiveSearcher(
    const table::Federation* federation,
    std::shared_ptr<const CorpusEmbeddings> corpus,
    std::shared_ptr<const embed::SemanticEncoder> encoder, ExsOptions options)
    : federation_(federation),
      corpus_(std::move(corpus)),
      encoder_(std::move(encoder)),
      options_(options) {
  MIRA_CHECK(corpus_ != nullptr && encoder_ != nullptr);
  MIRA_CHECK(options_.reuse_corpus_embeddings || federation_ != nullptr);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Result<Ranking> ExhaustiveSearcher::Search(const std::string& query,
                                           const DiscoveryOptions& options) const {
  // Embed Q -> q' (Algorithm 1, line 1).
  vecmath::Vec q;
  {
    obs::TraceSpan span("embed_query");
    q = encoder_->EncodeText(query);
    vecmath::NormalizeInPlace(&q);
  }

  const QueryControl& control = options.control;
  const size_t d = corpus_->dim();
  std::vector<double> score_sum(corpus_->num_relations, 0.0);
  // Per-relation scanned-cell counts, tracked only on the partial path so
  // truncated relations average over what was actually seen.
  std::vector<uint32_t> cells_seen;
  const bool track_partial = control.active() && options_.allow_partial;
  bool partial = false;
  size_t cells_scanned = corpus_->num_cells();

  // Aggregate scan counters live on this call-site span (every cell is
  // visited exactly once either way); the pool paths additionally record
  // per-chunk worker spans — ParallelFor propagates the trace context and
  // splices them in under this span at the join.
  obs::TraceSpan scan_span("exs.scan");

  if (options_.reuse_corpus_embeddings) {
    // "ExS-cached" ablation: score against the pre-built corpus matrix with
    // the batched dot kernel, one block of rows at a time (q and the rows
    // are unit-normalized, so the dot *is* the cosine — no norms needed).
    // Above kParallelThreshold cells the blocks are partitioned across the
    // pool; each worker folds into a local per-relation sum merged once
    // under a mutex, so scores stay independent of the partitioning.
    const size_t n = corpus_->num_cells();
    constexpr size_t kBlock = 1024;
    constexpr size_t kParallelThreshold = 8192;
    const size_t num_blocks = (n + kBlock - 1) / kBlock;
    auto scan_block = [&](std::vector<double>& sums, size_t block) {
      const size_t start = block * kBlock;
      const size_t count = std::min(kBlock, n - start);
      float scores[kBlock];
      vecmath::DotBatch(q.data(), corpus_->vectors.Row(start), count, d,
                        scores);
      for (size_t j = 0; j < count; ++j) {
        sums[corpus_->refs[start + j].relation] += scores[j];
      }
    };
    if (track_partial) {
      // Partial mode runs serially so "everything before the cut" is well
      // defined: block 0 always runs (a pre-expired budget still yields
      // hits), later blocks only while budget remains.
      cells_seen.assign(corpus_->num_relations, 0);
      size_t scanned = 0;
      for (size_t block = 0; block < num_blocks; ++block) {
        if (block > 0 && control.ShouldStop()) break;
        const size_t start = block * kBlock;
        const size_t count = std::min(kBlock, n - start);
        scan_block(score_sum, block);
        for (size_t j = 0; j < count; ++j) {
          ++cells_seen[corpus_->refs[start + j].relation];
        }
        scanned += count;
      }
      partial = scanned < n;
      cells_scanned = scanned;
    } else if (control.active()) {
      if (pool_ != nullptr && n >= kParallelThreshold) {
        Mutex merge_mu;
        MIRA_RETURN_NOT_OK(ParallelForCancellable(
            pool_.get(), 0, num_blocks, &control, [&](size_t block) {
              obs::TraceSpan span("exs.scan_block");
              span.AddCounter(
                  "cells",
                  static_cast<int64_t>(std::min(kBlock, n - block * kBlock)));
              std::vector<double> local(score_sum.size(), 0.0);
              scan_block(local, block);
              MutexLock lock(merge_mu);
              for (size_t rid = 0; rid < local.size(); ++rid) {
                score_sum[rid] += local[rid];
              }
              return Status::OK();
            }));
      } else {
        for (size_t block = 0; block < num_blocks; ++block) {
          MIRA_RETURN_NOT_OK(control.Check("exs.scan"));
          scan_block(score_sum, block);
        }
      }
    } else if (pool_ != nullptr && n >= kParallelThreshold) {
      Mutex merge_mu;
      ParallelFor(pool_.get(), 0, num_blocks, [&](size_t block) {
        obs::TraceSpan span("exs.scan_block");
        span.AddCounter(
            "cells",
            static_cast<int64_t>(std::min(kBlock, n - block * kBlock)));
        std::vector<double> local(score_sum.size(), 0.0);
        scan_block(local, block);
        MutexLock lock(merge_mu);
        for (size_t rid = 0; rid < local.size(); ++rid) {
          score_sum[rid] += local[rid];
        }
      });
    } else {
      for (size_t block = 0; block < num_blocks; ++block) {
        scan_block(score_sum, block);
      }
    }
  } else {
    // Faithful Algorithm 1: every attribute value is embedded inside the
    // query loop (lines 3-8) before its similarity is computed. With a pool
    // the relations are partitioned across workers (scores are per-relation
    // sums, so partitioning by relation needs no synchronization).
    auto scan_relation = [&](size_t rid) {
      const table::Relation& relation =
          federation_->relation(static_cast<table::RelationId>(rid));
      double sum = 0.0;
      for (const auto& row : relation.rows) {
        for (const auto& cell : row) {
          if (cell.empty()) continue;
          vecmath::Vec w = encoder_->EncodeText(cell);
          vecmath::NormalizeInPlace(&w);
          sum += vecmath::Dot(q.data(), w.data(), d);
        }
      }
      score_sum[rid] = sum;
    };
    // Pool paths wrap each relation in a worker span (serial paths stay
    // covered by the call-site exs.scan span alone, keeping serial traces
    // from growing one span per relation).
    auto scan_relation_traced = [&](size_t rid) {
      obs::TraceSpan span("exs.scan_relation");
      span.AddCounter("cells",
                      static_cast<int64_t>(corpus_->cells_per_relation[rid]));
      scan_relation(rid);
    };
    if (track_partial) {
      // Serial with a per-relation budget check; relation 0 always runs.
      cells_seen.assign(corpus_->num_relations, 0);
      size_t scanned = 0;
      for (size_t rid = 0; rid < federation_->size(); ++rid) {
        if (rid > 0 && control.ShouldStop()) {
          partial = true;
          break;
        }
        scan_relation(rid);
        cells_seen[rid] = corpus_->cells_per_relation[rid];
        scanned += cells_seen[rid];
      }
      cells_scanned = scanned;
    } else if (control.active()) {
      if (pool_ != nullptr) {
        MIRA_RETURN_NOT_OK(ParallelForCancellable(
            pool_.get(), 0, federation_->size(), &control, [&](size_t rid) {
              scan_relation_traced(rid);
              return Status::OK();
            }));
      } else {
        for (size_t rid = 0; rid < federation_->size(); ++rid) {
          MIRA_RETURN_NOT_OK(control.Check("exs.scan"));
          scan_relation(rid);
        }
      }
    } else if (pool_ != nullptr) {
      ParallelFor(pool_.get(), 0, federation_->size(), scan_relation_traced);
    } else {
      for (size_t rid = 0; rid < federation_->size(); ++rid) {
        scan_relation(rid);
      }
    }
  }

  scan_span.AddCounter("cells_scanned", static_cast<int64_t>(cells_scanned));
  scan_span.AddCounter("dist_comps", static_cast<int64_t>(cells_scanned));
  scan_span.AddCounter("reused_embeddings",
                       options_.reuse_corpus_embeddings ? 1 : 0);
  scan_span.Finish();
  if constexpr (obs::kObsEnabled) {
    static obs::Counter& cells_metric =
        obs::MetricRegistry::Global().GetCounter("mira.exs.cells_scanned");
    cells_metric.Add(cells_scanned);
  }

  // avg_s per relation, then sort / threshold / top-k (lines 10-13). On the
  // partial path the denominator is the scanned-cell count, so relations the
  // cut truncated still score as the average of what was seen.
  Ranking ranking;
  ranking.reserve(corpus_->num_relations);
  for (table::RelationId rid = 0; rid < corpus_->num_relations; ++rid) {
    uint32_t cells = track_partial ? cells_seen[rid]
                                   : corpus_->cells_per_relation[rid];
    if (cells == 0) continue;
    ranking.push_back(
        {rid, static_cast<float>(score_sum[rid] / static_cast<double>(cells))});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const DiscoveryHit& a, const DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  ApplyThresholdAndTopK(&ranking, options);
  ranking.partial = partial;
  ranking.degraded = partial;
  return ranking;
}

}  // namespace mira::discovery
