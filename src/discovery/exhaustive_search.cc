#include "discovery/exhaustive_search.h"

#include <algorithm>

#include "vecmath/vector_ops.h"

namespace mira::discovery {

ExhaustiveSearcher::ExhaustiveSearcher(
    const table::Federation* federation,
    std::shared_ptr<const CorpusEmbeddings> corpus,
    std::shared_ptr<const embed::SemanticEncoder> encoder, ExsOptions options)
    : federation_(federation),
      corpus_(std::move(corpus)),
      encoder_(std::move(encoder)),
      options_(options) {
  MIRA_CHECK(corpus_ != nullptr && encoder_ != nullptr);
  MIRA_CHECK(options_.reuse_corpus_embeddings || federation_ != nullptr);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Result<Ranking> ExhaustiveSearcher::Search(const std::string& query,
                                           const DiscoveryOptions& options) const {
  // Embed Q -> q' (Algorithm 1, line 1).
  vecmath::Vec q = encoder_->EncodeText(query);
  vecmath::NormalizeInPlace(&q);

  const size_t d = corpus_->dim();
  std::vector<double> score_sum(corpus_->num_relations, 0.0);

  if (options_.reuse_corpus_embeddings) {
    // "ExS-cached" ablation: score against the pre-built corpus matrix.
    const size_t n = corpus_->num_cells();
    for (size_t i = 0; i < n; ++i) {
      float s = vecmath::Dot(q.data(), corpus_->vectors.Row(i), d);
      score_sum[corpus_->refs[i].relation] += s;
    }
  } else {
    // Faithful Algorithm 1: every attribute value is embedded inside the
    // query loop (lines 3-8) before its similarity is computed. With a pool
    // the relations are partitioned across workers (scores are per-relation
    // sums, so partitioning by relation needs no synchronization).
    auto scan_relation = [&](size_t rid) {
      const table::Relation& relation =
          federation_->relation(static_cast<table::RelationId>(rid));
      double sum = 0.0;
      for (const auto& row : relation.rows) {
        for (const auto& cell : row) {
          if (cell.empty()) continue;
          vecmath::Vec w = encoder_->EncodeText(cell);
          vecmath::NormalizeInPlace(&w);
          sum += vecmath::Dot(q.data(), w.data(), d);
        }
      }
      score_sum[rid] = sum;
    };
    if (pool_ != nullptr) {
      ParallelFor(pool_.get(), 0, federation_->size(), scan_relation);
    } else {
      for (size_t rid = 0; rid < federation_->size(); ++rid) {
        scan_relation(rid);
      }
    }
  }

  // avg_s per relation, then sort / threshold / top-k (lines 10-13).
  Ranking ranking;
  ranking.reserve(corpus_->num_relations);
  for (table::RelationId rid = 0; rid < corpus_->num_relations; ++rid) {
    uint32_t cells = corpus_->cells_per_relation[rid];
    if (cells == 0) continue;
    ranking.push_back(
        {rid, static_cast<float>(score_sum[rid] / static_cast<double>(cells))});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const DiscoveryHit& a, const DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  ApplyThresholdAndTopK(&ranking, options);
  return ranking;
}

}  // namespace mira::discovery
