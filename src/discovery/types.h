#ifndef MIRA_DISCOVERY_TYPES_H_
#define MIRA_DISCOVERY_TYPES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/relation.h"

namespace mira::discovery {

/// Per-query knobs shared by all search methods: the paper's top-k and
/// relatedness threshold h (§3: related iff match(F, q) >= h).
struct DiscoveryOptions {
  size_t top_k = 20;
  /// Minimum relation score; relations below are filtered out. The paper's
  /// cosine scores live in [-1, 1]; 0 disables filtering in practice.
  float threshold = -1.0f;
};

/// One discovered dataset with its match score.
struct DiscoveryHit {
  table::RelationId relation = 0;
  float score = 0.f;
};

/// Ranked list of related datasets, best first.
using Ranking = std::vector<DiscoveryHit>;

/// Common interface of the three semantic search methods (and of the
/// baseline rankers, which adapt to it for the evaluation harness).
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Returns the top-k relations related to the keyword query.
  [[nodiscard]] virtual Result<Ranking> Search(const std::string& query,
                                 const DiscoveryOptions& options) const = 0;

  /// Short method tag ("ExS", "ANNS", "CTS", ...).
  virtual std::string name() const = 0;
};

/// Truncates a ranking to entries with score >= threshold and at most k
/// entries (assumes it is already sorted best-first).
void ApplyThresholdAndTopK(Ranking* ranking, const DiscoveryOptions& options);

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_TYPES_H_
