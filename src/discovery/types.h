#ifndef MIRA_DISCOVERY_TYPES_H_
#define MIRA_DISCOVERY_TYPES_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "table/relation.h"

namespace mira::discovery {

/// Per-query knobs shared by all search methods: the paper's top-k and
/// relatedness threshold h (§3: related iff match(F, q) >= h).
struct DiscoveryOptions {
  size_t top_k = 20;
  /// Minimum relation score; relations below are filtered out. The paper's
  /// cosine scores live in [-1, 1]; 0 disables filtering in practice.
  float threshold = -1.0f;
  /// Deadline + cancellation budget for the query. Default-constructed =
  /// unbounded, which keeps the uncontrolled path bit-identical to builds
  /// without this field. See docs/ROBUSTNESS.md for the degradation ladder
  /// the engine walks when the budget fires mid-query.
  QueryControl control;
};

/// One discovered dataset with its match score.
struct DiscoveryHit {
  table::RelationId relation = 0;
  float score = 0.f;
};

/// Ranked list of related datasets, best first.
///
/// Grew out of `std::vector<DiscoveryHit>` when deadlines landed; it still
/// exposes the vector surface (iteration, indexing, size/empty, push_back)
/// so ranking consumers read unchanged, plus two quality flags:
///  - `degraded`: the engine reduced effort to meet the budget (lower ef,
///    fewer probed clusters, or a fallback method). Scores are real but the
///    ranking may differ from an unbounded run.
///  - `partial`: stronger — the scan did not cover the whole corpus, so
///    relations may be missing entirely (partial ExS fallback).
/// `partial` implies `degraded` on every path the engine produces.
struct Ranking {
  std::vector<DiscoveryHit> hits;
  bool degraded = false;
  bool partial = false;

  Ranking() = default;
  Ranking(std::initializer_list<DiscoveryHit> init) : hits(init) {}

  // Vector facade, const + mutable, so existing consumers compile as-is.
  using value_type = DiscoveryHit;
  using iterator = std::vector<DiscoveryHit>::iterator;
  using const_iterator = std::vector<DiscoveryHit>::const_iterator;
  iterator begin() { return hits.begin(); }
  iterator end() { return hits.end(); }
  const_iterator begin() const { return hits.begin(); }
  const_iterator end() const { return hits.end(); }
  size_t size() const { return hits.size(); }
  bool empty() const { return hits.empty(); }
  DiscoveryHit& operator[](size_t i) { return hits[i]; }
  const DiscoveryHit& operator[](size_t i) const { return hits[i]; }
  DiscoveryHit& front() { return hits.front(); }
  const DiscoveryHit& front() const { return hits.front(); }
  DiscoveryHit& back() { return hits.back(); }
  const DiscoveryHit& back() const { return hits.back(); }
  void push_back(const DiscoveryHit& hit) { hits.push_back(hit); }
  void reserve(size_t n) { hits.reserve(n); }
  void resize(size_t n) { hits.resize(n); }
  void clear() { hits.clear(); }
};

/// Common interface of the three semantic search methods (and of the
/// baseline rankers, which adapt to it for the evaluation harness).
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Returns the top-k relations related to the keyword query. When
  /// `options.control` is active, implementations honor it cooperatively:
  /// they either self-degrade (and say so via the ranking flags) or return
  /// kDeadlineExceeded/kCancelled.
  [[nodiscard]] virtual Result<Ranking> Search(const std::string& query,
                                 const DiscoveryOptions& options) const = 0;

  /// Short method tag ("ExS", "ANNS", "CTS", ...).
  virtual std::string name() const = 0;
};

/// Truncates a ranking to entries with score >= threshold and at most k
/// entries (assumes it is already sorted best-first).
void ApplyThresholdAndTopK(Ranking* ranking, const DiscoveryOptions& options);

}  // namespace mira::discovery

#endif  // MIRA_DISCOVERY_TYPES_H_
