#include "discovery/match.h"

#include "vecmath/vector_ops.h"

namespace mira::discovery {

float MatchScore(const table::Relation& relation, const std::string& query,
                 const embed::SemanticEncoder& encoder) {
  vecmath::Vec q = encoder.EncodeText(query);
  vecmath::NormalizeInPlace(&q);
  double total = 0.0;
  size_t cells = 0;
  for (const auto& row : relation.rows) {
    for (const auto& cell : row) {
      if (cell.empty()) continue;
      vecmath::Vec w = encoder.EncodeText(cell);
      vecmath::NormalizeInPlace(&w);
      total += vecmath::Dot(q, w);
      ++cells;
    }
  }
  return cells == 0 ? 0.f
                    : static_cast<float>(total / static_cast<double>(cells));
}

}  // namespace mira::discovery
