#include "discovery/anns_search.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"
#include "vecmath/vector_ops.h"

namespace mira::discovery {

namespace {
constexpr char kCellCollection[] = "cells";
}  // namespace

AnnsSearcher::AnnsSearcher(AnnsOptions options, size_t num_relations)
    : options_(options), num_relations_(num_relations) {}

Result<std::unique_ptr<AnnsSearcher>> AnnsSearcher::Build(
    const table::Federation& federation,
    std::shared_ptr<const CorpusEmbeddings> corpus,
    std::shared_ptr<const embed::SemanticEncoder> encoder,
    const AnnsOptions& options) {
  if (corpus == nullptr || encoder == nullptr) {
    return Status::InvalidArgument("anns: null corpus/encoder");
  }

  std::unique_ptr<AnnsSearcher> searcher(
      new AnnsSearcher(options, corpus->num_relations));
  // Keep the encoder alive through the shared_ptr captured below.
  searcher->encoder_ = encoder;

  vectordb::CollectionParams params;
  params.dim = corpus->dim();
  params.metric = vecmath::Metric::kCosine;
  params.index_kind = options.use_pq ? vectordb::IndexKind::kHnswPq
                                     : vectordb::IndexKind::kHnsw;
  params.hnsw_m = options.hnsw_m;
  params.hnsw_ef_construction = options.hnsw_ef_construction;
  params.hnsw_ef_search = options.ef_search;
  params.pq_subquantizers = options.pq_subquantizers;
  params.pq_nbits = options.pq_nbits;
  params.seed = options.seed;

  MIRA_ASSIGN_OR_RETURN(vectordb::Collection * cells,
                        searcher->db_.CreateCollection(kCellCollection, params));
  // Step 1 of Algorithm 2: populate the vector database. Each point carries
  // the relation id and attribute name as payload metadata.
  for (size_t i = 0; i < corpus->num_cells(); ++i) {
    const CellRef& ref = corpus->refs[i];
    vectordb::Point point;
    point.id = static_cast<uint64_t>(i);
    point.vector = corpus->vectors.RowVec(i);
    point.payload.SetInt("rel", static_cast<int64_t>(ref.relation));
    point.payload.SetString(
        "attr", federation.relation(ref.relation).schema[ref.col]);
    MIRA_RETURN_NOT_OK(cells->Upsert(std::move(point)));
  }
  MIRA_RETURN_NOT_OK(cells->BuildIndex());
  return searcher;
}

Result<Ranking> AnnsSearcher::Search(const std::string& query,
                                     const DiscoveryOptions& options) const {
  vecmath::Vec q;
  {
    obs::TraceSpan span("embed_query");
    q = encoder_->EncodeText(query);
    vecmath::NormalizeInPlace(&q);
  }

  MIRA_ASSIGN_OR_RETURN(const vectordb::Collection* cells,
                        db_.GetCollection(kCellCollection));

  // Graceful degradation under a deadline: shrink the HNSW beam as the
  // budget drains (full ef above 50% remaining, half above 25%, quarter
  // below that — floored so the beam still covers the candidate ask). An
  // inactive control leaves ef untouched, keeping that path bit-identical.
  const QueryControl& control = options.control;
  size_t ef = options_.ef_search;
  bool degraded = false;
  if (control.active()) {
    double fraction = control.deadline.FractionRemaining();
    if (fraction < 0.25) {
      ef /= 4;
      degraded = true;
    } else if (fraction < 0.5) {
      ef /= 2;
      degraded = true;
    }
    ef = std::max(ef, std::max(options_.cell_candidates, size_t{16}));
    degraded = degraded && ef < options_.ef_search;
  }

  std::vector<vectordb::SearchHit> hits;
  {
    obs::TraceSpan span("anns.hnsw_search");
    MIRA_ASSIGN_OR_RETURN(
        hits, cells->Search(q, options_.cell_candidates, ef, {},
                            control.active() ? &control : nullptr));
    span.AddCounter("candidates_requested",
                    static_cast<int64_t>(options_.cell_candidates));
    span.AddCounter("ef", static_cast<int64_t>(ef));
    span.AddCounter("hits", static_cast<int64_t>(hits.size()));
  }

  // Step 2 of Algorithm 2: the relation score is the average similarity of
  // the relation's vectors among the approximate nearest neighbors.
  obs::TraceSpan rank_span("anns.group_relations");
  std::unordered_map<table::RelationId, std::pair<double, uint32_t>> grouped;
  for (const auto& hit : hits) {
    auto rel = hit.payload->GetInt("rel");
    if (!rel.has_value()) continue;
    auto& [sum, count] = grouped[static_cast<table::RelationId>(*rel)];
    sum += hit.score;
    ++count;
  }
  rank_span.AddCounter("relations", static_cast<int64_t>(grouped.size()));

  Ranking ranking;
  ranking.reserve(grouped.size());
  for (const auto& [rid, sum_count] : grouped) {
    ranking.push_back(
        {rid, static_cast<float>(sum_count.first / sum_count.second)});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const DiscoveryHit& a, const DiscoveryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.relation < b.relation;
            });
  ApplyThresholdAndTopK(&ranking, options);
  ranking.degraded = degraded;
  return ranking;
}

size_t AnnsSearcher::IndexMemoryBytes() const {
  auto cells = db_.GetCollection(kCellCollection);
  return cells.ok() ? (*cells)->IndexMemoryBytes() : 0;
}

vectordb::CollectionMemoryStats AnnsSearcher::MemoryUsage() const {
  auto cells = db_.GetCollection(kCellCollection);
  return cells.ok() ? (*cells)->MemoryUsage()
                    : vectordb::CollectionMemoryStats{};
}

}  // namespace mira::discovery
