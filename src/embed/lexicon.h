#ifndef MIRA_EMBED_LEXICON_H_
#define MIRA_EMBED_LEXICON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mira::embed {

/// Sentinel for "no concept/topic/aspect".
inline constexpr int32_t kNoConcept = -1;
inline constexpr int32_t kNoTopic = -1;
inline constexpr int32_t kNoAspect = -1;

/// A four-level semantic inventory: topics contain aspects, aspects contain
/// concepts, concepts have surface forms (synonyms). The aspect level is
/// optional — concepts may hang directly off a topic.
///
/// This is MIRA's substitute for the world knowledge inside Sentence-BERT:
/// the encoder blends a per-concept vector into every surface form's
/// embedding, so "comirnaty", "pfizer-biontech" and "mrna vaccine" land close
/// together even though they share no characters — exactly the property the
/// paper's motivating example (Figure 1) relies on. Concepts of the same
/// topic share a topic component, giving the "looser" relatedness the paper
/// attributes to language models versus ontologies (§2).
class Lexicon {
 public:
  /// Registers a topic; returns its id. Duplicate names are distinct topics.
  int32_t AddTopic(std::string name);

  /// Registers an aspect (sub-theme) under a topic; returns its id.
  int32_t AddAspect(int32_t topic_id, std::string name);

  /// Registers a concept under a topic; returns its id. `aspect_id` may be
  /// kNoAspect for topic-level concepts (e.g. topic labels).
  int32_t AddConcept(int32_t topic_id, std::string name,
                     int32_t aspect_id = kNoAspect);

  /// Maps a surface token (lowercased, single token) to a concept. A token
  /// can belong to at most one concept; re-registering overwrites.
  void AddSurface(int32_t concept_id, std::string_view surface);

  /// Concept of a token, or kNoConcept.
  int32_t ConceptOf(std::string_view token) const;

  /// Topic of a concept; aborts on invalid id.
  int32_t TopicOf(int32_t concept_id) const;

  /// Aspect of a concept (kNoAspect when topic-level).
  int32_t AspectOfConcept(int32_t concept_id) const;

  /// Topic of an aspect.
  int32_t TopicOfAspect(int32_t aspect_id) const;

  const std::string& TopicName(int32_t topic_id) const;
  const std::string& ConceptName(int32_t concept_id) const;

  /// All surface forms registered for a concept.
  std::vector<std::string> SurfacesOf(int32_t concept_id) const;

  size_t num_topics() const { return topic_names_.size(); }
  size_t num_aspects() const { return aspect_topic_.size(); }
  size_t num_concepts() const { return concept_topic_.size(); }
  size_t num_surfaces() const { return surface_to_concept_.size(); }

 private:
  std::vector<std::string> topic_names_;
  std::vector<std::string> aspect_names_;
  std::vector<int32_t> aspect_topic_;
  std::vector<std::string> concept_names_;
  std::vector<int32_t> concept_topic_;
  std::vector<int32_t> concept_aspect_;
  std::unordered_map<std::string, int32_t> surface_to_concept_;
};

}  // namespace mira::embed

#endif  // MIRA_EMBED_LEXICON_H_
