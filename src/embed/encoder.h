#ifndef MIRA_EMBED_ENCODER_H_
#define MIRA_EMBED_ENCODER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "embed/lexicon.h"
#include "text/tokenizer.h"
#include "vecmath/vector_ops.h"

namespace mira::embed {

/// Unigram probabilities estimated from a corpus, used for SIF pooling
/// weights. Build once, share (read-only) across encoders.
class TokenFrequencies {
 public:
  /// Accumulates counts from a token sequence.
  void Add(const std::vector<std::string>& tokens);
  /// Accumulates counts from raw text (tokenized internally).
  void AddText(std::string_view text);

  /// p(token); unseen tokens get 1/(total+1).
  double Prob(const std::string& token) const;
  int64_t total() const { return total_; }

 private:
  std::unordered_map<std::string, int64_t> counts_;
  int64_t total_ = 0;
};

/// Configuration of the deterministic semantic encoder.
struct EncoderOptions {
  /// Output embedding dimensionality. The paper uses 768 (all-mpnet-base-v2);
  /// MIRA defaults to 256 for laptop-scale runs — all algorithms are
  /// dimension-agnostic and 768 is fully supported.
  size_t dim = 256;
  /// Character n-gram sizes hashed into the lexical component.
  std::vector<size_t> ngram_sizes = {3, 4};
  /// Blend weight of the concept vector for lexicon surface forms; the
  /// remainder goes to the hashed lexical component. Close to 1 means strong
  /// synonym collapsing (S-BERT-like), 0 disables semantics entirely.
  float concept_blend = 0.88f;
  /// Weight of the shared topic direction inside a concept vector (controls
  /// relatedness of same-topic concepts).
  float topic_share = 0.58f;
  /// Weight of the shared aspect direction inside a concept vector (on top
  /// of the topic share, for concepts that belong to an aspect). Controls
  /// relatedness of same-aspect concepts — the granularity of full
  /// relevance in the evaluation workloads.
  float aspect_share = 0.55f;
  /// Blend weights for numeric tokens: shared "numberness" direction and
  /// log-magnitude bucket direction; remainder is the hashed component.
  float numeric_share = 0.45f;
  float magnitude_share = 0.35f;
  /// Weight applied to stopword tokens when pooling a sentence.
  float stopword_weight = 0.2f;
  /// SIF smoothing constant: with corpus frequencies attached (see
  /// SetTokenFrequencies), a token's pooling weight is a / (a + p(token)),
  /// so ubiquitous words contribute little to a sentence embedding — the
  /// behaviour sentence transformers learn implicitly.
  float sif_a = 5e-3f;
  /// Seed of all pseudo-random directions; two encoders with equal options
  /// and lexicons produce identical embeddings.
  uint64_t seed = 0xC0FFEE;
};

/// Deterministic sentence/cell encoder, MIRA's stand-in for Sentence-BERT.
///
/// Token vectors have three ingredients:
///   1. a *lexical* component: the normalized sum of pseudo-random Gaussian
///      directions of the token's character n-grams (robust to misspellings;
///      unrelated strings are near-orthogonal in high dimension);
///   2. a *concept* component, when the token is a surface form in the
///      Lexicon: a direction shared by all synonyms of the concept and
///      partially shared (via the topic direction) by sibling concepts;
///   3. a *numeric* component, when the token parses as a number: a shared
///      numberness direction plus a log-magnitude bucket direction, so
///      "1995" and "1997" are close while "1995" and "3.5e9" are not —
///      mirroring the paper's point that mpnet distinguishes numbers by
///      context and magnitude (§5 Model Specifications).
///
/// A text is encoded as the weighted mean of its token vectors (stopwords
/// down-weighted), L2-normalized — the standard mean-pooling recipe of
/// sentence transformers. Thread-safe; token vectors are memoized.
class SemanticEncoder {
 public:
  SemanticEncoder(EncoderOptions options, std::shared_ptr<const Lexicon> lexicon);

  /// Embeds an attribute value or a query string: semImg(v) in the paper.
  vecmath::Vec EncodeText(std::string_view text) const;

  /// Embeds a pre-tokenized sequence.
  vecmath::Vec EncodeTokens(const std::vector<std::string>& tokens) const;

  /// Embeds a single token (memoized).
  vecmath::Vec EncodeToken(const std::string& token) const;

  size_t dim() const { return options_.dim; }
  const EncoderOptions& options() const { return options_; }
  const Lexicon& lexicon() const { return *lexicon_; }

  /// Attaches corpus unigram statistics enabling SIF pooling weights
  /// (a / (a + p)). Without frequencies only the stopword down-weighting
  /// applies. Token vectors are unaffected (the cache stays valid).
  void SetTokenFrequencies(std::shared_ptr<const TokenFrequencies> frequencies) {
    frequencies_ = std::move(frequencies);
  }
  const TokenFrequencies* token_frequencies() const {
    return frequencies_.get();
  }

  /// The unit direction assigned to a concept (exposed for tests and for the
  /// datagen module, which plants query-table semantic structure).
  vecmath::Vec ConceptDirection(int32_t concept_id) const;

  /// The unit direction assigned to a topic.
  vecmath::Vec TopicDirection(int32_t topic_id) const;

  /// The unit direction assigned to an aspect.
  vecmath::Vec AspectDirection(int32_t aspect_id) const;

 private:
  vecmath::Vec ComputeTokenVector(const std::string& token) const;
  vecmath::Vec HashedLexicalVector(const std::string& token) const;
  vecmath::Vec GaussianDirection(uint64_t seed) const;

  EncoderOptions options_;
  std::shared_ptr<const Lexicon> lexicon_;
  std::shared_ptr<const TokenFrequencies> frequencies_;
  text::Tokenizer tokenizer_;

  mutable Mutex cache_mutex_;
  mutable std::unordered_map<std::string, vecmath::Vec> token_cache_
      MIRA_GUARDED_BY(cache_mutex_);
};

}  // namespace mira::embed

#endif  // MIRA_EMBED_ENCODER_H_
