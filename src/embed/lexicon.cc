#include "embed/lexicon.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mira::embed {

int32_t Lexicon::AddTopic(std::string name) {
  topic_names_.push_back(std::move(name));
  return static_cast<int32_t>(topic_names_.size()) - 1;
}

int32_t Lexicon::AddAspect(int32_t topic_id, std::string name) {
  MIRA_CHECK(topic_id >= 0 &&
             static_cast<size_t>(topic_id) < topic_names_.size());
  aspect_names_.push_back(std::move(name));
  aspect_topic_.push_back(topic_id);
  return static_cast<int32_t>(aspect_topic_.size()) - 1;
}

int32_t Lexicon::AddConcept(int32_t topic_id, std::string name,
                            int32_t aspect_id) {
  MIRA_CHECK(topic_id >= 0 &&
             static_cast<size_t>(topic_id) < topic_names_.size());
  if (aspect_id != kNoAspect) {
    MIRA_CHECK(static_cast<size_t>(aspect_id) < aspect_topic_.size());
    MIRA_CHECK(aspect_topic_[aspect_id] == topic_id);
  }
  concept_names_.push_back(std::move(name));
  concept_topic_.push_back(topic_id);
  concept_aspect_.push_back(aspect_id);
  return static_cast<int32_t>(concept_topic_.size()) - 1;
}

int32_t Lexicon::AspectOfConcept(int32_t concept_id) const {
  MIRA_CHECK(concept_id >= 0 &&
             static_cast<size_t>(concept_id) < concept_aspect_.size());
  return concept_aspect_[concept_id];
}

int32_t Lexicon::TopicOfAspect(int32_t aspect_id) const {
  MIRA_CHECK(aspect_id >= 0 &&
             static_cast<size_t>(aspect_id) < aspect_topic_.size());
  return aspect_topic_[aspect_id];
}

void Lexicon::AddSurface(int32_t concept_id, std::string_view surface) {
  MIRA_CHECK(concept_id >= 0 &&
             static_cast<size_t>(concept_id) < concept_topic_.size());
  surface_to_concept_[ToLower(surface)] = concept_id;
}

int32_t Lexicon::ConceptOf(std::string_view token) const {
  auto it = surface_to_concept_.find(std::string(token));
  return it == surface_to_concept_.end() ? kNoConcept : it->second;
}

int32_t Lexicon::TopicOf(int32_t concept_id) const {
  MIRA_CHECK(concept_id >= 0 &&
             static_cast<size_t>(concept_id) < concept_topic_.size());
  return concept_topic_[concept_id];
}

const std::string& Lexicon::TopicName(int32_t topic_id) const {
  MIRA_CHECK(topic_id >= 0 &&
             static_cast<size_t>(topic_id) < topic_names_.size());
  return topic_names_[topic_id];
}

const std::string& Lexicon::ConceptName(int32_t concept_id) const {
  MIRA_CHECK(concept_id >= 0 &&
             static_cast<size_t>(concept_id) < concept_names_.size());
  return concept_names_[concept_id];
}

std::vector<std::string> Lexicon::SurfacesOf(int32_t concept_id) const {
  std::vector<std::string> out;
  for (const auto& [surface, cid] : surface_to_concept_) {
    if (cid == concept_id) out.push_back(surface);
  }
  return out;
}

}  // namespace mira::embed
