#include "embed/encoder.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mira::embed {

namespace {

// Salt values keep the seed streams of the different direction families
// disjoint.
constexpr uint64_t kTopicSalt = 0x70F1C'5A17ULL;
constexpr uint64_t kAspectSalt = 0xA59EC7'5A17ULL;
constexpr uint64_t kConceptSalt = 0xC0'9CE7'5A17ULL;
constexpr uint64_t kNgramSalt = 0x96'7A3'5A17ULL;
constexpr uint64_t kNumberSalt = 0x9B'3E2'5A17ULL;
constexpr uint64_t kBucketSalt = 0xB0C'4E7'5A17ULL;

}  // namespace

void TokenFrequencies::Add(const std::vector<std::string>& tokens) {
  for (const auto& token : tokens) {
    ++counts_[token];
    ++total_;
  }
}

void TokenFrequencies::AddText(std::string_view text) {
  text::Tokenizer tokenizer;
  Add(tokenizer.Tokenize(text));
}

double TokenFrequencies::Prob(const std::string& token) const {
  auto it = counts_.find(token);
  double total = static_cast<double>(total_) + 1.0;
  // Unseen tokens get half the mass of a hapax so they rank strictly rarer.
  return it == counts_.end() ? 0.5 / total
                             : static_cast<double>(it->second) / total;
}

SemanticEncoder::SemanticEncoder(EncoderOptions options,
                                 std::shared_ptr<const Lexicon> lexicon)
    : options_(std::move(options)), lexicon_(std::move(lexicon)) {
  MIRA_CHECK(options_.dim > 0);
  MIRA_CHECK(lexicon_ != nullptr);
}

vecmath::Vec SemanticEncoder::GaussianDirection(uint64_t seed) const {
  Rng rng(SplitMix64(options_.seed ^ seed));
  vecmath::Vec v(options_.dim);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  vecmath::NormalizeInPlace(&v);
  return v;
}

vecmath::Vec SemanticEncoder::TopicDirection(int32_t topic_id) const {
  return GaussianDirection(kTopicSalt + static_cast<uint64_t>(topic_id) * 2654435761ULL);
}

vecmath::Vec SemanticEncoder::AspectDirection(int32_t aspect_id) const {
  return GaussianDirection(kAspectSalt +
                           static_cast<uint64_t>(aspect_id) * 48271ULL);
}

vecmath::Vec SemanticEncoder::ConceptDirection(int32_t concept_id) const {
  // Concept = topic_share * topic + aspect_share * aspect (when the concept
  // has one) + remainder * unique. The resulting cosine ladder — same
  // concept > same aspect > same topic > unrelated — is the geometry
  // sentence encoders give real-world synonym/theme structure.
  int32_t topic = lexicon_->TopicOf(concept_id);
  int32_t aspect = lexicon_->AspectOfConcept(concept_id);
  vecmath::Vec topic_dir = TopicDirection(topic);
  vecmath::Vec unique =
      GaussianDirection(kConceptSalt + static_cast<uint64_t>(concept_id) * 976369ULL);
  float wt = options_.topic_share;
  float wa = aspect == kNoAspect ? 0.f : options_.aspect_share;
  float wu = std::sqrt(std::max(0.f, 1.f - wt * wt - wa * wa));
  vecmath::Vec out(options_.dim, 0.f);
  vecmath::AxpyInPlace(&out, topic_dir, wt);
  if (aspect != kNoAspect) {
    vecmath::AxpyInPlace(&out, AspectDirection(aspect), wa);
  }
  vecmath::AxpyInPlace(&out, unique, wu);
  vecmath::NormalizeInPlace(&out);
  return out;
}

vecmath::Vec SemanticEncoder::HashedLexicalVector(const std::string& token) const {
  vecmath::Vec acc(options_.dim, 0.f);
  size_t count = 0;
  for (size_t n : options_.ngram_sizes) {
    for (const auto& gram : text::CharNgrams(token, n)) {
      uint64_t h = Fnv1a64(gram) ^ kNgramSalt;
      vecmath::AxpyInPlace(&acc, GaussianDirection(h), 1.0f);
      ++count;
    }
  }
  if (count == 0) {
    // Degenerate token (should not happen after tokenization); fall back to
    // hashing the whole token.
    return GaussianDirection(Fnv1a64(token) ^ kNgramSalt);
  }
  vecmath::NormalizeInPlace(&acc);
  return acc;
}

vecmath::Vec SemanticEncoder::ComputeTokenVector(const std::string& token) const {
  vecmath::Vec lexical = HashedLexicalVector(token);

  // Numeric tokens: blend the shared numberness direction and a coarse
  // log-magnitude bucket so numerically-near values embed near each other.
  if (LooksNumeric(token)) {
    double value = std::atof(token.c_str());
    double magnitude = std::log10(std::abs(value) + 1.0);
    int64_t bucket = static_cast<int64_t>(std::floor(magnitude * 2.0));
    vecmath::Vec number_dir = GaussianDirection(kNumberSalt);
    vecmath::Vec bucket_dir =
        GaussianDirection(kBucketSalt + static_cast<uint64_t>(bucket + 64) * 40503ULL);
    float wn = options_.numeric_share;
    float wm = options_.magnitude_share;
    float wl = std::max(0.f, 1.f - wn - wm);
    vecmath::Vec out(options_.dim, 0.f);
    vecmath::AxpyInPlace(&out, number_dir, wn);
    vecmath::AxpyInPlace(&out, bucket_dir, wm);
    vecmath::AxpyInPlace(&out, lexical, wl);
    vecmath::NormalizeInPlace(&out);
    return out;
  }

  int32_t concept_id = lexicon_->ConceptOf(token);
  if (concept_id == kNoConcept) return lexical;

  // Surface form of a known concept: mostly the concept direction, with a
  // lexical residue so distinct synonyms are near-identical but not equal.
  vecmath::Vec concept_dir = ConceptDirection(concept_id);
  float wc = options_.concept_blend;
  float wl = std::sqrt(std::max(0.f, 1.f - wc * wc));
  vecmath::Vec out(options_.dim, 0.f);
  vecmath::AxpyInPlace(&out, concept_dir, wc);
  vecmath::AxpyInPlace(&out, lexical, wl);
  vecmath::NormalizeInPlace(&out);
  return out;
}

vecmath::Vec SemanticEncoder::EncodeToken(const std::string& token) const {
  {
    MutexLock lock(cache_mutex_);
    auto it = token_cache_.find(token);
    if (it != token_cache_.end()) return it->second;
  }
  vecmath::Vec v = ComputeTokenVector(token);
  {
    MutexLock lock(cache_mutex_);
    token_cache_.emplace(token, v);
  }
  return v;
}

vecmath::Vec SemanticEncoder::EncodeTokens(
    const std::vector<std::string>& tokens) const {
  // Registry counters only — no spans: the faithful ExS path calls the
  // encoder once per cell, and a span per cell would blow up the trace.
  if constexpr (obs::kObsEnabled) {
    static obs::Counter& calls_metric =
        obs::MetricRegistry::Global().GetCounter("mira.embed.encode_calls");
    static obs::Counter& tokens_metric =
        obs::MetricRegistry::Global().GetCounter("mira.embed.tokens_encoded");
    calls_metric.Increment();
    tokens_metric.Add(tokens.size());
  }
  vecmath::Vec acc(options_.dim, 0.f);
  if (tokens.empty()) return acc;
  float total_weight = 0.f;
  for (const auto& token : tokens) {
    float w = text::Tokenizer::IsStopword(token) ? options_.stopword_weight : 1.0f;
    if (frequencies_ != nullptr) {
      double p = frequencies_->Prob(token);
      w *= static_cast<float>(options_.sif_a / (options_.sif_a + p));
    }
    vecmath::AxpyInPlace(&acc, EncodeToken(token), w);
    total_weight += w;
  }
  if (total_weight > 0.f) vecmath::ScaleInPlace(&acc, 1.0f / total_weight);
  vecmath::NormalizeInPlace(&acc);
  return acc;
}

vecmath::Vec SemanticEncoder::EncodeText(std::string_view text) const {
  return EncodeTokens(tokenizer_.Tokenize(text));
}

}  // namespace mira::embed
