file(REMOVE_RECURSE
  "CMakeFiles/mira_dimred.dir/pca.cc.o"
  "CMakeFiles/mira_dimred.dir/pca.cc.o.d"
  "CMakeFiles/mira_dimred.dir/umap.cc.o"
  "CMakeFiles/mira_dimred.dir/umap.cc.o.d"
  "libmira_dimred.a"
  "libmira_dimred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_dimred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
