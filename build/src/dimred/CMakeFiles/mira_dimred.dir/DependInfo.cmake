
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dimred/pca.cc" "src/dimred/CMakeFiles/mira_dimred.dir/pca.cc.o" "gcc" "src/dimred/CMakeFiles/mira_dimred.dir/pca.cc.o.d"
  "/root/repo/src/dimred/umap.cc" "src/dimred/CMakeFiles/mira_dimred.dir/umap.cc.o" "gcc" "src/dimred/CMakeFiles/mira_dimred.dir/umap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/mira_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mira_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mira_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
