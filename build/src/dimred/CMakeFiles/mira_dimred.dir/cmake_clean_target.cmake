file(REMOVE_RECURSE
  "libmira_dimred.a"
)
