# Empty dependencies file for mira_dimred.
# This may be replaced when dependencies are built.
