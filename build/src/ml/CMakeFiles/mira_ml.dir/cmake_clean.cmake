file(REMOVE_RECURSE
  "CMakeFiles/mira_ml.dir/decision_tree.cc.o"
  "CMakeFiles/mira_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/mira_ml.dir/linear_regression.cc.o"
  "CMakeFiles/mira_ml.dir/linear_regression.cc.o.d"
  "libmira_ml.a"
  "libmira_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
