file(REMOVE_RECURSE
  "libmira_ml.a"
)
