# Empty compiler generated dependencies file for mira_ml.
# This may be replaced when dependencies are built.
