# Empty compiler generated dependencies file for mira_cluster.
# This may be replaced when dependencies are built.
