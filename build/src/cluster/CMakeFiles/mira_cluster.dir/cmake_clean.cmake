file(REMOVE_RECURSE
  "CMakeFiles/mira_cluster.dir/hdbscan.cc.o"
  "CMakeFiles/mira_cluster.dir/hdbscan.cc.o.d"
  "CMakeFiles/mira_cluster.dir/kmeans.cc.o"
  "CMakeFiles/mira_cluster.dir/kmeans.cc.o.d"
  "libmira_cluster.a"
  "libmira_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
