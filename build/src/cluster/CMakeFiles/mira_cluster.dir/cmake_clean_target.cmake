file(REMOVE_RECURSE
  "libmira_cluster.a"
)
