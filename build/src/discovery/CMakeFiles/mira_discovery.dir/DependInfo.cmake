
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discovery/anns_search.cc" "src/discovery/CMakeFiles/mira_discovery.dir/anns_search.cc.o" "gcc" "src/discovery/CMakeFiles/mira_discovery.dir/anns_search.cc.o.d"
  "/root/repo/src/discovery/corpus_embeddings.cc" "src/discovery/CMakeFiles/mira_discovery.dir/corpus_embeddings.cc.o" "gcc" "src/discovery/CMakeFiles/mira_discovery.dir/corpus_embeddings.cc.o.d"
  "/root/repo/src/discovery/cts_search.cc" "src/discovery/CMakeFiles/mira_discovery.dir/cts_search.cc.o" "gcc" "src/discovery/CMakeFiles/mira_discovery.dir/cts_search.cc.o.d"
  "/root/repo/src/discovery/dataset_ranking.cc" "src/discovery/CMakeFiles/mira_discovery.dir/dataset_ranking.cc.o" "gcc" "src/discovery/CMakeFiles/mira_discovery.dir/dataset_ranking.cc.o.d"
  "/root/repo/src/discovery/engine.cc" "src/discovery/CMakeFiles/mira_discovery.dir/engine.cc.o" "gcc" "src/discovery/CMakeFiles/mira_discovery.dir/engine.cc.o.d"
  "/root/repo/src/discovery/exhaustive_search.cc" "src/discovery/CMakeFiles/mira_discovery.dir/exhaustive_search.cc.o" "gcc" "src/discovery/CMakeFiles/mira_discovery.dir/exhaustive_search.cc.o.d"
  "/root/repo/src/discovery/match.cc" "src/discovery/CMakeFiles/mira_discovery.dir/match.cc.o" "gcc" "src/discovery/CMakeFiles/mira_discovery.dir/match.cc.o.d"
  "/root/repo/src/discovery/types.cc" "src/discovery/CMakeFiles/mira_discovery.dir/types.cc.o" "gcc" "src/discovery/CMakeFiles/mira_discovery.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/mira_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/mira_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/mira_table.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mira_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mira_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dimred/CMakeFiles/mira_dimred.dir/DependInfo.cmake"
  "/root/repo/build/src/vectordb/CMakeFiles/mira_vectordb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mira_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
