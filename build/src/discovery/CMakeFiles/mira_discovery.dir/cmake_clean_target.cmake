file(REMOVE_RECURSE
  "libmira_discovery.a"
)
