file(REMOVE_RECURSE
  "CMakeFiles/mira_discovery.dir/anns_search.cc.o"
  "CMakeFiles/mira_discovery.dir/anns_search.cc.o.d"
  "CMakeFiles/mira_discovery.dir/corpus_embeddings.cc.o"
  "CMakeFiles/mira_discovery.dir/corpus_embeddings.cc.o.d"
  "CMakeFiles/mira_discovery.dir/cts_search.cc.o"
  "CMakeFiles/mira_discovery.dir/cts_search.cc.o.d"
  "CMakeFiles/mira_discovery.dir/dataset_ranking.cc.o"
  "CMakeFiles/mira_discovery.dir/dataset_ranking.cc.o.d"
  "CMakeFiles/mira_discovery.dir/engine.cc.o"
  "CMakeFiles/mira_discovery.dir/engine.cc.o.d"
  "CMakeFiles/mira_discovery.dir/exhaustive_search.cc.o"
  "CMakeFiles/mira_discovery.dir/exhaustive_search.cc.o.d"
  "CMakeFiles/mira_discovery.dir/match.cc.o"
  "CMakeFiles/mira_discovery.dir/match.cc.o.d"
  "CMakeFiles/mira_discovery.dir/types.cc.o"
  "CMakeFiles/mira_discovery.dir/types.cc.o.d"
  "libmira_discovery.a"
  "libmira_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
