# Empty dependencies file for mira_discovery.
# This may be replaced when dependencies are built.
