# Empty compiler generated dependencies file for mira_discovery.
# This may be replaced when dependencies are built.
