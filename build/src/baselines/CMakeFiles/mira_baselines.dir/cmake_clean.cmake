file(REMOVE_RECURSE
  "CMakeFiles/mira_baselines.dir/adh.cc.o"
  "CMakeFiles/mira_baselines.dir/adh.cc.o.d"
  "CMakeFiles/mira_baselines.dir/baseline_common.cc.o"
  "CMakeFiles/mira_baselines.dir/baseline_common.cc.o.d"
  "CMakeFiles/mira_baselines.dir/mdr.cc.o"
  "CMakeFiles/mira_baselines.dir/mdr.cc.o.d"
  "CMakeFiles/mira_baselines.dir/tcs.cc.o"
  "CMakeFiles/mira_baselines.dir/tcs.cc.o.d"
  "CMakeFiles/mira_baselines.dir/tml.cc.o"
  "CMakeFiles/mira_baselines.dir/tml.cc.o.d"
  "CMakeFiles/mira_baselines.dir/ws.cc.o"
  "CMakeFiles/mira_baselines.dir/ws.cc.o.d"
  "libmira_baselines.a"
  "libmira_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
