file(REMOVE_RECURSE
  "libmira_baselines.a"
)
