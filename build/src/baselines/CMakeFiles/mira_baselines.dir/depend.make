# Empty dependencies file for mira_baselines.
# This may be replaced when dependencies are built.
