file(REMOVE_RECURSE
  "libmira_vecmath.a"
)
