# Empty compiler generated dependencies file for mira_vecmath.
# This may be replaced when dependencies are built.
