file(REMOVE_RECURSE
  "CMakeFiles/mira_vecmath.dir/distance.cc.o"
  "CMakeFiles/mira_vecmath.dir/distance.cc.o.d"
  "CMakeFiles/mira_vecmath.dir/vector_ops.cc.o"
  "CMakeFiles/mira_vecmath.dir/vector_ops.cc.o.d"
  "libmira_vecmath.a"
  "libmira_vecmath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_vecmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
