file(REMOVE_RECURSE
  "CMakeFiles/mira_text.dir/corpus_stats.cc.o"
  "CMakeFiles/mira_text.dir/corpus_stats.cc.o.d"
  "CMakeFiles/mira_text.dir/tokenizer.cc.o"
  "CMakeFiles/mira_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/mira_text.dir/vocab.cc.o"
  "CMakeFiles/mira_text.dir/vocab.cc.o.d"
  "libmira_text.a"
  "libmira_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
