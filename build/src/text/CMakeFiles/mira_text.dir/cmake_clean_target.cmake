file(REMOVE_RECURSE
  "libmira_text.a"
)
