# Empty compiler generated dependencies file for mira_text.
# This may be replaced when dependencies are built.
