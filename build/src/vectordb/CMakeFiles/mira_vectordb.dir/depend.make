# Empty dependencies file for mira_vectordb.
# This may be replaced when dependencies are built.
