file(REMOVE_RECURSE
  "CMakeFiles/mira_vectordb.dir/collection.cc.o"
  "CMakeFiles/mira_vectordb.dir/collection.cc.o.d"
  "CMakeFiles/mira_vectordb.dir/filter.cc.o"
  "CMakeFiles/mira_vectordb.dir/filter.cc.o.d"
  "CMakeFiles/mira_vectordb.dir/payload.cc.o"
  "CMakeFiles/mira_vectordb.dir/payload.cc.o.d"
  "CMakeFiles/mira_vectordb.dir/vector_db.cc.o"
  "CMakeFiles/mira_vectordb.dir/vector_db.cc.o.d"
  "libmira_vectordb.a"
  "libmira_vectordb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_vectordb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
