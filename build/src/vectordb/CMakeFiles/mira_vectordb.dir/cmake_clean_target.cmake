file(REMOVE_RECURSE
  "libmira_vectordb.a"
)
