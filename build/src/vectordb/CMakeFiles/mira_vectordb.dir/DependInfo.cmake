
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vectordb/collection.cc" "src/vectordb/CMakeFiles/mira_vectordb.dir/collection.cc.o" "gcc" "src/vectordb/CMakeFiles/mira_vectordb.dir/collection.cc.o.d"
  "/root/repo/src/vectordb/filter.cc" "src/vectordb/CMakeFiles/mira_vectordb.dir/filter.cc.o" "gcc" "src/vectordb/CMakeFiles/mira_vectordb.dir/filter.cc.o.d"
  "/root/repo/src/vectordb/payload.cc" "src/vectordb/CMakeFiles/mira_vectordb.dir/payload.cc.o" "gcc" "src/vectordb/CMakeFiles/mira_vectordb.dir/payload.cc.o.d"
  "/root/repo/src/vectordb/vector_db.cc" "src/vectordb/CMakeFiles/mira_vectordb.dir/vector_db.cc.o" "gcc" "src/vectordb/CMakeFiles/mira_vectordb.dir/vector_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/mira_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mira_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mira_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
