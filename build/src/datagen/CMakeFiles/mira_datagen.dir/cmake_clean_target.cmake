file(REMOVE_RECURSE
  "libmira_datagen.a"
)
