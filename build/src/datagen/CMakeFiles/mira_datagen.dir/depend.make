# Empty dependencies file for mira_datagen.
# This may be replaced when dependencies are built.
