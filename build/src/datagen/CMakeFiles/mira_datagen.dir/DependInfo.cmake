
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/concept_bank.cc" "src/datagen/CMakeFiles/mira_datagen.dir/concept_bank.cc.o" "gcc" "src/datagen/CMakeFiles/mira_datagen.dir/concept_bank.cc.o.d"
  "/root/repo/src/datagen/corpus_generator.cc" "src/datagen/CMakeFiles/mira_datagen.dir/corpus_generator.cc.o" "gcc" "src/datagen/CMakeFiles/mira_datagen.dir/corpus_generator.cc.o.d"
  "/root/repo/src/datagen/export.cc" "src/datagen/CMakeFiles/mira_datagen.dir/export.cc.o" "gcc" "src/datagen/CMakeFiles/mira_datagen.dir/export.cc.o.d"
  "/root/repo/src/datagen/query_generator.cc" "src/datagen/CMakeFiles/mira_datagen.dir/query_generator.cc.o" "gcc" "src/datagen/CMakeFiles/mira_datagen.dir/query_generator.cc.o.d"
  "/root/repo/src/datagen/workload.cc" "src/datagen/CMakeFiles/mira_datagen.dir/workload.cc.o" "gcc" "src/datagen/CMakeFiles/mira_datagen.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/mira_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/mira_table.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mira_text.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/mira_vecmath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
