file(REMOVE_RECURSE
  "CMakeFiles/mira_datagen.dir/concept_bank.cc.o"
  "CMakeFiles/mira_datagen.dir/concept_bank.cc.o.d"
  "CMakeFiles/mira_datagen.dir/corpus_generator.cc.o"
  "CMakeFiles/mira_datagen.dir/corpus_generator.cc.o.d"
  "CMakeFiles/mira_datagen.dir/export.cc.o"
  "CMakeFiles/mira_datagen.dir/export.cc.o.d"
  "CMakeFiles/mira_datagen.dir/query_generator.cc.o"
  "CMakeFiles/mira_datagen.dir/query_generator.cc.o.d"
  "CMakeFiles/mira_datagen.dir/workload.cc.o"
  "CMakeFiles/mira_datagen.dir/workload.cc.o.d"
  "libmira_datagen.a"
  "libmira_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
