file(REMOVE_RECURSE
  "CMakeFiles/mira_table.dir/csv_reader.cc.o"
  "CMakeFiles/mira_table.dir/csv_reader.cc.o.d"
  "CMakeFiles/mira_table.dir/relation.cc.o"
  "CMakeFiles/mira_table.dir/relation.cc.o.d"
  "libmira_table.a"
  "libmira_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
