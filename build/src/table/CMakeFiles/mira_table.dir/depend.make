# Empty dependencies file for mira_table.
# This may be replaced when dependencies are built.
