file(REMOVE_RECURSE
  "libmira_table.a"
)
