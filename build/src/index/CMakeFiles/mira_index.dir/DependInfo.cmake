
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/flat_index.cc" "src/index/CMakeFiles/mira_index.dir/flat_index.cc.o" "gcc" "src/index/CMakeFiles/mira_index.dir/flat_index.cc.o.d"
  "/root/repo/src/index/hnsw_index.cc" "src/index/CMakeFiles/mira_index.dir/hnsw_index.cc.o" "gcc" "src/index/CMakeFiles/mira_index.dir/hnsw_index.cc.o.d"
  "/root/repo/src/index/ivf_index.cc" "src/index/CMakeFiles/mira_index.dir/ivf_index.cc.o" "gcc" "src/index/CMakeFiles/mira_index.dir/ivf_index.cc.o.d"
  "/root/repo/src/index/pq_flat_index.cc" "src/index/CMakeFiles/mira_index.dir/pq_flat_index.cc.o" "gcc" "src/index/CMakeFiles/mira_index.dir/pq_flat_index.cc.o.d"
  "/root/repo/src/index/product_quantizer.cc" "src/index/CMakeFiles/mira_index.dir/product_quantizer.cc.o" "gcc" "src/index/CMakeFiles/mira_index.dir/product_quantizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/mira_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mira_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
