# Empty compiler generated dependencies file for mira_index.
# This may be replaced when dependencies are built.
