file(REMOVE_RECURSE
  "CMakeFiles/mira_index.dir/flat_index.cc.o"
  "CMakeFiles/mira_index.dir/flat_index.cc.o.d"
  "CMakeFiles/mira_index.dir/hnsw_index.cc.o"
  "CMakeFiles/mira_index.dir/hnsw_index.cc.o.d"
  "CMakeFiles/mira_index.dir/ivf_index.cc.o"
  "CMakeFiles/mira_index.dir/ivf_index.cc.o.d"
  "CMakeFiles/mira_index.dir/pq_flat_index.cc.o"
  "CMakeFiles/mira_index.dir/pq_flat_index.cc.o.d"
  "CMakeFiles/mira_index.dir/product_quantizer.cc.o"
  "CMakeFiles/mira_index.dir/product_quantizer.cc.o.d"
  "libmira_index.a"
  "libmira_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
