file(REMOVE_RECURSE
  "libmira_index.a"
)
