file(REMOVE_RECURSE
  "libmira_common.a"
)
