file(REMOVE_RECURSE
  "CMakeFiles/mira_common.dir/logging.cc.o"
  "CMakeFiles/mira_common.dir/logging.cc.o.d"
  "CMakeFiles/mira_common.dir/rng.cc.o"
  "CMakeFiles/mira_common.dir/rng.cc.o.d"
  "CMakeFiles/mira_common.dir/status.cc.o"
  "CMakeFiles/mira_common.dir/status.cc.o.d"
  "CMakeFiles/mira_common.dir/string_util.cc.o"
  "CMakeFiles/mira_common.dir/string_util.cc.o.d"
  "CMakeFiles/mira_common.dir/threadpool.cc.o"
  "CMakeFiles/mira_common.dir/threadpool.cc.o.d"
  "libmira_common.a"
  "libmira_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
