# Empty compiler generated dependencies file for mira_common.
# This may be replaced when dependencies are built.
