file(REMOVE_RECURSE
  "libmira_embed.a"
)
