# Empty compiler generated dependencies file for mira_embed.
# This may be replaced when dependencies are built.
