file(REMOVE_RECURSE
  "CMakeFiles/mira_embed.dir/encoder.cc.o"
  "CMakeFiles/mira_embed.dir/encoder.cc.o.d"
  "CMakeFiles/mira_embed.dir/lexicon.cc.o"
  "CMakeFiles/mira_embed.dir/lexicon.cc.o.d"
  "libmira_embed.a"
  "libmira_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
