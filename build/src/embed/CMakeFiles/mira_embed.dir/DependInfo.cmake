
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/encoder.cc" "src/embed/CMakeFiles/mira_embed.dir/encoder.cc.o" "gcc" "src/embed/CMakeFiles/mira_embed.dir/encoder.cc.o.d"
  "/root/repo/src/embed/lexicon.cc" "src/embed/CMakeFiles/mira_embed.dir/lexicon.cc.o" "gcc" "src/embed/CMakeFiles/mira_embed.dir/lexicon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mira_text.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/mira_vecmath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
