file(REMOVE_RECURSE
  "libmira_ir.a"
)
