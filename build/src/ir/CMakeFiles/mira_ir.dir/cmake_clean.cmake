file(REMOVE_RECURSE
  "CMakeFiles/mira_ir.dir/metrics.cc.o"
  "CMakeFiles/mira_ir.dir/metrics.cc.o.d"
  "CMakeFiles/mira_ir.dir/significance.cc.o"
  "CMakeFiles/mira_ir.dir/significance.cc.o.d"
  "CMakeFiles/mira_ir.dir/trec_io.cc.o"
  "CMakeFiles/mira_ir.dir/trec_io.cc.o.d"
  "libmira_ir.a"
  "libmira_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
