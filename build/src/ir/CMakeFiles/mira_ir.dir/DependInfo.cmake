
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/metrics.cc" "src/ir/CMakeFiles/mira_ir.dir/metrics.cc.o" "gcc" "src/ir/CMakeFiles/mira_ir.dir/metrics.cc.o.d"
  "/root/repo/src/ir/significance.cc" "src/ir/CMakeFiles/mira_ir.dir/significance.cc.o" "gcc" "src/ir/CMakeFiles/mira_ir.dir/significance.cc.o.d"
  "/root/repo/src/ir/trec_io.cc" "src/ir/CMakeFiles/mira_ir.dir/trec_io.cc.o" "gcc" "src/ir/CMakeFiles/mira_ir.dir/trec_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mira_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
