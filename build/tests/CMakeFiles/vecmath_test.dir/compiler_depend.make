# Empty compiler generated dependencies file for vecmath_test.
# This may be replaced when dependencies are built.
