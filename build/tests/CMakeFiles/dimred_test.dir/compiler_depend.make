# Empty compiler generated dependencies file for dimred_test.
# This may be replaced when dependencies are built.
