file(REMOVE_RECURSE
  "CMakeFiles/dimred_test.dir/dimred_test.cc.o"
  "CMakeFiles/dimred_test.dir/dimred_test.cc.o.d"
  "dimred_test"
  "dimred_test.pdb"
  "dimred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
