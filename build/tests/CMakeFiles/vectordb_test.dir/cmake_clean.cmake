file(REMOVE_RECURSE
  "CMakeFiles/vectordb_test.dir/vectordb_test.cc.o"
  "CMakeFiles/vectordb_test.dir/vectordb_test.cc.o.d"
  "vectordb_test"
  "vectordb_test.pdb"
  "vectordb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectordb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
