# Empty dependencies file for vectordb_test.
# This may be replaced when dependencies are built.
