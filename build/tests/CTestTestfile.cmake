# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/vecmath_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/dimred_test[1]_include.cmake")
include("/root/repo/build/tests/vectordb_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/discovery_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
