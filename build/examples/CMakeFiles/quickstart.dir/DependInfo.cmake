
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/discovery/CMakeFiles/mira_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/mira_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/mira_table.dir/DependInfo.cmake"
  "/root/repo/build/src/dimred/CMakeFiles/mira_dimred.dir/DependInfo.cmake"
  "/root/repo/build/src/vectordb/CMakeFiles/mira_vectordb.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mira_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mira_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/mira_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/mira_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mira_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mira_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
