# Empty compiler generated dependencies file for scalability_tour.
# This may be replaced when dependencies are built.
