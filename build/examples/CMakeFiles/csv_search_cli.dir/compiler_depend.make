# Empty compiler generated dependencies file for csv_search_cli.
# This may be replaced when dependencies are built.
