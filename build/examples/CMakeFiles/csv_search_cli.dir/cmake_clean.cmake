file(REMOVE_RECURSE
  "CMakeFiles/csv_search_cli.dir/csv_search_cli.cpp.o"
  "CMakeFiles/csv_search_cli.dir/csv_search_cli.cpp.o.d"
  "csv_search_cli"
  "csv_search_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_search_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
