file(REMOVE_RECURSE
  "CMakeFiles/climate_case_study.dir/climate_case_study.cpp.o"
  "CMakeFiles/climate_case_study.dir/climate_case_study.cpp.o.d"
  "climate_case_study"
  "climate_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
