# Empty compiler generated dependencies file for climate_case_study.
# This may be replaced when dependencies are built.
