file(REMOVE_RECURSE
  "CMakeFiles/covid_federation.dir/covid_federation.cpp.o"
  "CMakeFiles/covid_federation.dir/covid_federation.cpp.o.d"
  "covid_federation"
  "covid_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covid_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
