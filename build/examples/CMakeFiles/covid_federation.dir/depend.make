# Empty dependencies file for covid_federation.
# This may be replaced when dependencies are built.
