file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cts.dir/bench_ablation_cts.cc.o"
  "CMakeFiles/bench_ablation_cts.dir/bench_ablation_cts.cc.o.d"
  "bench_ablation_cts"
  "bench_ablation_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
