# Empty dependencies file for bench_ablation_cts.
# This may be replaced when dependencies are built.
