file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_quality_short.dir/bench_table3_quality_short.cc.o"
  "CMakeFiles/bench_table3_quality_short.dir/bench_table3_quality_short.cc.o.d"
  "bench_table3_quality_short"
  "bench_table3_quality_short.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_quality_short.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
