# Empty dependencies file for bench_table3_quality_short.
# This may be replaced when dependencies are built.
