file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_quality_long.dir/bench_table1_quality_long.cc.o"
  "CMakeFiles/bench_table1_quality_long.dir/bench_table1_quality_long.cc.o.d"
  "bench_table1_quality_long"
  "bench_table1_quality_long.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_quality_long.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
