# Empty dependencies file for bench_table1_quality_long.
# This may be replaced when dependencies are built.
