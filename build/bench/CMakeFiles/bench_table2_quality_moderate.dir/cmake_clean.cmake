file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_quality_moderate.dir/bench_table2_quality_moderate.cc.o"
  "CMakeFiles/bench_table2_quality_moderate.dir/bench_table2_quality_moderate.cc.o.d"
  "bench_table2_quality_moderate"
  "bench_table2_quality_moderate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quality_moderate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
