# Empty dependencies file for bench_table2_quality_moderate.
# This may be replaced when dependencies are built.
