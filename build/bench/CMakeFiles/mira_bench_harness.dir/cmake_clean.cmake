file(REMOVE_RECURSE
  "CMakeFiles/mira_bench_harness.dir/harness.cc.o"
  "CMakeFiles/mira_bench_harness.dir/harness.cc.o.d"
  "libmira_bench_harness.a"
  "libmira_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
