file(REMOVE_RECURSE
  "libmira_bench_harness.a"
)
