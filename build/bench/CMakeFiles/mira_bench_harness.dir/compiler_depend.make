# Empty compiler generated dependencies file for mira_bench_harness.
# This may be replaced when dependencies are built.
