# Empty dependencies file for bench_figure3_performance.
# This may be replaced when dependencies are built.
