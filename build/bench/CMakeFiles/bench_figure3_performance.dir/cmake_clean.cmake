file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_performance.dir/bench_figure3_performance.cc.o"
  "CMakeFiles/bench_figure3_performance.dir/bench_figure3_performance.cc.o.d"
  "bench_figure3_performance"
  "bench_figure3_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
