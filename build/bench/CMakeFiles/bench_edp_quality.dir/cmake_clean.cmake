file(REMOVE_RECURSE
  "CMakeFiles/bench_edp_quality.dir/bench_edp_quality.cc.o"
  "CMakeFiles/bench_edp_quality.dir/bench_edp_quality.cc.o.d"
  "bench_edp_quality"
  "bench_edp_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edp_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
