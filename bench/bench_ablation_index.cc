// Ablation microbenchmarks for the index substrate: HNSW parameter sweeps
// (M, efSearch) and Product Quantization subvector counts — search latency
// plus recall@10 against the exact oracle, and the PQ storage footprint.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <map>
#include <memory>
#include <unordered_set>

#include "common/rng.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/pq_flat_index.h"
#include "vecmath/vector_ops.h"

namespace {

using namespace mira;

constexpr size_t kN = 20000;
constexpr size_t kDim = 128;
constexpr size_t kClusters = 64;
constexpr size_t kK = 10;

const vecmath::Matrix& Data() {
  static const vecmath::Matrix data = [] {
    Rng rng(1234);
    vecmath::Matrix m(kN, kDim);
    vecmath::Matrix centers(kClusters, kDim);
    for (size_t c = 0; c < kClusters; ++c) {
      for (size_t j = 0; j < kDim; ++j) {
        centers.At(c, j) = static_cast<float>(rng.NextGaussian());
      }
      vecmath::NormalizeInPlace(centers.Row(c), kDim);
    }
    for (size_t i = 0; i < kN; ++i) {
      size_t c = i % kClusters;
      for (size_t j = 0; j < kDim; ++j) {
        m.At(i, j) =
            centers.At(c, j) + 0.3f * static_cast<float>(rng.NextGaussian());
      }
      vecmath::NormalizeInPlace(m.Row(i), kDim);
    }
    return m;
  }();
  return data;
}

const index::FlatIndex& Oracle() {
  static const index::FlatIndex& oracle = []() -> index::FlatIndex& {
    static index::FlatIndex flat(vecmath::Metric::kCosine);
    for (size_t i = 0; i < kN; ++i) {
      flat.Add(i, Data().RowVec(i)).Abort("oracle add");
    }
    flat.Build().Abort("oracle build");
    return flat;
  }();
  return oracle;
}

double RecallOf(const std::vector<vecmath::ScoredId>& hits,
                const std::vector<vecmath::ScoredId>& truth) {
  std::unordered_set<uint64_t> expected;
  for (const auto& t : truth) expected.insert(t.id);
  size_t found = 0;
  for (const auto& h : hits) found += expected.count(h.id);
  return expected.empty() ? 1.0
                          : static_cast<double>(found) / expected.size();
}

void BM_FlatSearch(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    vecmath::Vec q = Data().RowVec(rng.NextBounded(kN));
    benchmark::DoNotOptimize(Oracle().Search(q, {kK, 0}).MoveValue());
  }
  state.counters["recall@10"] = 1.0;
  state.counters["MiB"] =
      static_cast<double>(Oracle().MemoryBytes()) / (1 << 20);
}
BENCHMARK(BM_FlatSearch)->Unit(benchmark::kMicrosecond);

// HNSW: efSearch sweep at fixed M, and M sweep at fixed ef.
void BM_HnswSearch(benchmark::State& state) {
  const size_t M = static_cast<size_t>(state.range(0));
  const size_t ef = static_cast<size_t>(state.range(1));
  static std::map<size_t, std::unique_ptr<index::HnswIndex>> cache;
  auto it = cache.find(M);
  if (it == cache.end()) {
    index::HnswOptions options;
    options.M = M;
    options.ef_construction = 150;
    auto idx = std::make_unique<index::HnswIndex>(options);
    for (size_t i = 0; i < kN; ++i) {
      idx->Add(i, Data().RowVec(i)).Abort("hnsw add");
    }
    idx->Build().Abort("hnsw build");
    it = cache.emplace(M, std::move(idx)).first;
  }
  index::HnswIndex& idx = *it->second;

  Rng rng(9);
  double recall = 0;
  size_t queries = 0;
  for (auto _ : state) {
    vecmath::Vec q = Data().RowVec(rng.NextBounded(kN));
    auto hits = idx.Search(q, {kK, ef}).MoveValue();
    benchmark::DoNotOptimize(hits);
    state.PauseTiming();
    recall += RecallOf(hits, Oracle().Search(q, {kK, 0}).MoveValue());
    ++queries;
    state.ResumeTiming();
  }
  state.counters["recall@10"] = recall / static_cast<double>(queries);
  state.counters["MiB"] = static_cast<double>(idx.MemoryBytes()) / (1 << 20);
}
BENCHMARK(BM_HnswSearch)
    ->Args({16, 16})
    ->Args({16, 64})
    ->Args({16, 256})
    ->Args({8, 64})
    ->Args({32, 64})
    ->Unit(benchmark::kMicrosecond);

// PQ subquantizer sweep: latency, recall and compressed footprint.
void BM_PqFlatSearch(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  static std::map<size_t, std::unique_ptr<index::PqFlatIndex>> cache;
  auto it = cache.find(m);
  if (it == cache.end()) {
    index::PqFlatOptions options;
    options.pq.num_subquantizers = m;
    auto idx = std::make_unique<index::PqFlatIndex>(options);
    for (size_t i = 0; i < kN; ++i) {
      idx->Add(i, Data().RowVec(i)).Abort("pq add");
    }
    idx->Build().Abort("pq build");
    it = cache.emplace(m, std::move(idx)).first;
  }
  index::PqFlatIndex& idx = *it->second;

  Rng rng(11);
  double recall = 0;
  size_t queries = 0;
  for (auto _ : state) {
    vecmath::Vec q = Data().RowVec(rng.NextBounded(kN));
    auto hits = idx.Search(q, {kK, 0}).MoveValue();
    benchmark::DoNotOptimize(hits);
    state.PauseTiming();
    recall += RecallOf(hits, Oracle().Search(q, {kK, 0}).MoveValue());
    ++queries;
    state.ResumeTiming();
  }
  state.counters["recall@10"] = recall / static_cast<double>(queries);
  state.counters["MiB"] = static_cast<double>(idx.MemoryBytes()) / (1 << 20);
}
BENCHMARK(BM_PqFlatSearch)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace


// Replaces BENCHMARK_MAIN(): unless the caller passed --benchmark_out, the
// suite writes BENCH_ablation_index.json (into $MIRA_BENCH_JSON_DIR, or the
// working directory) so every bench binary leaves a machine-readable trace.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    const char* dir = std::getenv("MIRA_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/BENCH_ablation_index.json"
                           : "BENCH_ablation_index.json";
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
