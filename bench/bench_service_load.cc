// Latency-under-load harness for the DiscoveryService front-end: drives the
// admission-controlled service over a real (small) engine with closed-loop
// clients (fixed concurrency, each waiting for its response) and an open-loop
// arrival process (fixed offered QPS, submit-and-forget), and emits the
// QPS-vs-p50/p99 curves as BENCH_service_load.json. The interesting regime is
// past saturation: the bounded queue + token buckets must shed with
// kResourceExhausted instead of queueing unboundedly, which keeps the p99 of
// *accepted* requests within a small multiple of the unloaded p99
// (tools/check_bench_service.py gates exactly that in the perf-smoke CI job).
//
//   --quick            CI smoke: smaller corpus, fewer load points, shorter
//                      measurement windows; directionally meaningful only.
//   --debug-server / --hold   the shared serve tail (bench/harness.h), with
//                      the service's /servicez page registered; the hold loop
//                      keeps driving queries through the service so the page
//                      and /querylogz show live shed/evict counters.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/timer.h"
#include "datagen/workload.h"
#include "discovery/engine.h"
#include "harness.h"
#include "obs/query_log.h"
#include "service/discovery_service.h"
#include "service/monitor.h"
#include "vecmath/simd.h"

namespace {

using namespace mira;

struct LoadConfig {
  size_t tables = 400;
  size_t encoder_dim = 192;
  size_t worker_threads = 4;
  size_t max_queue_depth = 4;  // shallow on purpose: shed, don't buffer
  size_t warmup_queries = 8;
  size_t unloaded_queries = 60;
  double window_seconds = 1.0;
  std::vector<size_t> closed_clients = {1, 2, 4, 8, 16};
  std::vector<double> open_multipliers = {0.5, 1.0, 2.0};
};

/// Thread-safe accumulator for one measured load point.
struct PointStats {
  Mutex mu;
  std::vector<double> accepted_ms MIRA_GUARDED_BY(mu);
  uint64_t completed MIRA_GUARDED_BY(mu) = 0;
  uint64_t rejected MIRA_GUARDED_BY(mu) = 0;
  uint64_t evicted MIRA_GUARDED_BY(mu) = 0;
  uint64_t failed MIRA_GUARDED_BY(mu) = 0;
  uint64_t fanout_dispatches MIRA_GUARDED_BY(mu) = 0;

  void Record(const service::ServiceResponse& response) {
    MutexLock lock(mu);
    switch (response.outcome) {
      case service::RequestOutcome::kCompleted:
        ++completed;
        accepted_ms.push_back(response.queue_ms + response.run_ms);
        if (response.mode == service::DispatchMode::kFanOut) {
          ++fanout_dispatches;
        }
        break;
      case service::RequestOutcome::kRejected:
        ++rejected;
        break;
      case service::RequestOutcome::kEvicted:
        ++evicted;
        break;
      case service::RequestOutcome::kFailed:
        ++failed;
        break;
    }
  }
  uint64_t Total() {
    MutexLock lock(mu);
    return completed + rejected + evicted + failed;
  }
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5));
  return values[index];
}

/// Tenants the clients rotate through (round-robin), so the per-tenant
/// metric slices and /tenantz have several distinct rows whose counts must
/// sum to the service totals.
constexpr const char* kTenants[] = {"alpha", "beta", "gamma"};

service::ServiceRequest MakeRequest(const datagen::Workload& workload,
                                    size_t i) {
  service::ServiceRequest request;
  request.tenant = kTenants[i % std::size(kTenants)];
  request.method = discovery::Method::kAnns;
  request.query = workload.queries[i % workload.queries.size()].text;
  request.options.top_k = 10;
  return request;
}

/// Fixed-concurrency clients, each blocking on its own request stream.
void RunClosedLoop(service::DiscoveryService& svc,
                   const datagen::Workload& workload, size_t clients,
                   double window_seconds, PointStats* stats) {
  std::atomic<bool> running{true};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      size_t i = c * 131;  // de-correlate the query streams
      while (running.load(std::memory_order_acquire)) {
        service::ServiceResponse response =
            svc.Search(MakeRequest(workload, i++));
        const bool shed =
            response.outcome == service::RequestOutcome::kRejected;
        const double backoff_ms = response.retry_after_ms;
        stats->Record(std::move(response));
        if (shed && backoff_ms > 0.0) {
          // Honor the service's retry-after hint (capped so short windows
          // still measure): a well-behaved client backs off when shed.
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              std::min(backoff_ms, 20.0)));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(window_seconds));
  running.store(false, std::memory_order_release);
  for (std::thread& t : threads) t.join();
}

/// Fixed-rate arrivals, submit-and-forget: offered load does not slow down
/// when the service does, which is what exposes unbounded queueing.
void RunOpenLoop(service::DiscoveryService& svc,
                 const datagen::Workload& workload, double target_qps,
                 double window_seconds, PointStats* stats) {
  const auto interval = std::chrono::duration<double>(1.0 / target_qps);
  const auto start = std::chrono::steady_clock::now();
  const auto end =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(window_seconds));
  size_t submitted = 0;
  auto next = start;
  while (next < end) {
    std::this_thread::sleep_until(next);
    svc.Submit(MakeRequest(workload, submitted),
               [stats](service::ServiceResponse response) {
                 stats->Record(std::move(response));
               });
    ++submitted;
    next = start + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       interval * static_cast<double>(submitted));
  }
  // Drain: every submitted request gets exactly one callback.
  while (stats->Total() < submitted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void EmitRow(bench::BenchJsonWriter& json, PointStats* stats,
             const std::string& mode, double knob, double window_seconds) {
  std::vector<double> accepted;
  double completed = 0.0;
  double rejected = 0.0;
  double evicted = 0.0;
  double failed = 0.0;
  double fanout = 0.0;
  {
    MutexLock lock(stats->mu);
    accepted = stats->accepted_ms;
    completed = static_cast<double>(stats->completed);
    rejected = static_cast<double>(stats->rejected);
    evicted = static_cast<double>(stats->evicted);
    failed = static_cast<double>(stats->failed);
    fanout = static_cast<double>(stats->fanout_dispatches);
  }
  const double total = completed + rejected + evicted + failed;
  const double p50 = Percentile(accepted, 0.50);
  const double p99 = Percentile(accepted, 0.99);
  json.AddRow();
  json.Set("mode", mode);
  json.Set(mode == "closed" ? "clients" : "target_qps", knob);
  json.Set("offered_qps", total / window_seconds);
  json.Set("completed_qps", completed / window_seconds);
  json.Set("completed", completed);
  json.Set("rejected", rejected);
  json.Set("evicted", evicted);
  json.Set("failed", failed);
  json.Set("shed_fraction", total > 0.0 ? rejected / total : 0.0);
  json.Set("fanout_fraction", completed > 0.0 ? fanout / completed : 0.0);
  json.Set("p50_ms", p50);
  json.Set("p99_ms", p99);
  std::printf("  %-6s %8.1f  offered %8.1f qps  done %8.1f qps  "
              "shed %5.1f%%  p50 %7.2f ms  p99 %7.2f ms\n",
              mode.c_str(), knob, total / window_seconds,
              completed / window_seconds,
              total > 0.0 ? 100.0 * rejected / total : 0.0, p50, p99);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<char*> serve_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      serve_argv.push_back(argv[i]);
    }
  }
  const bench::ServeOptions serve = bench::ParseServeArgs(
      static_cast<int>(serve_argv.size()), serve_argv.data());
  if (serve.parse_error) return 2;

  LoadConfig cfg;
  if (quick) {
    cfg.tables = 150;
    cfg.unloaded_queries = 30;
    cfg.window_seconds = 0.3;
    cfg.closed_clients = {1, 4, 12};
    cfg.open_multipliers = {0.5, 2.0};
  }

  std::printf("service load harness (%zu tables, %zu workers, queue %zu%s)\n",
              cfg.tables, cfg.worker_threads, cfg.max_queue_depth,
              quick ? ", --quick" : "");

  datagen::WorkloadOptions workload_options =
      datagen::WikiTablesWorkload(cfg.tables);
  workload_options.queries.per_class = 8;
  datagen::Workload workload = datagen::Workload::Generate(workload_options);

  discovery::EngineOptions engine_options;
  engine_options.encoder.dim = cfg.encoder_dim;
  engine_options.build_cts = false;  // ANNS only: the serving-path method
  auto engine_result = discovery::DiscoveryEngine::Build(
      workload.corpus.federation, workload.bank.lexicon(), engine_options);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_result).ValueOrDie();

  service::ServiceOptions service_options;
  service_options.worker_threads = cfg.worker_threads;
  service_options.admission.max_queue_depth = cfg.max_queue_depth;
  // Bench tenants are never quota-limited: shedding here must come from the
  // queue bound, i.e. from actual service saturation. Distinct priorities so
  // the priority queues (and the per-tenant priority gauges) are exercised.
  service_options.admission.default_quota.refill_qps = 1e9;
  service_options.admission.default_quota.burst = 1e9;
  int priority = 0;
  for (const char* tenant : kTenants) {
    service::TenantQuota quota = service_options.admission.default_quota;
    quota.priority = priority++;
    service_options.admission.tenant_quotas[tenant] = quota;
  }
  service::DiscoveryService svc(engine.get(), service_options);
  if (Status started = svc.Start(); !started.ok()) {
    std::fprintf(stderr, "service start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  // Warmup, then the unloaded baseline every overload row is judged against.
  for (size_t i = 0; i < cfg.warmup_queries; ++i) {
    (void)svc.Search(MakeRequest(workload, i));
  }
  std::vector<double> unloaded;
  unloaded.reserve(cfg.unloaded_queries);
  for (size_t i = 0; i < cfg.unloaded_queries; ++i) {
    service::ServiceResponse response = svc.Search(MakeRequest(workload, i));
    if (response.outcome == service::RequestOutcome::kCompleted) {
      unloaded.push_back(response.queue_ms + response.run_ms);
    }
  }
  const double unloaded_p50 = Percentile(unloaded, 0.50);
  const double unloaded_p99 = Percentile(unloaded, 0.99);
  double mean_ms = 0.0;
  for (double v : unloaded) mean_ms += v;
  mean_ms /= unloaded.empty() ? 1.0 : static_cast<double>(unloaded.size());
  const double saturation_qps =
      mean_ms > 0.0
          ? static_cast<double>(cfg.worker_threads) * 1000.0 / mean_ms
          : 0.0;
  std::printf("unloaded: p50 %.2f ms  p99 %.2f ms  mean %.2f ms  "
              "(est. saturation %.1f qps)\n\n",
              unloaded_p50, unloaded_p99, mean_ms, saturation_qps);

  // Slow-query promotion threshold anchored at the unloaded median: under
  // overload most runs cross it, so /tracez fills with the promoted traces
  // the latency-histogram exemplars point at.
  obs::QueryLog::Global().SetSlowThresholdMs(std::max(0.05, unloaded_p50));

  // Self-monitoring with bench-scale windows: sub-second buckets and a
  // seconds-long fast window, so the shed-fraction SLO visibly burns and
  // breaches *within* the overload points and recovers during --hold
  // (tools/check_slo.py gates exactly that).
  service::ServiceMonitor::Options monitor_options;
  monitor_options.bucket_seconds = 0.25;
  monitor_options.eval_interval_s = 0.1;
  monitor_options.fast_window_s = 1.5;
  monitor_options.slow_window_s = 4.0;
  monitor_options.latency_threshold_ms = std::max(1.0, unloaded_p99 * 4.0);
  // Tight budget (2% shed) so the saturated load points burn > breach_burn
  // (a 40%+ shed fraction burns 20x) and the breach is unambiguous.
  monitor_options.shed_target_fraction = 0.02;
  monitor_options.tenants.assign(std::begin(kTenants), std::end(kTenants));
  monitor_options.watchdog.interval_s = 0.25;
  service::ServiceMonitor monitor(&svc, monitor_options);
  monitor.Start();

  bench::BenchJsonWriter json("service_load");
  json.SetMeta("tables", static_cast<double>(cfg.tables));
  json.SetMeta("worker_threads", static_cast<double>(cfg.worker_threads));
  json.SetMeta("max_queue_depth", static_cast<double>(cfg.max_queue_depth));
  json.SetMeta("window_seconds", cfg.window_seconds);
  json.SetMeta("unloaded_p50_ms", unloaded_p50);
  json.SetMeta("unloaded_p99_ms", unloaded_p99);
  json.SetMeta("saturation_qps", saturation_qps);
  json.SetMeta("quick", quick ? "true" : "false");
  json.SetMeta("simd_tier", std::string(vecmath::SimdTierName(
                                vecmath::ActiveSimdTier())));

  for (size_t clients : cfg.closed_clients) {
    PointStats stats;
    RunClosedLoop(svc, workload, clients, cfg.window_seconds, &stats);
    EmitRow(json, &stats, "closed", static_cast<double>(clients),
            cfg.window_seconds);
  }
  for (double multiplier : cfg.open_multipliers) {
    const double target_qps = std::max(1.0, saturation_qps * multiplier);
    PointStats stats;
    RunOpenLoop(svc, workload, target_qps, cfg.window_seconds, &stats);
    EmitRow(json, &stats, "open", target_qps, cfg.window_seconds);
  }

  if (Status written = json.Write(); !written.ok()) {
    std::fprintf(stderr, "json write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }

  std::printf("\n%s\n", svc.RenderServicez().c_str());
  std::printf("%s\n", monitor.RenderSlozz().c_str());

  size_t drive_i = 0;
  Status serve_status = bench::ServeAndHold(
      serve, engine.get(),
      [&svc, &workload, &drive_i] {
        (void)svc.Search(MakeRequest(workload, drive_i++));
      },
      [&svc, &monitor](obs::DebugServer& server) {
        svc.RegisterDebugPages(&server);
        monitor.RegisterDebugPages(&server);
      });
  if (!serve_status.ok()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 serve_status.ToString().c_str());
    monitor.Stop();
    svc.Stop();
    return 1;
  }
  monitor.Stop();
  svc.Stop();
  return 0;
}
