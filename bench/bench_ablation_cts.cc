// CTS design-choice ablations (plain table output): cluster-candidate count,
// UMAP target dimensionality, and PQ on/off for ANNS — quality (MAP) and
// mean query latency on a mid-size workload. These probe the design choices
// DESIGN.md calls out rather than reproducing a specific paper artifact.

#include <cstdio>
#include <memory>

#include "common/timer.h"
#include "datagen/workload.h"
#include "discovery/anns_search.h"
#include "discovery/cts_search.h"
#include "discovery/engine.h"
#include "harness.h"
#include "ir/metrics.h"
#include "obs/metrics.h"
#include "vecmath/simd.h"

namespace {

using namespace mira;

struct Fixture {
  datagen::Workload workload;
  std::shared_ptr<const discovery::CorpusEmbeddings> corpus;
  std::shared_ptr<const embed::SemanticEncoder> encoder;
};

Fixture MakeFixture() {
  datagen::WorkloadOptions options = datagen::WikiTablesWorkload(600);
  options.queries.per_class = 10;
  Fixture fx{datagen::Workload::Generate(options), nullptr, nullptr};

  embed::EncoderOptions encoder_options;
  encoder_options.dim = 160;
  auto encoder = std::make_shared<embed::SemanticEncoder>(
      encoder_options, fx.workload.bank.lexicon());
  auto frequencies = std::make_shared<embed::TokenFrequencies>();
  for (const auto& relation : fx.workload.corpus.federation.relations()) {
    frequencies->AddText(relation.ConsolidatedText());
  }
  encoder->SetTokenFrequencies(std::move(frequencies));
  fx.encoder = encoder;

  ThreadPool pool;
  fx.corpus = std::make_shared<const discovery::CorpusEmbeddings>(
      discovery::CorpusEmbeddings::Build(fx.workload.corpus.federation,
                                         *encoder, &pool)
          .MoveValue());
  return fx;
}

struct Outcome {
  double map;
  double mean_ms;
  double p50_ms;
  double p99_ms;
};

Outcome Evaluate(const Fixture& fx, const discovery::Searcher& searcher) {
  discovery::DiscoveryOptions options;
  options.top_k = 100;
  std::unordered_map<ir::QueryId, std::vector<ir::DocId>> run;
  obs::Histogram latency;
  searcher.Search(fx.workload.queries.front().text, options).MoveValue();
  for (const auto& query : fx.workload.queries) {
    WallTimer timer;
    auto ranking = searcher.Search(query.text, options).MoveValue();
    latency.Record(timer.ElapsedMillis());
    std::vector<ir::DocId> docs;
    for (const auto& hit : ranking) docs.push_back(hit.relation);
    run[query.id] = std::move(docs);
  }
  obs::Histogram::Snapshot snapshot = latency.TakeSnapshot();
  return {ir::Evaluate(fx.workload.qrels, run).map, snapshot.mean(),
          snapshot.p50(), snapshot.p99()};
}

}  // namespace

int main() {
  Fixture fx = MakeFixture();
  std::printf("CTS/ANNS design ablations (600 tables, %zu cells, dim 160)\n\n",
              fx.corpus->num_cells());

  bench::BenchJsonWriter json("ablation_cts");
  json.SetMeta("tables", 600.0);
  json.SetMeta("dim", 160.0);
  json.SetMeta("cells", static_cast<double>(fx.corpus->num_cells()));
  json.SetMeta("simd_tier", std::string(vecmath::SimdTierName(
                                vecmath::ActiveSimdTier())));
  auto record = [&json](const std::string& sweep, double value,
                        const Outcome& out) {
    json.AddRow();
    json.Set("sweep", sweep);
    json.Set("value", value);
    json.Set("map", out.map);
    json.Set("mean_query_ms", out.mean_ms);
    json.Set("p50_ms", out.p50_ms);
    json.Set("p99_ms", out.p99_ms);
  };

  // --- cluster_candidates sweep ---
  std::printf("%-34s %8s %10s %10s\n", "configuration", "MAP", "ms/query",
              "clusters");
  for (size_t candidates : {2, 4, 8, 16, 32}) {
    discovery::CtsOptions options;
    options.cluster_candidates = candidates;
    auto cts = discovery::CtsSearcher::Build(fx.workload.corpus.federation,
                                             fx.corpus, fx.encoder, options)
                   .MoveValue();
    Outcome out = Evaluate(fx, *cts);
    std::printf("CTS cluster_candidates=%-12zu %8.3f %10.3f %10zu\n",
                candidates, out.map, out.mean_ms, cts->num_clusters());
    record("cluster_candidates", static_cast<double>(candidates), out);
  }
  std::printf("\n");

  // --- UMAP target dimension sweep ---
  for (size_t dim : {2, 5, 10}) {
    discovery::CtsOptions options;
    options.umap.target_dim = dim;
    auto cts = discovery::CtsSearcher::Build(fx.workload.corpus.federation,
                                             fx.corpus, fx.encoder, options)
                   .MoveValue();
    Outcome out = Evaluate(fx, *cts);
    std::printf("CTS umap_dim=%-21zu %8.3f %10.3f %10zu\n", dim, out.map,
                out.mean_ms, cts->num_clusters());
    record("umap_dim", static_cast<double>(dim), out);
  }
  std::printf("\n");

  // --- HDBSCAN min_cluster_size sweep ---
  for (size_t mcs : {4, 8, 16, 32}) {
    discovery::CtsOptions options;
    options.hdbscan.min_cluster_size = mcs;
    auto cts = discovery::CtsSearcher::Build(fx.workload.corpus.federation,
                                             fx.corpus, fx.encoder, options)
                   .MoveValue();
    Outcome out = Evaluate(fx, *cts);
    std::printf("CTS min_cluster_size=%-13zu %8.3f %10.3f %10zu\n", mcs,
                out.map, out.mean_ms, cts->num_clusters());
    record("min_cluster_size", static_cast<double>(mcs), out);
  }
  std::printf("\n");

  // --- ANNS with and without PQ compression ---
  for (bool use_pq : {true, false}) {
    discovery::AnnsOptions options;
    options.use_pq = use_pq;
    auto anns = discovery::AnnsSearcher::Build(fx.workload.corpus.federation,
                                               fx.corpus, fx.encoder, options)
                    .MoveValue();
    Outcome out = Evaluate(fx, *anns);
    std::printf("ANNS pq=%-26s %8.3f %10.3f %9.1fMB\n",
                use_pq ? "on (paper config)" : "off", out.map, out.mean_ms,
                static_cast<double>(anns->IndexMemoryBytes()) / (1 << 20));
    record("anns_pq", use_pq ? 1.0 : 0.0, out);
  }
  std::printf("\n");

  // --- ExS faithful vs cached embeddings ---
  for (bool cached : {false, true}) {
    discovery::ExsOptions options;
    options.reuse_corpus_embeddings = cached;
    discovery::ExhaustiveSearcher exs(&fx.workload.corpus.federation, fx.corpus,
                                      fx.encoder, options);
    Outcome out = Evaluate(fx, exs);
    std::printf("ExS %-30s %8.3f %10.3f\n",
                cached ? "cached embeddings (ablation)" : "per-query embedding",
                out.map, out.mean_ms);
    record("exs_cached", cached ? 1.0 : 0.0, out);
  }
  json.Write().Abort("bench json");
  return 0;
}
