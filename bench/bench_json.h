#ifndef MIRA_BENCH_BENCH_JSON_H_
#define MIRA_BENCH_BENCH_JSON_H_

// Machine-readable results alongside the text tables: every bench binary
// writes a `BENCH_<name>.json` file (into $MIRA_BENCH_JSON_DIR, or the
// working directory when unset) so perf trajectories can be tracked across
// commits. Layout:
//
//   {"bench": "<name>",
//    "meta": {"key": value, ...},           // config, dispatch tier, ...
//    "rows": [{"key": value, ...}, ...]}    // one object per measurement
//
// Values are strings or doubles (non-finite doubles serialize as null).

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace mira::bench {

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  void SetMeta(const std::string& key, const std::string& value);
  void SetMeta(const std::string& key, double value);

  /// Starts a new row; subsequent Set() calls fill it.
  void AddRow();
  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, double value);

  /// Serializes the document (pretty-printed, one row per line).
  std::string Render() const;

  /// Writes BENCH_<name>.json; the directory is $MIRA_BENCH_JSON_DIR or cwd.
  [[nodiscard]] Status Write() const;

 private:
  using Value = std::variant<std::string, double>;
  using Fields = std::vector<std::pair<std::string, Value>>;

  std::string bench_name_;
  Fields meta_;
  std::vector<Fields> rows_;
};

}  // namespace mira::bench

#endif  // MIRA_BENCH_BENCH_JSON_H_
