// Reproduces Table 3: quality of short query results.

#include "harness.h"

int main() {
  mira::bench::Harness harness;
  harness.PrintQualityTable("Table 3: Quality of short query results",
                            mira::datagen::QueryClass::kShort);
  harness.WriteJson("table3_quality_short").Abort("bench json");
  return 0;
}
