#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/debug_server.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "vecmath/simd.h"

namespace mira::bench {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonValue(const std::variant<std::string, double>& value,
                     std::string* out) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    AppendJsonString(*s, out);
  } else {
    double d = std::get<double>(value);
    // JSON has no Inf/NaN literals.
    *out += std::isfinite(d) ? StrFormat("%.12g", d) : "null";
  }
}

void AppendJsonObject(
    const std::vector<std::pair<std::string, std::variant<std::string, double>>>&
        fields,
    std::string* out) {
  out->push_back('{');
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendJsonString(fields[i].first, out);
    *out += ": ";
    AppendJsonValue(fields[i].second, out);
  }
  out->push_back('}');
}

}  // namespace

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchJsonWriter::SetMeta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, value);
}

void BenchJsonWriter::SetMeta(const std::string& key, double value) {
  meta_.emplace_back(key, value);
}

void BenchJsonWriter::AddRow() { rows_.emplace_back(); }

void BenchJsonWriter::Set(const std::string& key, const std::string& value) {
  MIRA_CHECK(!rows_.empty());
  rows_.back().emplace_back(key, value);
}

void BenchJsonWriter::Set(const std::string& key, double value) {
  MIRA_CHECK(!rows_.empty());
  rows_.back().emplace_back(key, value);
}

std::string BenchJsonWriter::Render() const {
  std::string out = "{\n  \"bench\": ";
  AppendJsonString(bench_name_, &out);
  out += ",\n  \"meta\": ";
  AppendJsonObject(meta_, &out);
  out += ",\n  \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    AppendJsonObject(rows_[i], &out);
  }
  out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

Status BenchJsonWriter::Write() const {
  const char* dir = std::getenv("MIRA_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/BENCH_" + bench_name_ + ".json"
                         : "BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << Render();
  if (!out.good()) return Status::IoError("write failed: " + path);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  return Status::OK();
}

HarnessConfig HarnessConfig::FromEnv() {
  HarnessConfig config;
  config.ld_tables = EnvSize("MIRA_BENCH_TABLES", config.ld_tables);
  config.encoder_dim = EnvSize("MIRA_BENCH_DIM", config.encoder_dim);
  config.queries_per_class =
      EnvSize("MIRA_BENCH_QUERIES", config.queries_per_class);
  const char* edp = std::getenv("MIRA_BENCH_EDP");
  if (edp != nullptr && edp[0] == '1') config.edp_flavor = true;
  return config;
}

const std::vector<std::string>& MethodStack::MethodNames() {
  static const std::vector<std::string> kNames = {"CTS", "ANNS", "ExS", "MDR",
                                                  "WS",  "TCS",  "AdH", "TML"};
  return kNames;
}

std::unique_ptr<MethodStack> MethodStack::Build(
    const datagen::Workload& workload, const datagen::Workload::View& view,
    const HarnessConfig& config) {
  auto stack = std::make_unique<MethodStack>();

  // Proposed methods: mpnet-grade encoder, faithful ExS.
  discovery::EngineOptions engine_options;
  engine_options.encoder.dim = config.encoder_dim;
  engine_options.cts.umap.n_epochs = 120;
  stack->engine_ = discovery::DiscoveryEngine::Build(
                       view.federation, workload.bank.lexicon(), engine_options)
                       .MoveValue();

  // Baselines: shared field statistics and a weaker semantic model (the
  // comparison systems use vanilla BERT / word-embedding-era encoders).
  stack->stats_ = baselines::CorpusFieldStats::Build(view.federation);
  embed::EncoderOptions baseline_encoder_options = engine_options.encoder;
  baseline_encoder_options.concept_blend = config.baseline_concept_blend;
  stack->baseline_encoder_ = std::make_shared<embed::SemanticEncoder>(
      baseline_encoder_options, workload.bank.lexicon());
  {
    auto frequencies = std::make_shared<embed::TokenFrequencies>();
    for (const auto& relation : view.federation.relations()) {
      frequencies->AddText(relation.ConsolidatedText());
    }
    stack->baseline_encoder_->SetTokenFrequencies(std::move(frequencies));
  }

  // Training pairs for WS/TCS from the training split of the queries: all
  // positive judgments plus a spread of explicit negatives.
  size_t train_per_class = static_cast<size_t>(
      config.train_fraction * static_cast<double>(config.queries_per_class));
  std::map<int, size_t> seen_per_class;
  std::vector<baselines::TrainingPair> training;
  for (const auto& query : workload.queries) {
    if (seen_per_class[static_cast<int>(query.cls)]++ >= train_per_class) {
      continue;
    }
    for (table::RelationId t = 0; t < view.federation.size(); ++t) {
      int grade = view.qrels.Grade(query.id, t);
      if (grade > 0 || t % 29 == 0) {
        training.push_back({query.text, t, grade});
      }
    }
  }

  stack->mdr_ = std::make_unique<baselines::MdrSearcher>(stack->stats_);
  stack->ws_ = baselines::WsSearcher::Build(stack->stats_, training).MoveValue();
  stack->tcs_ = baselines::TcsSearcher::Build(stack->stats_,
                                              stack->baseline_encoder_,
                                              view.federation, training)
                    .MoveValue();
  stack->adh_ = std::make_unique<baselines::AdhSearcher>(
      view.federation, stack->stats_, stack->baseline_encoder_);
  stack->tml_ = std::make_unique<baselines::TmlSearcher>(
      view.federation, stack->stats_, stack->baseline_encoder_);
  return stack;
}

const discovery::Searcher* MethodStack::Get(const std::string& method) const {
  if (method == "ExS") return engine_->searcher(discovery::Method::kExhaustive);
  if (method == "ANNS") return engine_->searcher(discovery::Method::kAnns);
  if (method == "CTS") return engine_->searcher(discovery::Method::kCts);
  if (method == "MDR") return mdr_.get();
  if (method == "WS") return ws_.get();
  if (method == "TCS") return tcs_.get();
  if (method == "AdH") return adh_.get();
  if (method == "TML") return tml_.get();
  return nullptr;
}

Harness::Harness(HarnessConfig config)
    : config_(config),
      workload_(datagen::Workload::Generate([&] {
        datagen::WorkloadOptions options =
            config.edp_flavor ? datagen::EdpWorkload(config.ld_tables)
                              : datagen::WikiTablesWorkload(config.ld_tables);
        options.queries.per_class = config.queries_per_class;
        return options;
      }())) {}

const datagen::Workload::View& Harness::ViewFor(const Partition& partition) {
  auto it = views_.find(partition.name);
  if (it == views_.end()) {
    it = views_
             .emplace(partition.name,
                      workload_.MakeView(partition.fraction, config_.seed))
             .first;
  }
  return it->second;
}

MethodStack* Harness::StackFor(const Partition& partition) {
  auto it = stacks_.find(partition.name);
  if (it == stacks_.end()) {
    std::fprintf(stderr, "[harness] building %s partition (%zu tables)...\n",
                 partition.name.c_str(),
                 ViewFor(partition).federation.size());
    WallTimer timer;
    auto stack = MethodStack::Build(workload_, ViewFor(partition), config_);
    std::fprintf(stderr, "[harness] %s ready in %.1fs\n",
                 partition.name.c_str(), timer.ElapsedSeconds());
    it = stacks_.emplace(partition.name, std::move(stack)).first;
  }
  return it->second.get();
}

std::vector<datagen::GeneratedQuery> Harness::EvalQueries(
    datagen::QueryClass cls) const {
  size_t train_per_class = static_cast<size_t>(
      config_.train_fraction * static_cast<double>(config_.queries_per_class));
  std::vector<datagen::GeneratedQuery> out;
  size_t seen = 0;
  for (const auto& query : workload_.queries) {
    if (query.cls != cls) continue;
    if (seen++ < train_per_class) continue;
    out.push_back(query);
  }
  return out;
}

std::vector<MethodRun> Harness::RunClass(const Partition& partition,
                                         datagen::QueryClass cls) {
  MethodStack* stack = StackFor(partition);
  const datagen::Workload::View& view = ViewFor(partition);
  std::vector<datagen::GeneratedQuery> queries = EvalQueries(cls);

  // Sub-qrels over the evaluation queries only (positives suffice; unjudged
  // documents count as irrelevant).
  ir::Qrels qrels;
  for (const auto& query : queries) {
    for (table::RelationId t = 0; t < view.federation.size(); ++t) {
      int grade = view.qrels.Grade(query.id, t);
      if (grade > 0) qrels.Add(query.id, t, grade);
    }
  }

  discovery::DiscoveryOptions options;
  options.top_k = config_.eval_depth;

  std::vector<MethodRun> runs;
  for (const std::string& method : MethodStack::MethodNames()) {
    const discovery::Searcher* searcher = stack->Get(method);
    std::unordered_map<ir::QueryId, std::vector<ir::DocId>> run;
    obs::Histogram latency;
    // Warm-up query (cache fills, first-touch effects).
    searcher->Search(queries.front().text, options).MoveValue();
    for (const auto& query : queries) {
      WallTimer timer;
      auto ranking = searcher->Search(query.text, options).MoveValue();
      latency.Record(timer.ElapsedMillis());
      std::vector<ir::DocId> docs;
      docs.reserve(ranking.size());
      for (const auto& hit : ranking) docs.push_back(hit.relation);
      run[query.id] = std::move(docs);
    }
    obs::Histogram::Snapshot snapshot = latency.TakeSnapshot();
    MethodRun result;
    result.method = method;
    result.quality = ir::Evaluate(qrels, run);
    result.mean_query_ms = snapshot.mean();
    result.p50_ms = snapshot.p50();
    result.p90_ms = snapshot.p90();
    result.p99_ms = snapshot.p99();
    recorded_.push_back(
        {partition.name, std::string(datagen::QueryClassToString(cls)), result});
    runs.push_back(std::move(result));
  }
  return runs;
}

Status Harness::WriteJson(const std::string& bench_name) const {
  BenchJsonWriter writer(bench_name);
  writer.SetMeta("ld_tables", static_cast<double>(config_.ld_tables));
  writer.SetMeta("dim", static_cast<double>(config_.encoder_dim));
  writer.SetMeta("queries_per_class",
                 static_cast<double>(config_.queries_per_class));
  writer.SetMeta("eval_depth", static_cast<double>(config_.eval_depth));
  writer.SetMeta("corpus", config_.edp_flavor ? "edp" : "wikitables");
  writer.SetMeta("simd_tier",
                 std::string(vecmath::SimdTierName(vecmath::ActiveSimdTier())));
  for (const RecordedRun& rec : recorded_) {
    writer.AddRow();
    writer.Set("partition", rec.partition);
    writer.Set("class", rec.cls);
    writer.Set("method", rec.run.method);
    writer.Set("map", rec.run.quality.map);
    writer.Set("mrr", rec.run.quality.mrr);
    auto ndcg10 = rec.run.quality.ndcg.find(10);
    if (ndcg10 != rec.run.quality.ndcg.end()) {
      writer.Set("ndcg@10", ndcg10->second);
    }
    writer.Set("mean_query_ms", rec.run.mean_query_ms);
    writer.Set("p50_ms", rec.run.p50_ms);
    writer.Set("p90_ms", rec.run.p90_ms);
    writer.Set("p99_ms", rec.run.p99_ms);
  }
  return writer.Write();
}

void Harness::PrintQualityTable(const std::string& title,
                                datagen::QueryClass cls) {
  std::printf("%s\n", title.c_str());
  std::printf("(corpus: %zu tables LD; dim %zu; %zu eval queries/class)\n\n",
              config_.ld_tables, config_.encoder_dim, EvalQueries(cls).size());
  std::printf("%-8s %-6s %7s %7s %8s %8s %8s %8s\n", "Dataset", "Method",
              "MAP", "MRR", "NDCG@5", "NDCG@10", "NDCG@15", "NDCG@20");
  for (const Partition& partition : Partitions()) {
    std::vector<MethodRun> runs = RunClass(partition, cls);
    std::sort(runs.begin(), runs.end(),
              [](const MethodRun& a, const MethodRun& b) {
                return a.quality.map > b.quality.map;
              });
    for (const MethodRun& run : runs) {
      std::printf("%-8s %-6s %7.3f %7.3f %8.3f %8.3f %8.3f %8.3f\n",
                  partition.name.c_str(), run.method.c_str(), run.quality.map,
                  run.quality.mrr, run.quality.ndcg.at(5),
                  run.quality.ndcg.at(10), run.quality.ndcg.at(15),
                  run.quality.ndcg.at(20));
    }
    std::printf("\n");
  }
}

void Harness::PrintQueryTimeTable() {
  std::printf("Table 4: Query Time (milliseconds) for CTS vs. ANNS\n");
  std::printf("(corpus: %zu tables LD; dim %zu)\n\n", config_.ld_tables,
              config_.encoder_dim);
  std::printf("%-8s %-10s %10s %10s\n", "Dataset", "Query", "CTS", "ANNS");
  struct ClassRow {
    datagen::QueryClass cls;
    const char* label;
  };
  const ClassRow rows[] = {{datagen::QueryClass::kLong, "Long"},
                           {datagen::QueryClass::kModerate, "Moderate"},
                           {datagen::QueryClass::kShort, "Short"}};
  for (const Partition& partition : Partitions()) {
    for (const ClassRow& row : rows) {
      std::vector<MethodRun> runs = RunClass(partition, row.cls);
      double cts = 0, anns = 0;
      for (const MethodRun& run : runs) {
        if (run.method == "CTS") cts = run.mean_query_ms;
        if (run.method == "ANNS") anns = run.mean_query_ms;
      }
      std::printf("%-8s %-10s %10.2f %10.2f\n", partition.name.c_str(),
                  row.label, cts, anns);
    }
  }
  std::printf("\n");
}

void Harness::PrintPerformanceFigure() {
  std::printf("Figure 3: Mean query time (ms) of all methods\n");
  std::printf("(corpus: %zu tables LD; dim %zu)\n\n", config_.ld_tables,
              config_.encoder_dim);
  struct ClassRow {
    datagen::QueryClass cls;
    const char* label;
  };
  const ClassRow rows[] = {{datagen::QueryClass::kLong, "long"},
                           {datagen::QueryClass::kModerate, "moderate"},
                           {datagen::QueryClass::kShort, "short"}};
  std::printf("%-8s %-10s", "Dataset", "Query");
  for (const auto& name : MethodStack::MethodNames()) {
    std::printf(" %9s", name.c_str());
  }
  std::printf("\n");
  for (const Partition& partition : Partitions()) {
    for (const ClassRow& row : rows) {
      std::vector<MethodRun> runs = RunClass(partition, row.cls);
      std::printf("%-8s %-10s", partition.name.c_str(), row.label);
      for (const auto& name : MethodStack::MethodNames()) {
        for (const MethodRun& run : runs) {
          if (run.method == name) std::printf(" %9.2f", run.mean_query_ms);
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

Status Harness::WriteChromeTrace(const std::string& bench_name,
                                 const Partition& partition,
                                 datagen::QueryClass cls, size_t max_queries) {
  if (!obs::kObsEnabled) return Status::OK();
  MethodStack* stack = StackFor(partition);
  std::vector<datagen::GeneratedQuery> queries = EvalQueries(cls);
  if (queries.size() > max_queries) queries.resize(max_queries);
  discovery::DiscoveryOptions options;
  options.top_k = config_.eval_depth;

  obs::ChromeTraceWriter writer;
  for (discovery::Method method :
       {discovery::Method::kCts, discovery::Method::kAnns,
        discovery::Method::kExhaustive}) {
    for (const auto& query : queries) {
      auto traced =
          stack->engine().SearchTraced(method, query.text, options).MoveValue();
      obs::TraceAnnotations annotations;
      annotations.method = std::string(discovery::MethodToString(method));
      annotations.degraded = traced.ranking.degraded;
      annotations.partial = traced.ranking.partial;
      writer.AddQuery(traced.trace, annotations);
    }
  }

  const char* dir = std::getenv("MIRA_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/TRACE_" + bench_name + ".json"
                         : "TRACE_" + bench_name + ".json";
  MIRA_RETURN_NOT_OK(writer.WriteFile(path));
  std::fprintf(stderr, "[bench] wrote %s (%zu queries, %zu events)\n",
               path.c_str(), writer.num_queries(), writer.num_events());
  return Status::OK();
}

void Harness::PrintSpanBreakdown(const Partition& partition,
                                 datagen::QueryClass cls) {
  if (!obs::kObsEnabled) {
    std::printf("(span breakdown unavailable: built with MIRA_OBS=OFF)\n\n");
    return;
  }
  MethodStack* stack = StackFor(partition);
  std::vector<datagen::GeneratedQuery> queries = EvalQueries(cls);
  discovery::DiscoveryOptions options;
  options.top_k = config_.eval_depth;

  std::printf("Span breakdown (%s partition, %s queries; mean over %zu runs)\n",
              partition.name.c_str(),
              std::string(datagen::QueryClassToString(cls)).c_str(),
              queries.size());
  const double denom = static_cast<double>(queries.size());
  struct SpanAgg {
    int32_t depth = 0;
    double total_ms = 0.0;
    std::map<std::string, int64_t> counters;  // summed over queries
  };
  for (const char* method_name : {"CTS", "ANNS", "ExS"}) {
    discovery::Method method = std::string(method_name) == "CTS"
                                   ? discovery::Method::kCts
                               : std::string(method_name) == "ANNS"
                                   ? discovery::Method::kAnns
                                   : discovery::Method::kExhaustive;
    std::vector<std::string> order;  // first-occurrence span order
    std::map<std::string, SpanAgg> spans;
    for (const auto& query : queries) {
      auto traced =
          stack->engine().SearchTraced(method, query.text, options).MoveValue();
      for (const obs::SpanRecord& span : traced.trace.spans()) {
        auto [it, inserted] = spans.try_emplace(span.name);
        if (inserted) {
          order.push_back(span.name);
          it->second.depth = span.depth;
        }
        it->second.total_ms += span.duration_ms;
        for (const obs::SpanCounter& counter : span.counters) {
          it->second.counters[counter.key] += counter.value;
        }
      }
    }
    std::printf("  %s\n", method_name);
    for (const std::string& name : order) {
      const SpanAgg& agg = spans.at(name);
      std::printf("    %*s%-28s %9.3f ms", agg.depth * 2, "", name.c_str(),
                  agg.total_ms / denom);
      for (const auto& [key, value] : agg.counters) {
        std::printf("  %s=%.1f", key.c_str(),
                    static_cast<double>(value) / denom);
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

const discovery::DiscoveryEngine& Harness::EngineFor(
    const Partition& partition) {
  return StackFor(partition)->engine();
}

namespace {

/// Set by SIGINT/SIGTERM while a --hold loop runs; plain sig_atomic_t is the
/// whole async-signal-safe contract we need.
volatile std::sig_atomic_t g_serve_stop = 0;

void ServeStopHandler(int /*signum*/) { g_serve_stop = 1; }

}  // namespace

ServeOptions ParseServeArgs(int argc, char** argv) {
  ServeOptions out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--debug-server") {
      out.server = true;
    } else if (StartsWith(arg, "--debug-server=")) {
      const long port = std::atol(arg.c_str() + std::strlen("--debug-server="));
      if (port < 0 || port > 65535) {
        std::fprintf(stderr, "%s: port out of range in %s\n", argv[0],
                     arg.c_str());
        out.parse_error = true;
        continue;
      }
      out.server = true;
      out.port = static_cast<uint16_t>(port);
    } else if (arg == "--hold") {
      out.hold = true;
    } else if (StartsWith(arg, "--hold=")) {
      out.hold = true;
      out.hold_seconds = std::atof(arg.c_str() + std::strlen("--hold="));
    } else {
      std::fprintf(stderr,
                   "%s: unknown argument %s\n"
                   "usage: %s [--debug-server[=PORT]] [--hold[=SECONDS]]\n",
                   argv[0], arg.c_str(), argv[0]);
      out.parse_error = true;
    }
  }
  return out;
}

Status ServeAndHold(const ServeOptions& options,
                    const discovery::DiscoveryEngine* engine,
                    const std::function<void()>& drive) {
  return ServeAndHold(options, engine, drive, nullptr);
}

Status ServeAndHold(const ServeOptions& options,
                    const discovery::DiscoveryEngine* engine,
                    const std::function<void()>& drive,
                    const std::function<void(obs::DebugServer&)>& configure) {
  if (!options.server && !options.hold) return Status::OK();

  obs::DebugServer server;
  if (options.server) {
    obs::DebugServerOptions server_options;
    server_options.port = options.port;
    if (engine != nullptr) {
      server.AddCollector([engine] { engine->PublishResourceMetrics(); });
    }
    server.AddStatusSection("SIMD dispatch", [] {
      return "active tier: " +
             std::string(vecmath::SimdTierName(vecmath::ActiveSimdTier()));
    });
    if (configure) configure(server);
    MIRA_RETURN_NOT_OK(server.Start(server_options));
    // The scrape harness (tools/check_debugz.py) parses this line for the
    // resolved port; keep the format stable.
    std::fprintf(stderr, "[bench] debugz listening on http://127.0.0.1:%u/\n",
                 static_cast<unsigned>(server.port()));
  }
  if (!options.hold) {
    if (options.server) {
      std::fprintf(stderr,
                   "[bench] --debug-server without --hold: the process (and "
                   "server) exits now\n");
    }
    return Status::OK();
  }

  // Make the hold workload land on every page: promote any traced query a
  // hair over trivial as a slow trace so /tracez has content to serve.
  if (obs::kObsEnabled && obs::QueryLog::Global().slow_threshold_ms() <= 0.0) {
    obs::QueryLog::Global().SetSlowThresholdMs(0.05);
  }

  g_serve_stop = 0;
  using SignalHandler = void (*)(int);
  SignalHandler previous_int = std::signal(SIGINT, &ServeStopHandler);
  SignalHandler previous_term = std::signal(SIGTERM, &ServeStopHandler);
  const bool bounded = options.hold_seconds > 0.0;
  if (bounded) {
    std::fprintf(stderr, "[bench] holding for %.1fs under query load\n",
                 options.hold_seconds);
  } else {
    std::fprintf(stderr,
                 "[bench] holding under query load until SIGINT/SIGTERM\n");
  }

  WallTimer timer;
  uint64_t iterations = 0;
  while (g_serve_stop == 0) {
    if (bounded && timer.ElapsedMillis() >= options.hold_seconds * 1000.0) {
      break;
    }
    if (drive) {
      drive();
    } else {
      // No workload supplied: stay alive (but note /profilez will capture
      // nothing — ITIMER_PROF needs the process to burn CPU).
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ++iterations;
  }
  std::signal(SIGINT, previous_int);
  std::signal(SIGTERM, previous_term);
  std::fprintf(stderr,
               "[bench] hold finished after %llu workload iteration(s)\n",
               static_cast<unsigned long long>(iterations));
  return Status::OK();
}

}  // namespace mira::bench
