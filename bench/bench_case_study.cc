// Reproduces the §5.3 case study: for the query "Climate Change Effects
// Europe 2020", ExS's whole-table averaging favors broad "global climate"
// tables, while CTS's cluster-targeted search pins the Europe-2020-specific
// tables to the top.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/concept_bank.h"
#include "discovery/engine.h"
#include "discovery/exhaustive_search.h"
#include "harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "vecmath/simd.h"

namespace {

using namespace mira;

struct CaseStudy {
  table::Federation federation;
  std::shared_ptr<embed::Lexicon> lexicon;
  std::vector<std::string> names;
  std::vector<int> relevance;  // 2 = europe-2020 specific, 1 = related, 0 = no
};

// Climate lexicon: the "europe effects" aspect vs sibling aspects.
CaseStudy MakeCaseStudy() {
  CaseStudy cs;
  cs.lexicon = std::make_shared<embed::Lexicon>();
  int32_t climate = cs.lexicon->AddTopic("climate");
  int32_t europe = cs.lexicon->AddAspect(climate, "europe_effects");
  int32_t global = cs.lexicon->AddAspect(climate, "global_trends");
  int32_t policy = cs.lexicon->AddAspect(climate, "policy");

  auto add_concept = [&](int32_t aspect, const char* name,
                     std::initializer_list<const char*> surfaces) {
    int32_t id = cs.lexicon->AddConcept(cs.lexicon->TopicOfAspect(aspect),
                                        name, aspect);
    for (const char* s : surfaces) cs.lexicon->AddSurface(id, s);
  };
  add_concept(europe, "climate_change",
          {"climate", "warming", "climate-change"});
  add_concept(europe, "europe", {"europe", "european", "eu"});
  add_concept(europe, "heatwave", {"heatwave", "heat-wave", "canicule"});
  add_concept(europe, "drought", {"drought", "aridity"});
  add_concept(global, "global", {"global", "worldwide", "planetary"});
  add_concept(global, "emissions", {"emissions", "co2", "greenhouse"});
  add_concept(global, "sea_level", {"sea-level", "ocean-rise"});
  add_concept(policy, "agreement", {"agreement", "accord", "treaty"});
  add_concept(policy, "target", {"target", "pledge", "commitment"});

  auto add = [&](const char* name, int grade,
                 std::vector<std::string> schema,
                 std::vector<std::vector<std::string>> rows) {
    table::Relation r;
    r.name = name;
    r.schema = std::move(schema);
    for (auto& row : rows) r.AddRow(std::move(row)).Abort("case study");
    cs.federation.AddRelation(std::move(r));
    cs.names.emplace_back(name);
    cs.relevance.push_back(grade);
  };

  // The targets: Europe-specific 2020 effects tables.
  add("EuropeEffects2020", 2, {"Region", "Year", "Event", "Impact"},
      {{"europe", "2020", "heatwave", "severe"},
       {"european", "2020", "drought", "moderate"},
       {"eu", "2020", "warming", "high"}});
  add("EuropeDamage2020", 2, {"Country", "Year", "Effect", "Cost"},
      {{"european", "2020", "heatwave", "4.1"},
       {"europe", "2020", "aridity", "2.7"}});

  // Distractor 1 (the §5.3 trap): a broad global almanac whose *every* cell
  // is climate vocabulary — under whole-table averaging it looks great.
  add("GlobalClimateAlmanac", 1, {"Theme", "Note"},
      {{"global", "warming"},
       {"planetary", "emissions"},
       {"worldwide", "co2"},
       {"greenhouse", "sea-level"},
       {"climate", "ocean-rise"}});

  // Distractor 2: Europe, wrong decade.
  add("EuropeEffects1995", 1, {"Region", "Year", "Event"},
      {{"europe", "1995", "heatwave"}, {"european", "1996", "drought"}});

  // Distractor 3: policy table, 2020 but no effects.
  add("ClimatePolicy2020", 1, {"Year", "Instrument"},
      {{"2020", "accord"}, {"2020", "pledge"}, {"2021", "treaty"}});

  // Irrelevant tables.
  add("FootballResults", 0, {"Team", "Points"},
      {{"harriers", "42"}, {"rovers", "38"}, {"wanderers", "35"}});
  add("RecipeBook", 0, {"Dish", "Minutes"},
      {{"goulash", "90"}, {"paella", "45"}, {"risotto", "35"}});

  // Distractor bulk: two foreign topics plus random-vocabulary tables, so
  // the candidate budgets of ANNS/CTS actually select (on a corpus this is
  // what separates mean-of-retrieved from whole-table averaging).
  int32_t sports = cs.lexicon->AddTopic("sports");
  int32_t leagues = cs.lexicon->AddAspect(sports, "leagues");
  add_concept(leagues, "club", {"club", "team", "squad"});
  add_concept(leagues, "match", {"match", "fixture", "derby"});
  int32_t economy = cs.lexicon->AddTopic("economy");
  int32_t markets = cs.lexicon->AddAspect(economy, "markets");
  add_concept(markets, "stock", {"stock", "equity", "share"});
  add_concept(markets, "rate", {"rate", "yield", "interest"});

  Rng rng(777);
  const std::vector<std::string> pools[2] = {
      {"club", "team", "squad", "match", "fixture", "derby"},
      {"stock", "equity", "share", "rate", "yield", "interest"}};
  for (int t = 0; t < 50; ++t) {
    table::Relation r;
    r.name = "distractor_" + std::to_string(t);
    r.schema = {datagen::MakePseudoWord(&rng, 2),
                datagen::MakePseudoWord(&rng, 2),
                datagen::MakePseudoWord(&rng, 2)};
    const auto& pool = pools[t % 2];
    for (int row = 0; row < 5; ++row) {
      r.AddRow({pool[rng.NextBounded(pool.size())],
                datagen::MakePseudoWord(&rng, 3),
                std::to_string(1900 + rng.NextBounded(130))})
          .Abort("case study");
    }
    cs.names.push_back(r.name);
    cs.federation.AddRelation(std::move(r));
    cs.relevance.push_back(0);
  }
  return cs;
}

// Synthetic 16k-cell corpus behind a 4-thread ExS scanner: large enough for
// the parallel scan path and dominated by vecmath kernel time. Used for the
// cross-thread trace export below and as the scan-heavy --hold workload
// (whose /profilez captures should show vecmath frames on top).
// `engine` must outlive the returned scanner (it borrows the encoder).
std::unique_ptr<discovery::ExhaustiveSearcher> MakeSyntheticScanner(
    const discovery::DiscoveryEngine& engine) {
  auto corpus = std::make_shared<discovery::CorpusEmbeddings>();
  constexpr size_t kCells = 16384;
  constexpr size_t kRelations = 64;
  const size_t dim = engine.encoder().dim();
  corpus->vectors = vecmath::Matrix(kCells, dim);
  Rng rng(4242);
  for (size_t i = 0; i < kCells; ++i) {
    float* row = corpus->vectors.Row(i);
    for (size_t j = 0; j < dim; ++j) row[j] = rng.NextFloat() - 0.5f;
    corpus->refs.push_back(
        {static_cast<table::RelationId>(i % kRelations), 0, 0});
  }
  corpus->num_relations = kRelations;
  corpus->cells_per_relation.assign(kRelations,
                                    static_cast<uint32_t>(kCells / kRelations));

  discovery::ExsOptions exs;
  exs.reuse_corpus_embeddings = true;
  exs.num_threads = 4;
  // Non-owning alias: the engine outlives the scanner by contract.
  std::shared_ptr<const embed::SemanticEncoder> encoder(
      &engine.encoder(), [](const embed::SemanticEncoder*) {});
  return std::make_unique<discovery::ExhaustiveSearcher>(nullptr, corpus,
                                                         encoder, exs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ServeOptions serve = bench::ParseServeArgs(argc, argv);
  if (serve.parse_error) return 2;
  CaseStudy cs = MakeCaseStudy();
  discovery::EngineOptions options;
  options.encoder.dim = 256;
  options.cts.umap.n_epochs = 80;
  // Tight candidate budgets: retrieval must *select* for the focused methods
  // to differ from whole-table averaging on this small federation.
  options.anns.cell_candidates = 48;
  options.cts.cell_candidates = 48;
  options.cts.cluster_candidates = 4;
  auto engine =
      discovery::DiscoveryEngine::Build(cs.federation, cs.lexicon, options)
          .MoveValue();

  const std::string query = "climate-change effects europe 2020";
  std::printf("Case study (5.3): query \"%s\"\n\n", query.c_str());

  bench::BenchJsonWriter json("case_study");
  json.SetMeta("query", query);
  json.SetMeta("tables", static_cast<double>(cs.federation.size()));
  json.SetMeta("simd_tier", std::string(vecmath::SimdTierName(
                                vecmath::ActiveSimdTier())));

  for (auto method : {discovery::Method::kExhaustive, discovery::Method::kAnns,
                      discovery::Method::kCts}) {
    discovery::DiscoveryOptions search;
    search.top_k = 5;
    auto ranking = engine->Search(method, query, search).MoveValue();
    std::printf("%-4s:", std::string(discovery::MethodToString(method)).c_str());
    for (const auto& hit : ranking) {
      std::printf("  %s(g%d,%.3f)", cs.names[hit.relation].c_str(),
                  cs.relevance[hit.relation], hit.score);
    }
    std::printf("\n");
    // Rank of the first fully-specific table.
    size_t rank = 0;
    for (size_t i = 0; i < ranking.size(); ++i) {
      if (cs.relevance[ranking[i].relation] == 2) {
        rank = i + 1;
        break;
      }
    }
    std::printf("      first Europe-2020-specific table at rank %zu\n", rank);
    json.AddRow();
    json.Set("method", std::string(discovery::MethodToString(method)));
    json.Set("first_specific_rank", static_cast<double>(rank));
    if (!ranking.empty()) {
      json.Set("top1", cs.names[ranking.front().relation]);
      json.Set("top1_score", static_cast<double>(ranking.front().score));
    }
  }
  json.Write().Abort("bench json");

  // Traced queries: print the CTS span tree, and export all three methods
  // (plus a deliberately large parallel ExS scan) as a Chrome trace_event
  // file — load TRACE_case_study.json in chrome://tracing / ui.perfetto.dev.
  // CI validates its shape with tools/check_trace_json.py.
  {
    obs::ChromeTraceWriter writer;
    for (auto method :
         {discovery::Method::kExhaustive, discovery::Method::kAnns,
          discovery::Method::kCts}) {
      discovery::DiscoveryOptions search;
      search.top_k = 5;
      auto traced = engine->SearchTraced(method, query, search).MoveValue();
      if (method == discovery::Method::kCts && !traced.trace.empty()) {
        std::printf("\nCTS query trace:\n%s", traced.trace.ToString().c_str());
      }
      obs::TraceAnnotations annotations;
      annotations.method = std::string(discovery::MethodToString(method));
      annotations.degraded = traced.ranking.degraded;
      annotations.partial = traced.ranking.partial;
      writer.AddQuery(traced.trace, annotations);
    }

    // The case-study corpus is far below the scan's parallel threshold, so
    // also trace one ExS-cached query over a synthetic 16k-cell corpus with
    // a 4-thread scan pool: its exs.scan_block spans run on pool workers and
    // exercise cross-thread trace propagation end to end (the CI check
    // requires worker-lane spans in the exported file).
    {
      auto scanner = MakeSyntheticScanner(*engine);
      obs::QueryTrace trace;
      {
        obs::ScopedTrace collect(&trace);
        obs::TraceSpan root("query");
        root.SetLabel("ExS");
        scanner->Search(query, {}).MoveValue();
      }
      obs::TraceAnnotations annotations;
      annotations.method = "ExS";
      writer.AddQuery(trace, annotations);
    }

    const char* dir = std::getenv("MIRA_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/TRACE_case_study.json"
                           : "TRACE_case_study.json";
    writer.WriteFile(path).Abort("trace json");
    std::fprintf(stderr, "[bench] wrote %s (%zu queries, %zu events)\n",
                 path.c_str(), writer.num_queries(), writer.num_events());
  }

  // Dump the process metric registry (query counters/latency histograms,
  // build gauges) next to the bench JSON; CI validates its shape with
  // tools/check_metrics_json.py.
  {
    const char* dir = std::getenv("MIRA_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/METRICS_case_study.json"
                           : "METRICS_case_study.json";
    obs::MetricRegistry::Global().WriteJsonFile(path).Abort("metrics json");
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }

  std::printf(
      "\nExpected shape (paper 5.3): CTS places the Europe-2020-specific\n"
      "tables first, while ExS/ANNS are drawn toward broad or wrong-year\n"
      "climate tables (\"general global climate change data or from\n"
      "different years can rank higher\").\n");

  // Live-introspection tail (no-op without --debug-server/--hold): serve the
  // debugz pages while driving a scan-heavy workload — the synthetic 16k-cell
  // parallel scan (vecmath-kernel-bound, what /profilez should surface) plus
  // the three traced engine methods (feeding /querylogz and /tracez).
  if (serve.server || serve.hold) {
    auto scanner = MakeSyntheticScanner(*engine);
    bench::ServeAndHold(serve, engine.get(), [&] {
      discovery::DiscoveryOptions search;
      search.top_k = 5;
      for (auto method :
           {discovery::Method::kExhaustive, discovery::Method::kAnns,
            discovery::Method::kCts}) {
        engine->SearchTraced(method, query, search).MoveValue();
      }
      obs::QueryTrace trace;
      obs::ScopedTrace collect(&trace);
      obs::TraceSpan root("query");
      root.SetLabel("ExS-hold");
      scanner->Search(query, {}).MoveValue();
    }).Abort("debug server");
  }
  return 0;
}
