// The paper's second evaluation corpus: the European Data Portal flavor
// (~55% numeric cells, description-only context, smaller tables; §5
// [Datasets]). Runs the quality grid of Tables 1-3 on an EDP-like workload,
// demonstrating the methods' robustness across corpus characters.

#include "harness.h"

int main() {
  mira::bench::HarnessConfig config = mira::bench::HarnessConfig::FromEnv();
  config.edp_flavor = true;
  mira::bench::Harness harness(config);
  harness.PrintQualityTable(
      "EDP-flavored corpus: quality of short query results",
      mira::datagen::QueryClass::kShort);
  harness.PrintQualityTable(
      "EDP-flavored corpus: quality of long query results",
      mira::datagen::QueryClass::kLong);
  harness.WriteJson("edp_quality").Abort("bench json");
  return 0;
}
