// Reproduces Figure 3 (§5.4): mean query time of every method across the
// LD/MD/SD partitions and the three query-length classes. The paper's
// narrative numbers on the full dataset with long queries are ExS 1650 ms >
// TCS 1400 > TML 1200 > AdH 1000 > WS 900 > MDR 800 >> ANNS/CTS <= 150; the
// reproduction target is the split between index-backed methods (ANNS, CTS)
// and linear scans, and CTS < ANNS. The trailing span breakdown attributes
// the proposed methods' time to pipeline stages.

#include "datagen/workload.h"
#include "harness.h"

int main() {
  mira::bench::Harness harness;
  harness.PrintPerformanceFigure();
  harness.PrintSpanBreakdown(mira::bench::Partitions().front(),
                             mira::datagen::QueryClass::kLong);
  harness.WriteJson("figure3_performance").Abort("bench json");
  return 0;
}
