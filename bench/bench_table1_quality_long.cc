// Reproduces Table 1: quality of long query results (MAP, MRR, NDCG@k for
// all eight methods over the LD/MD/SD partitions).

#include "harness.h"

int main() {
  mira::bench::Harness harness;
  harness.PrintQualityTable("Table 1: Quality of long query results",
                            mira::datagen::QueryClass::kLong);
  harness.WriteJson("table1_quality_long").Abort("bench json");
  return 0;
}
