// Reproduces Table 4: query time (milliseconds) for CTS vs. ANNS across the
// three partitions and three query-length classes.

#include "harness.h"

int main() {
  mira::bench::Harness harness;
  harness.PrintQueryTimeTable();
  harness.WriteJson("table4_query_time").Abort("bench json");
  return 0;
}
