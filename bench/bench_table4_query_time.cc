// Reproduces Table 4: query time (milliseconds) for CTS vs. ANNS across the
// three partitions and three query-length classes, then shows where those
// milliseconds go: a per-span breakdown of the traced search pipeline on the
// LD partition.

#include "datagen/workload.h"
#include "harness.h"

int main() {
  mira::bench::Harness harness;
  harness.PrintQueryTimeTable();
  harness.PrintSpanBreakdown(mira::bench::Partitions().front(),
                             mira::datagen::QueryClass::kLong);
  harness.WriteJson("table4_query_time").Abort("bench json");
  harness
      .WriteChromeTrace("table4_query_time", mira::bench::Partitions().front(),
                        mira::datagen::QueryClass::kLong)
      .Abort("trace json");
  return 0;
}
