// Reproduces Table 4: query time (milliseconds) for CTS vs. ANNS across the
// three partitions and three query-length classes, then shows where those
// milliseconds go: a per-span breakdown of the traced search pipeline on the
// LD partition.

#include "datagen/workload.h"
#include "discovery/engine.h"
#include "harness.h"

int main(int argc, char** argv) {
  const mira::bench::ServeOptions serve =
      mira::bench::ParseServeArgs(argc, argv);
  if (serve.parse_error) return 2;

  mira::bench::Harness harness;
  harness.PrintQueryTimeTable();
  harness.PrintSpanBreakdown(mira::bench::Partitions().front(),
                             mira::datagen::QueryClass::kLong);
  harness.WriteJson("table4_query_time").Abort("bench json");
  harness
      .WriteChromeTrace("table4_query_time", mira::bench::Partitions().front(),
                        mira::datagen::QueryClass::kLong)
      .Abort("trace json");

  // Live-introspection tail (no-op without --debug-server/--hold): serve
  // debugz while replaying the long-query evaluation set against the LD
  // engine, so every page reflects a corpus-scale workload.
  if (serve.server || serve.hold) {
    const mira::bench::Partition& partition = mira::bench::Partitions().front();
    const mira::discovery::DiscoveryEngine& engine =
        harness.EngineFor(partition);
    const auto queries = harness.EvalQueries(mira::datagen::QueryClass::kLong);
    size_t next = 0;
    mira::bench::ServeAndHold(serve, &engine, [&] {
      mira::discovery::DiscoveryOptions search;
      search.top_k = 10;
      const auto& query = queries[next++ % queries.size()];
      for (auto method :
           {mira::discovery::Method::kExhaustive, mira::discovery::Method::kAnns,
            mira::discovery::Method::kCts}) {
        engine.SearchTraced(method, query.text, search).MoveValue();
      }
    }).Abort("debug server");
  }
  return 0;
}
