// Ablation microbenchmarks for the semantic encoder: token/sentence encoding
// throughput across embedding dimensions (cold vs memoized), UMAP and
// HDBSCAN substrate costs at CTS-relevant scales.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <memory>

#include "cluster/hdbscan.h"
#include "common/rng.h"
#include "datagen/concept_bank.h"
#include "dimred/umap.h"
#include "embed/encoder.h"

namespace {

using namespace mira;

const datagen::ConceptBank& Bank() {
  static const datagen::ConceptBank bank = [] {
    datagen::ConceptBankOptions options;
    options.num_topics = 16;
    return datagen::ConceptBank::Generate(options);
  }();
  return bank;
}

std::string RandomSentence(Rng* rng, size_t words) {
  std::string text;
  for (size_t i = 0; i < words; ++i) {
    if (!text.empty()) text.push_back(' ');
    if (rng->NextBernoulli(0.4)) {
      int32_t aspect = static_cast<int32_t>(rng->NextBounded(Bank().num_aspects()));
      const auto& pool = Bank().TableSurfaces(aspect);
      text += pool[rng->NextBounded(pool.size())];
    } else {
      text += Bank().SampleFiller(rng);
    }
  }
  return text;
}

// Sentence encoding with a cold cache: dominated by n-gram hashing.
void BM_EncodeColdCache(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    embed::EncoderOptions options;
    options.dim = dim;
    embed::SemanticEncoder encoder(options, Bank().lexicon());
    std::string text = RandomSentence(&rng, 8);
    state.ResumeTiming();
    benchmark::DoNotOptimize(encoder.EncodeText(text));
  }
  state.counters["dim"] = static_cast<double>(dim);
}
BENCHMARK(BM_EncodeColdCache)->Arg(128)->Arg(256)->Arg(768)
    ->Unit(benchmark::kMicrosecond);

// Sentence encoding with a warm cache: the steady-state corpus/query path.
void BM_EncodeWarmCache(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  embed::EncoderOptions options;
  options.dim = dim;
  embed::SemanticEncoder encoder(options, Bank().lexicon());
  Rng rng(6);
  // Warm the token cache.
  for (int i = 0; i < 2000; ++i) encoder.EncodeText(RandomSentence(&rng, 8));
  Rng replay(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeText(RandomSentence(&replay, 8)));
  }
  state.counters["dim"] = static_cast<double>(dim);
}
BENCHMARK(BM_EncodeWarmCache)->Arg(128)->Arg(256)->Arg(768)
    ->Unit(benchmark::kMicrosecond);

// UMAP end-to-end at CTS-relevant sizes.
void BM_UmapFit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  embed::EncoderOptions options;
  options.dim = 128;
  embed::SemanticEncoder encoder(options, Bank().lexicon());
  Rng rng(7);
  vecmath::Matrix data(n, 128);
  for (size_t i = 0; i < n; ++i) {
    data.SetRow(i, encoder.EncodeText(RandomSentence(&rng, 3)));
  }
  for (auto _ : state) {
    dimred::UmapOptions umap;
    umap.target_dim = 5;
    umap.n_epochs = 100;
    benchmark::DoNotOptimize(dimred::FitUmap(data, umap).MoveValue());
  }
}
BENCHMARK(BM_UmapFit)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// HDBSCAN on reduced vectors (the CTS clustering step).
void BM_Hdbscan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(8);
  vecmath::Matrix data(n, 5);
  for (auto& x : data.data()) x = static_cast<float>(rng.NextGaussian() * 4.0);
  for (auto _ : state) {
    cluster::HdbscanOptions options;
    options.min_cluster_size = 8;
    benchmark::DoNotOptimize(cluster::Hdbscan(data, options).MoveValue());
  }
}
BENCHMARK(BM_Hdbscan)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace


// Replaces BENCHMARK_MAIN(): unless the caller passed --benchmark_out, the
// suite writes BENCH_ablation_encoder.json (into $MIRA_BENCH_JSON_DIR, or the
// working directory) so every bench binary leaves a machine-readable trace.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    const char* dir = std::getenv("MIRA_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/BENCH_ablation_encoder.json"
                           : "BENCH_ablation_encoder.json";
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
