// Reproduces Table 2: quality of moderate query results.

#include "harness.h"

int main() {
  mira::bench::Harness harness;
  harness.PrintQualityTable("Table 2: Quality of moderate query results",
                            mira::datagen::QueryClass::kModerate);
  harness.WriteJson("table2_quality_moderate").Abort("bench json");
  return 0;
}
