#ifndef MIRA_BENCH_HARNESS_H_
#define MIRA_BENCH_HARNESS_H_

// Shared experiment harness of the paper-reproduction benchmarks: builds the
// WikiTables-flavored workload, the three proposed searchers and the five
// baselines over the LD/MD/SD partitions, runs the 60-query evaluation and
// prints rows in the layout of the paper's tables.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/adh.h"
#include "baselines/baseline_common.h"
#include "baselines/mdr.h"
#include "baselines/tcs.h"
#include "baselines/tml.h"
#include "baselines/ws.h"
#include "bench_json.h"
#include "common/timer.h"
#include "datagen/workload.h"
#include "discovery/engine.h"
#include "ir/metrics.h"
#include "obs/debug_server.h"

namespace mira::bench {

/// Scale and model knobs; MIRA_BENCH_TABLES / MIRA_BENCH_DIM environment
/// variables override the LD table count and the embedding dimension.
struct HarnessConfig {
  /// LD corpus size in tables; MD and SD are 50% / 10% partitions of it.
  size_t ld_tables = 1500;
  /// Embedding dimension (the paper uses mpnet's 768; 768 is supported but
  /// laptop-scale runs default lower — all trends are dimension-stable).
  size_t encoder_dim = 192;
  /// Queries generated per length class (paper: 60 queries total).
  size_t queries_per_class = 20;
  /// Fraction of queries (per class) used to fit the trainable baselines,
  /// mirroring the paper's 1,918 / 1,199 pair split.
  double train_fraction = 0.4;
  /// Ranking depth used for quality evaluation.
  size_t eval_depth = 100;
  /// Baseline semantic model strength: the comparison systems embed with a
  /// weaker synonym-collapsing blend (vanilla-BERT-grade) than the mpnet-
  /// grade encoder of the proposed methods.
  float baseline_concept_blend = 0.62f;
  /// Corpus flavor: false = WikiTables-like (default), true = European Data
  /// Portal-like (more numeric cells, description-only context) — the
  /// paper's second evaluation corpus. MIRA_BENCH_EDP=1 selects it.
  bool edp_flavor = false;
  uint64_t seed = 4242;

  static HarnessConfig FromEnv();
};

/// One evaluated method on one partition/class. Latency fields come from an
/// obs::Histogram over the per-query wall times (bucket-interpolated
/// percentiles; see src/obs/metrics.h).
struct MethodRun {
  std::string method;
  ir::EvalResult quality;
  double mean_query_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
};

/// The three partitions of §5 [Datasets].
struct Partition {
  std::string name;     // "LD" / "MD" / "SD"
  double fraction;      // 1.0 / 0.5 / 0.1
};

inline const std::vector<Partition>& Partitions() {
  static const std::vector<Partition> kPartitions = {
      {"LD", 1.0}, {"MD", 0.5}, {"SD", 0.1}};
  return kPartitions;
}

/// All eight systems built over one federation view.
class MethodStack {
 public:
  /// Builds the proposed engine and all five baselines over `view`.
  static std::unique_ptr<MethodStack> Build(
      const datagen::Workload& workload, const datagen::Workload::View& view,
      const HarnessConfig& config);

  /// Method names in the paper's canonical order.
  static const std::vector<std::string>& MethodNames();

  const discovery::Searcher* Get(const std::string& method) const;
  const discovery::DiscoveryEngine& engine() const { return *engine_; }

 private:
  std::unique_ptr<discovery::DiscoveryEngine> engine_;
  std::shared_ptr<const baselines::CorpusFieldStats> stats_;
  std::shared_ptr<embed::SemanticEncoder> baseline_encoder_;
  std::unique_ptr<baselines::MdrSearcher> mdr_;
  std::unique_ptr<baselines::WsSearcher> ws_;
  std::unique_ptr<baselines::TcsSearcher> tcs_;
  std::unique_ptr<baselines::AdhSearcher> adh_;
  std::unique_ptr<baselines::TmlSearcher> tml_;
};

/// Whole-experiment driver; builds the workload once and one MethodStack per
/// partition lazily.
class Harness {
 public:
  explicit Harness(HarnessConfig config = HarnessConfig::FromEnv());

  /// Runs every method on the evaluation queries of `cls` over partition
  /// `partition`, returning quality and mean latency per method.
  std::vector<MethodRun> RunClass(const Partition& partition,
                                  datagen::QueryClass cls);

  /// Prints a paper-style quality table (Tables 1-3) for one query class.
  void PrintQualityTable(const std::string& title, datagen::QueryClass cls);

  /// Prints Table 4 (query time, CTS vs ANNS) across partitions and classes.
  void PrintQueryTimeTable();

  /// Prints Figure 3's data: query time of all methods across partitions.
  void PrintPerformanceFigure();

  /// Runs the evaluation queries of `cls` through SearchTraced for the three
  /// proposed methods and prints the per-span mean time and counter averages
  /// (where the milliseconds of Table 4 / Figure 3 actually go). No-op with a
  /// note when tracing is compiled out (MIRA_OBS=OFF).
  void PrintSpanBreakdown(const Partition& partition, datagen::QueryClass cls);

  /// The proposed DiscoveryEngine built over `partition` (building the
  /// partition's method stack on first use). For debugz collectors and the
  /// --hold query loop; stays valid for the harness's lifetime.
  const discovery::DiscoveryEngine& EngineFor(const Partition& partition);

  const datagen::Workload& workload() const { return workload_; }
  const HarnessConfig& config() const { return config_; }

  /// Evaluation queries (the non-training split) of one class.
  std::vector<datagen::GeneratedQuery> EvalQueries(datagen::QueryClass cls) const;

  /// Writes BENCH_<bench_name>.json containing the harness config plus one
  /// row per (partition, class, method) measured by RunClass so far.
  [[nodiscard]] Status WriteJson(const std::string& bench_name) const;

  /// Runs up to `max_queries` eval queries of `cls` through SearchTraced for
  /// the three proposed methods and writes TRACE_<bench_name>.json (into
  /// $MIRA_BENCH_JSON_DIR, or the working directory) in the Chrome
  /// trace_event format — load it in chrome://tracing / ui.perfetto.dev.
  /// No-op when tracing is compiled out (MIRA_OBS=OFF).
  [[nodiscard]] Status WriteChromeTrace(const std::string& bench_name,
                                        const Partition& partition,
                                        datagen::QueryClass cls,
                                        size_t max_queries = 4);

 private:
  struct RecordedRun {
    std::string partition;
    std::string cls;
    MethodRun run;
  };

  MethodStack* StackFor(const Partition& partition);
  const datagen::Workload::View& ViewFor(const Partition& partition);

  HarnessConfig config_;
  datagen::Workload workload_;
  std::map<std::string, datagen::Workload::View> views_;
  std::map<std::string, std::unique_ptr<MethodStack>> stacks_;
  std::vector<RecordedRun> recorded_;
};

/// Live-introspection flags shared by the bench binaries:
///
///   --debug-server[=PORT]  start the embedded debugz HTTP server
///                          (obs/debug_server.h) on 127.0.0.1; PORT omitted
///                          or 0 picks an ephemeral port, printed to stderr
///                          as "[bench] debugz listening on ...".
///   --hold[=SECONDS]       after the binary's normal output, keep the
///                          process alive driving a continuous query loop —
///                          /profilez samples in process CPU time, so an
///                          idle hold would profile nothing. SECONDS omitted
///                          = run until SIGINT/SIGTERM.
///
/// Binaries taking no other arguments reject anything unrecognized
/// (parse_error) rather than silently running the default workload.
struct ServeOptions {
  bool server = false;
  uint16_t port = 0;
  bool hold = false;
  double hold_seconds = 0.0;  ///< 0 = run until SIGINT/SIGTERM.
  bool parse_error = false;
};

/// Parses argv; prints usage to stderr on error (caller exits non-zero).
ServeOptions ParseServeArgs(int argc, char** argv);

/// The live-introspection tail of a bench run. When `options.server` is set,
/// starts a DebugServer wired to the process's observability state: a
/// collector re-publishing `engine`'s resource/pool gauges (when non-null)
/// and a "SIMD dispatch" /statusz section. When `options.hold` is set, then
/// drives `drive()` in a loop (recording into QueryLog / promoting slow
/// traces as usual) until the hold window closes or SIGINT/SIGTERM arrives.
/// Returns immediately when neither flag is set. Under MIRA_OBS=OFF the
/// server cannot start; --debug-server reports NotImplemented.
[[nodiscard]] Status ServeAndHold(const ServeOptions& options,
                                  const discovery::DiscoveryEngine* engine,
                                  const std::function<void()>& drive);

/// Variant with a configure hook, invoked with the DebugServer after the
/// standard wiring but before Start(): binaries that own extra debugz state
/// register their pages here (e.g. bench_service_load registers the
/// DiscoveryService's /servicez). Ignored when the server is not requested.
[[nodiscard]] Status ServeAndHold(
    const ServeOptions& options, const discovery::DiscoveryEngine* engine,
    const std::function<void()>& drive,
    const std::function<void(obs::DebugServer&)>& configure);

}  // namespace mira::bench

#endif  // MIRA_BENCH_HARNESS_H_
